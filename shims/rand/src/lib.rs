//! Offline shim for the `rand` crate (0.9-style API surface).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small subset of `rand` that the QUEST data generators use:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::random_range`] over integer and float ranges. The generator is a
//! fixed xoshiro256++ — deterministic across platforms and releases, which
//! the dataset generators rely on (same seed ⇒ identical database).
//!
//! This is **not** a cryptographic RNG and implements nothing beyond what
//! the workspace needs. Replace the `path` dependency in the workspace
//! manifest with a registry version to switch to the real crate.

#![warn(missing_docs)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open, like `rand 0.9`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Uniform `bool` with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        uniform_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a raw word to a uniform double in `[0, 1)` using the top 53 bits.
fn uniform_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of plain `% span` would be harmless here, but this is
                // just as cheap.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (uniform_f64(rng.next_u64()) as f32) * (self.end - self.start);
        // f64→f32 rounding can land exactly on `end`; keep the range half-open.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as the real rand crate does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..64)
            .filter(|_| a.random_range(0..1000u32) == c.random_range(0..1000u32))
            .count();
        assert!(
            same < 16,
            "different seeds should diverge, {same}/64 collisions"
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(10..100i64);
            assert!((10..100).contains(&v));
            let f = r.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u = r.random_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut r = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
