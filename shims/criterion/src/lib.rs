//! Offline shim for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of criterion's API the QUEST benches use — benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple fixed-budget timer
//! instead of criterion's statistical machinery. Numbers printed here are
//! indicative means, not confidence intervals; swap the workspace `path`
//! dependency for the registry crate when network access is available.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for parity with the real crate.
pub use std::hint::black_box;

/// Per-sample time budget for a measurement.
const SAMPLE_BUDGET: Duration = Duration::from_millis(10);

/// The benchmark driver.
pub struct Criterion {
    /// In test mode (`--test`, as passed by `cargo test --benches`) each
    /// bench body runs exactly once, unmeasured.
    test_mode: bool,
    /// Target number of samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.test_mode, self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the target sample count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&label, self.criterion.test_mode, samples, |b| f(b, input));
        self
    }

    /// Run an unparameterized benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&label, self.criterion.test_mode, samples, |b| f(b));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to bench bodies; [`Bencher::iter`] does the measuring.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Mean duration of one iteration, filled in by `iter`.
    mean: Option<Duration>,
}

impl Bencher {
    /// Measure `f`: one warm-up call, then up to `samples` timed batches
    /// within a fixed budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            black_box(f());
            self.mean = Some(Duration::ZERO);
            return;
        }
        black_box(f()); // warm-up, and lets one-shot setup costs settle
        let mut total = Duration::ZERO;
        let mut iters = 0u32;
        for _ in 0..self.samples.max(1) {
            let t0 = Instant::now();
            black_box(f());
            total += t0.elapsed();
            iters += 1;
            if total > SAMPLE_BUDGET * self.samples.max(1) as u32 {
                break;
            }
        }
        self.mean = Some(total / iters.max(1));
    }
}

fn run_bench<F>(label: &str, test_mode: bool, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        test_mode,
        samples,
        mean: None,
    };
    f(&mut b);
    match (test_mode, b.mean) {
        (true, _) => println!("test {label} ... ok"),
        (false, Some(mean)) => println!("{label:<44} time: {}", fmt_duration(mean)),
        (false, None) => println!("{label:<44} (no measurement: bencher never iterated)"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
