//! The [`Strategy`] trait and its combinators.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values passing `f` (rejection sampling with an attempt cap).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Uniform choice among several strategies with a common value type; built
/// by the [`prop_oneof!`](crate::prop_oneof) macro.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from pre-boxed arms (used by `prop_oneof!`).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Box one arm (used by `prop_oneof!`).
    pub fn arm<S>(strat: S) -> BoxedStrategy<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        strat.boxed()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                rng.i128_in(self.start as i128, self.end as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        rng.f64_in(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = rng.f64_in(self.start as f64, self.end as f64) as f32;
        // f64→f32 rounding can land exactly on `end`; keep the range half-open.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// String literals are regex strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::RegexGen::compile(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
