//! Offline shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest its property suites use: the
//! [`proptest!`] macro, range / tuple / regex-string / [`collection::vec`]
//! strategies, [`strategy::Strategy::prop_map`] /
//! [`strategy::Strategy::prop_flat_map`], [`prop_oneof!`], [`any`](arbitrary::any),
//! and the `prop_assert*` family.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its inputs (via the panic
//!   message) but is not minimized;
//! * **pinned seeds** — every test's RNG stream is derived from the test
//!   name, so runs are fully deterministic; set `PROPTEST_SEED=<u64>` to
//!   perturb the stream for exploratory runs;
//! * only the regex subset actually used by the suites is supported
//!   (character classes, `\d`/`\w`/`\s`/`\PC`, literals, and the `{m}`,
//!   `{m,n}`, `*`, `+`, `?` quantifiers).

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The most common imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test] fn name(arg in strategy, ..) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run_proptest(&config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Discards the current test case (does not count towards the case budget)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Chooses uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::arm($strat)),+
        ])
    };
}
