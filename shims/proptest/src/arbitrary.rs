//! `any::<T>()` strategies for primitives.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broad-magnitude doubles; NaN/inf excluded on purpose.
        let mag = rng.f64_in(-1e12, 1e12);
        let scale = 10f64.powi(rng.i128_in(-6, 7) as i32);
        mag * scale
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with a sprinkle of higher codepoints.
        if rng.next_u64() % 4 == 0 {
            char::from_u32(rng.i128_in(0x80, 0x2FA0) as u32).unwrap_or('\u{FFFD}')
        } else {
            (rng.i128_in(0x20, 0x7F) as u8) as char
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
