//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: a fixed size or a half-open range, as in real
/// proptest's `SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

/// Strategy for `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.min, self.size.max_excl);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with the given element strategy and length.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
