//! The deterministic case runner and its RNG.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` and should not count.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption not met) with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// The generation RNG handed to strategies (xoshiro256++, seeded from the
/// test name so every run draws the same stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG whose stream is pinned to `name` (FNV-1a), perturbed by the
    /// `PROPTEST_SEED` environment variable when set.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.trim().parse::<u64>() {
                h ^= extra.wrapping_mul(0x9E3779B97F4A7C15);
            }
        }
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `usize` in `[lo, hi)`; `lo` when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128 * span) >> 64) as usize
    }

    /// Uniform `i128` in `[lo, hi)` (wide enough for every integer type).
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128).wrapping_mul(span) >> 64) as i128
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

/// Drives one property test: runs `config.cases` successful cases, skipping
/// rejected ones (with a global attempt cap so a bad `prop_assume!` cannot
/// spin forever), and panics on the first failure.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let cases = config.cases.max(1);
    let max_attempts = (cases as u64).saturating_mul(20).max(1_000);
    let mut done: u32 = 0;
    let mut attempts: u64 = 0;
    while done < cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest '{name}': too many rejected cases ({done}/{cases} succeeded \
             after {max_attempts} attempts)"
        );
        match case(&mut rng) {
            Ok(()) => done += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {done}/{cases}:\n{msg}")
            }
        }
    }
}
