//! A tiny regex-subset string generator backing `&str` strategies.
//!
//! Supported syntax — exactly what the workspace's property suites use:
//! character classes (`[a-z0-9 ,.'-]`, with `-` literal when trailing),
//! the escapes `\d`, `\w`, `\s`, `\PC` (any printable character), literal
//! characters, and the quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.

use crate::test_runner::TestRng;

/// One generatable regex atom plus its repetition bounds.
#[derive(Debug, Clone)]
struct Piece {
    pool: Vec<char>,
    min: usize,
    max: usize, // inclusive
}

/// A compiled generator for a regex pattern.
#[derive(Debug, Clone)]
pub struct RegexGen {
    pieces: Vec<Piece>,
}

/// Pool for `\PC`: printable ASCII plus a spread of non-ASCII codepoints so
/// "never panics on printable garbage" tests exercise multi-byte inputs.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
    pool.extend("àéîöüßñçøÅŽžλπΩдйшю中文字データ한국어…—« »™©µ№".chars());
    pool
}

impl RegexGen {
    /// Compile `pattern`, or describe why it is outside the subset.
    pub fn compile(pattern: &str) -> Result<RegexGen, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let pool = match chars[i] {
                '[' => {
                    let (pool, next) = parse_class(&chars, i + 1)?;
                    i = next;
                    pool
                }
                '\\' => {
                    let (pool, next) = parse_escape(&chars, i + 1)?;
                    i = next;
                    pool
                }
                '(' | ')' | '|' => {
                    return Err(format!("unsupported regex construct '{}'", chars[i]));
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i)?;
            i = next;
            pieces.push(Piece { pool, min, max });
        }
        Ok(RegexGen { pieces })
    }

    /// Generate one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for p in &self.pieces {
            let n = rng.usize_in(p.min, p.max + 1);
            for _ in 0..n {
                out.push(p.pool[rng.usize_in(0, p.pool.len())]);
            }
        }
        out
    }
}

/// Parse a `[...]` class body starting just after `[`; returns the pool and
/// the index just past `]`.
fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), String> {
    let mut pool = Vec::new();
    let mut first = true;
    while i < chars.len() {
        match chars[i] {
            ']' if !first => return Ok((pool, i + 1)),
            '\\' => {
                let (sub, next) = parse_escape(chars, i + 1)?;
                pool.extend(sub);
                i = next;
            }
            c => {
                // Range `a-z` when a `-` sits between two ordinary chars.
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (c, chars[i + 2]);
                    if lo > hi {
                        return Err(format!("inverted class range {lo}-{hi}"));
                    }
                    pool.extend((lo..=hi).filter(|ch| ch.is_ascii() || lo > '\u{7f}'));
                    i += 3;
                } else {
                    pool.push(c);
                    i += 1;
                }
            }
        }
        first = false;
    }
    Err("unterminated character class".into())
}

/// Parse an escape starting just after `\`; returns the pool and the index
/// just past the escape.
fn parse_escape(chars: &[char], i: usize) -> Result<(Vec<char>, usize), String> {
    match chars.get(i) {
        None => Err("dangling backslash".into()),
        Some('d') => Ok((('0'..='9').collect(), i + 1)),
        Some('w') => {
            let mut pool: Vec<char> = ('a'..='z').collect();
            pool.extend('A'..='Z');
            pool.extend('0'..='9');
            pool.push('_');
            Ok((pool, i + 1))
        }
        Some('s') => Ok((vec![' ', '\t'], i + 1)),
        Some('P') | Some('p') => {
            // Only the `\PC` ("not control" ≈ printable) property is needed.
            match chars.get(i + 1) {
                Some('C') => Ok((printable_pool(), i + 2)),
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or("unterminated \\p{..}")?;
                    Ok((printable_pool(), i + close + 1))
                }
                other => Err(format!("unsupported unicode property {other:?}")),
            }
        }
        Some(&c) => Ok((vec![c], i + 1)),
    }
}

/// Parse an optional quantifier at `i`; returns `(min, max_inclusive, next)`.
fn parse_quantifier(chars: &[char], i: usize) -> Result<(usize, usize, usize), String> {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unterminated {..} quantifier")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = body.trim().parse::<usize>().map_err(|e| e.to_string())?;
                    (n, n)
                }
                Some((lo, hi)) => {
                    let lo = lo.trim().parse::<usize>().map_err(|e| e.to_string())?;
                    let hi = if hi.trim().is_empty() {
                        lo + 8
                    } else {
                        hi.trim().parse::<usize>().map_err(|e| e.to_string())?
                    };
                    (lo, hi)
                }
            };
            if max < min {
                return Err(format!("quantifier {{{min},{max}}} is inverted"));
            }
            Ok((min, max, close + 1))
        }
        Some('*') => Ok((0, 8, i + 1)),
        Some('+') => Ok((1, 8, i + 1)),
        Some('?') => Ok((0, 1, i + 1)),
        _ => Ok((1, 1, i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let g = RegexGen::compile(pattern).expect("compiles");
        let mut rng = TestRng::from_name(pattern);
        (0..n).map(|_| g.generate(&mut rng)).collect()
    }

    #[test]
    fn class_with_bounds() {
        for s in gen_many("[a-z]{3,8}", 200) {
            assert!((3..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let seen: String = gen_many("[a' -]{1,1}", 500).concat();
        assert!(seen.chars().all(|c| matches!(c, 'a' | '\'' | ' ' | '-')));
        assert!(seen.contains('-'));
    }

    #[test]
    fn printable_never_empty_pool() {
        for s in gen_many("\\PC{0,60}", 100) {
            assert!(s.chars().count() <= 60);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn exact_count() {
        for s in gen_many("\\d{4}", 50) {
            assert_eq!(s.len(), 4);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn single_atom_defaults_to_one() {
        for s in gen_many("[a-z]", 50) {
            assert_eq!(s.chars().count(), 1);
        }
    }
}
