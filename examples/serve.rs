//! Serving demo: one shared, cache-backed engine answering a concurrent
//! keyword-query stream, with live cache statistics and a Prometheus
//! exposition of the full metrics registry at the end.
//!
//! Run with: `cargo run --release -p quest --example serve [workers]`

use std::time::Instant;

use quest::prelude::*;
use quest::serve::CachedEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);

    // An IMDB-shaped database and its curated workload, as a query stream
    // with popular repeats (every query asked five times, shuffled).
    let db = quest::data::imdb::generate(&quest::data::imdb::ImdbScale {
        movies: 2_000,
        seed: 42,
    })?;
    let workload = quest::data::imdb::workload();
    let stream = quest_bench::shuffled_stream(&workload, 5, 42);

    // Serial reference: the plain engine, one query at a time.
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default())?;
    let t0 = Instant::now();
    for raw in &stream {
        let _ = engine.search(raw);
    }
    let serial = t0.elapsed();
    println!(
        "serial engine:   {} queries in {:.2?} ({:.0} q/s)",
        stream.len(),
        serial,
        stream.len() as f64 / serial.as_secs_f64()
    );

    // The service: same engine behind the thread pool and stage caches.
    let service = QueryService::new(CachedEngine::new(engine), workers);

    // SLO monitoring: generous bounds a healthy demo never violates. The
    // first stats() call seeds the aggregation window so the final report
    // grades the whole serving run's deltas.
    service.engine().set_slo(quest::obs::SloSpec {
        max_p99_us: Some(5_000_000),
        max_error_rate: Some(0.5),
        ..Default::default()
    });
    let _ = service.engine().stats();

    let t0 = Instant::now();
    let tickets = service.submit_batch(&stream);
    let mut answered = 0usize;
    for ticket in tickets {
        if ticket.wait().is_ok() {
            answered += 1;
        }
    }
    let served = t0.elapsed();
    println!(
        "{workers}-worker serve: {answered} answered in {:.2?} ({:.0} q/s, {:.2}x)",
        served,
        answered as f64 / served.as_secs_f64(),
        serial.as_secs_f64() / served.as_secs_f64()
    );

    // Feedback still works on the shared engine: validate the top answer of
    // the first workload query, then watch the epoch invalidate the caches.
    let query = KeywordQuery::parse(&workload[0].raw)?;
    let before = service.engine().search_query(&query)?;
    let epoch_before = service.engine().engine().feedback_epoch();
    if let Some(best) = before.explanations.first() {
        for _ in 0..3 {
            service.engine().feedback(&query, best, true)?;
        }
    }
    let after = service.engine().search_query(&query)?;
    println!(
        "\nfeedback: epoch {} -> {}, feedback configs now {}",
        epoch_before,
        service.engine().engine().feedback_epoch(),
        after.feedback_configs.len()
    );

    let traces = service.engine().traces();
    let stats = service.shutdown();
    println!("\n{stats}");
    if let Some(health) = &stats.health {
        println!("slo verdict: {health}");
    }

    // Prometheus exposition: the engine's registry snapshot (riding in the
    // stats) merged with the process-wide registry (WAL/replica/shard
    // layers — empty here, but the scrape endpoint of a real deployment
    // serves the union). Round-trip it through the exposition parser and
    // refuse to exit quietly if the core counters did not move.
    let mut merged = stats.metrics.clone();
    merged.merge(&quest::obs::global().snapshot());
    let text = quest::obs::to_prometheus_text(&merged);
    println!(
        "--- prometheus exposition ({} bytes) ---\n{text}",
        text.len()
    );
    let samples = quest::obs::parse_prometheus_text(&text).map_err(std::io::Error::other)?;
    for name in [
        quest::serve::names::QUERIES,
        "quest_serve_latency_ns_count",
        "quest_serve_stage_forward_ns_count",
    ] {
        let sample = samples
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| std::io::Error::other(format!("{name} missing from exposition")))?;
        if sample.value <= 0.0 {
            return Err(format!("{name} should be non-zero after serving").into());
        }
    }
    println!(
        "obs OK: {} samples parsed, {} queries counted",
        samples.len(),
        stats.queries
    );

    // Chrome trace export: the write-path/query span ring merged with the
    // per-query trace ring, loadable in chrome://tracing or Perfetto.
    // Opt-in via env so the demo stays file-free by default.
    if let Ok(path) = std::env::var("QUEST_OBS_CHROME_TRACE") {
        let spans = quest::obs::spans().recent();
        let json = quest::obs::to_chrome_trace_json(&spans, &traces);
        std::fs::write(&path, json.as_bytes())?;
        println!(
            "chrome trace: {} spans + {} query traces -> {path}",
            spans.len(),
            traces.len()
        );
    }
    Ok(())
}
