//! Interactive demo (paper §4, phase 2): "the participants will be free to
//! run their own queries and the system will display the different
//! explanations along with the results obtained by querying the real
//! databases."
//!
//! Run with: `cargo run --release -p quest --example repl [imdb|mondial|dblp]`
//!
//! Commands:
//!   <keywords>        search; prints ranked explanations
//!   \sql <statement>  parse and execute raw SQL directly
//!   \ok <rank>        validate explanation <rank> of the last search
//!   \no <rank>        reject explanation <rank> of the last search
//!   \quit             exit

use std::io::{BufRead, Write};

use quest::prelude::*;
use quest::store::sql::parse_sql;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "imdb".into());
    let db = match which.as_str() {
        "mondial" => quest::data::mondial::generate(&Default::default())?,
        "dblp" => {
            quest::data::dblp::generate(&quest::data::dblp::DblpScale::with_publications(2_000))?
        }
        _ => quest::data::imdb::generate(&quest::data::imdb::ImdbScale::with_movies(2_000))?,
    };
    println!(
        "QUEST repl over the {which}-shaped database ({} tables, {} rows).",
        db.catalog().table_count(),
        db.total_rows()
    );
    println!("Type keywords, \\sql <statement>, \\ok <rank>, \\no <rank>, or \\quit.\n");

    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default())?;
    let stdin = std::io::stdin();
    let mut last: Option<SearchOutcome> = None;

    loop {
        print!("quest> ");
        std::io::stdout().flush()?;
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let line = line.trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        if let Some(sql) = line.strip_prefix("\\sql ") {
            match parse_sql(engine.wrapper().catalog(), sql)
                .and_then(|stmt| engine.wrapper().execute(&stmt))
            {
                Ok(rs) => {
                    println!("  {}", rs.columns.join(" | "));
                    for row in rs.rows.iter().take(20) {
                        println!("  {row}");
                    }
                    if rs.len() > 20 {
                        println!("  … {} more", rs.len() - 20);
                    }
                }
                Err(e) => println!("  error: {e}"),
            }
            continue;
        }
        if let Some(rest) = line
            .strip_prefix("\\ok ")
            .or_else(|| line.strip_prefix("\\no "))
        {
            let positive = line.starts_with("\\ok");
            let Some(out) = &last else {
                println!("  no previous search");
                continue;
            };
            match rest.trim().parse::<usize>() {
                Ok(rank) if rank >= 1 && rank <= out.explanations.len() => {
                    let expl = out.explanations[rank - 1].clone();
                    let query = out.query.clone();
                    match engine.feedback(&query, &expl, positive) {
                        Ok(()) => println!(
                            "  recorded ({} feedbacks so far, effective O_Cf {:.3})",
                            engine.forward().feedback_count(),
                            engine.effective_o_cf()
                        ),
                        Err(e) => println!("  error: {e}"),
                    }
                }
                _ => println!("  usage: \\ok <rank 1..{}>", out.explanations.len()),
            }
            continue;
        }
        // A keyword search.
        match engine.search(&line) {
            Ok(out) => {
                let catalog = engine.wrapper().catalog();
                for (i, e) in out.explanations.iter().enumerate() {
                    println!("  #{} [{:.4}] {}", i + 1, e.score, e.sql(catalog));
                    match engine.execute(e) {
                        Ok(rs) if !rs.is_empty() => {
                            for row in rs.rows.iter().take(3) {
                                println!("       {row}");
                            }
                            if rs.len() > 3 {
                                println!("       … {} more", rs.len() - 3);
                            }
                        }
                        Ok(_) => println!("       (no tuples)"),
                        Err(err) => println!("       (execution failed: {err})"),
                    }
                }
                last = Some(out);
            }
            Err(e) => println!("  error: {e}"),
        }
    }
    println!("bye");
    Ok(())
}
