//! Demo phase 1 on the IMDB-shaped database: run curated ambiguous keyword
//! queries at scale, show how multiple mappings and multiple join paths
//! arise, and report per-stage latency (paper §4, message 1).
//!
//! Run with: `cargo run --release -p quest --example imdb_search`

use quest::prelude::*;
use quest_data::imdb::{self, ImdbScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ImdbScale::with_movies(5_000);
    eprintln!(
        "generating IMDB-shaped database ({} movies)...",
        scale.movies
    );
    let db = imdb::generate(&scale)?;
    eprintln!("  {} total rows", db.total_rows());

    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default())?;
    let catalog = engine.wrapper().catalog();

    for raw in [
        "casablanca",
        "fleming wind", // director join
        "leigh wind",   // actor join via cast_info
        "drama 1939",   // genre + year
        "wind",         // highly ambiguous: many titles
        "film noir",    // schema term + genre value
    ] {
        println!("── query: {raw}");
        let out = engine.search(raw)?;
        println!(
            "   {} a-priori configurations, {} explanations, O_Cf={:.2}",
            out.apriori_configs.len(),
            out.explanations.len(),
            out.effective_o_cf
        );
        for (i, e) in out.explanations.iter().take(3).enumerate() {
            println!("   #{} [{:.4}] {}", i + 1, e.score, e.sql(catalog));
        }
        let t = &out.timings;
        println!(
            "   timings: emissions {:?}, forward {:?}, backward {:?}, combine {:?}, total {:?}\n",
            t.emissions,
            t.forward_apriori + t.forward_feedback,
            t.backward,
            t.combine_configs + t.combine_explanations,
            t.total()
        );
    }
    Ok(())
}
