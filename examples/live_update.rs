//! Live-data walkthrough: serve a query stream while the database mutates,
//! with write-ahead logging, a snapshot, and crash recovery at the end.
//!
//! Run with: `cargo run --release -p quest --example live_update`

use quest::prelude::*;
use quest::serve::CachedEngine;
use quest::wal::{recover, write_snapshot};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("quest-live-update");
    std::fs::create_dir_all(&dir)?;
    let wal_path = dir.join(format!("{}.wal", std::process::id()));
    let snap_path = dir.join(format!("{}.snap", std::process::id()));

    // 1. Setup phase: an IMDB-shaped database, snapshotted before going live.
    let db = quest::data::imdb::generate(&quest::data::imdb::ImdbScale {
        movies: 1_000,
        seed: 42,
    })?;
    let mut wal = WalWriter::open(&wal_path, db.catalog())?;
    write_snapshot(&db, &snap_path, 0)?;
    println!(
        "setup: {} rows, snapshot + WAL at {}",
        db.total_rows(),
        dir.display()
    );

    // 2. Go live: a 4-worker service over one cache-backed engine.
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default())?;
    let service = QueryService::new(CachedEngine::new(engine), 4);
    let out = service.submit("nolan 2010").wait();
    println!(
        "before mutation: 'nolan 2010' -> {} explanations",
        out.map(|o| o.explanations.len()).unwrap_or(0)
    );

    // 3. Mutate through the service: write-ahead to the log, then apply.
    //    The data epoch bumps, retiring every cache entry built on the old
    //    data; searches and mutations serialize on the engine lock.
    let batch = vec![
        ChangeRecord::Insert {
            table: "person".into(),
            row: vec![900_001.into(), "Christopher Nolan".into(), 1970.into()],
        },
        ChangeRecord::Insert {
            table: "movie".into(),
            row: vec![
                900_002.into(),
                "Inception".into(),
                2010.into(),
                8.8.into(),
                900_001.into(),
            ],
        },
    ];
    for change in &batch {
        wal.append(change)?;
    }
    wal.sync()?; // durability point: log hits disk before the engine mutates
    let report = service.engine().apply(&batch)?;
    println!(
        "mutation batch: {} records applied ({} rejected), data epoch now {}",
        report.applied,
        report.rejected.len(),
        service.engine().data_epoch()
    );

    // 4. The same keywords now find the new data — through the same warm
    //    service, bit-identical to a cold engine on the mutated database.
    let out = service.submit("nolan 2010").wait()?;
    println!(
        "after mutation:  'nolan 2010' -> {} explanations, best:\n  {}",
        out.explanations.len(),
        out.explanations[0].sql(&service.engine().engine().wrapper().catalog().clone())
    );
    let stats = service.shutdown();
    println!("\nservice stats:\n{stats}");

    // 5. Crash. Recovery = snapshot + WAL suffix, replayed through the same
    //    checked mutation path.
    let recovery = recover(&snap_path, &wal_path)?;
    println!(
        "\nrecovery: {} records replayed on the snapshot (torn tail: {})",
        recovery.applied, recovery.torn_tail
    );
    recovery.db.validate()?;
    let recovered = Quest::new(FullAccessWrapper::new(recovery.db), QuestConfig::default())?;
    let out = recovered.search("nolan 2010")?;
    println!(
        "recovered engine: 'nolan 2010' -> {} explanations (identical to the live run)",
        out.explanations.len()
    );

    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snap_path).ok();
    Ok(())
}
