//! Quickstart: build a tiny movie database, ask a keyword query, print the
//! ranked SQL explanations and the tuples of the best one.
//!
//! Run with: `cargo run -p quest --example quickstart`

use quest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Define a schema: people direct movies.
    let mut catalog = Catalog::new();
    catalog
        .define_table("person")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .finish();
    catalog
        .define_table("movie")?
        .pk("id", DataType::Int)?
        .col("title", DataType::Text)?
        .col_opts("year", DataType::Int, true, true)?
        .col_opts("director_id", DataType::Int, true, false)?
        .finish();
    catalog.add_foreign_key("movie", "director_id", "person")?;

    // 2. Load a few rows (FK targets first).
    let mut db = Database::new(catalog)?;
    db.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))?;
    db.insert("person", Row::new(vec![2.into(), "Michael Curtiz".into()]))?;
    db.insert(
        "movie",
        Row::new(vec![
            10.into(),
            "Gone with the Wind".into(),
            1939.into(),
            1.into(),
        ]),
    )?;
    db.insert(
        "movie",
        Row::new(vec![11.into(), "Casablanca".into(), 1942.into(), 2.into()]),
    )?;
    db.insert(
        "movie",
        Row::new(vec![
            12.into(),
            "The Wizard of Oz".into(),
            1939.into(),
            1.into(),
        ]),
    )?;

    // 3. Wrap the source and build the engine (the setup phase: full-text
    //    indexes, statistics, a-priori HMM, schema graph).
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default())?;

    // 4. Ask a keyword query mixing a value and a schema concept.
    let query = "fleming movies 1939";
    println!("keyword query: {query}\n");
    let outcome = engine.search(query)?;

    // 5. Browse the explanations.
    let catalog = engine.wrapper().catalog();
    for (rank, e) in outcome.explanations.iter().enumerate() {
        println!("#{} [score {:.4}] {}", rank + 1, e.score, e.sql(catalog));
    }

    // 6. Execute the best one.
    if let Some(best) = outcome.explanations.first() {
        let rs = engine.execute(best)?;
        println!("\ntop explanation returns {} row(s):", rs.len());
        println!("  {}", rs.columns.join(" | "));
        for row in &rs.rows {
            println!("  {row}");
        }
    }
    Ok(())
}
