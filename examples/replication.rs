//! Replication walkthrough: one primary, WAL-shipped replicas, a
//! consistency-aware router, a replica crash, and a re-bootstrap from a
//! newer snapshot.
//!
//! Run with: `cargo run --release -p quest --example replication`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use quest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("quest-replication-{}", std::process::id()));

    // 1. The write point: an IMDB-shaped database behind a Primary. Every
    //    commit is logged write-ahead with a monotonic LSN; the log is both
    //    the crash-recovery record and the replication transport.
    let db = quest::data::imdb::generate(&quest::data::imdb::ImdbScale {
        movies: 1_000,
        seed: 42,
    })?;
    let primary = Arc::new(Primary::open(&dir, db, QuestConfig::default())?);
    println!(
        "primary up at lsn {} ({})",
        primary.last_lsn(),
        dir.display()
    );

    // 2. A replica tier: bootstrap two replicas from the published snapshot
    //    and run a sync daemon for each (poll the log tail, apply).
    let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
    let r1 = set.spawn_replica("r1")?;
    let r2 = set.spawn_replica("r2")?;
    let stop = Arc::new(AtomicBool::new(false));
    let daemons: Vec<_> = [Arc::clone(&r1), Arc::clone(&r2)]
        .into_iter()
        .map(|replica| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    replica.sync().expect("replica sync");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            })
        })
        .collect();

    // 3. Reads scatter round-robin over the replicas.
    for raw in ["nolan 2010", "casablanca", "hitchcock thriller"] {
        let routed = set.query(raw, Consistency::Eventual)?;
        println!(
            "eventual: {raw:24} -> {} explanations, served by {} @ lsn {}",
            routed.outcome.explanations.len(),
            routed.served_by,
            routed.lsn
        );
    }

    // 4. Commit through the primary, then read the write back with an LSN
    //    bound: the router only answers from a server at or past it.
    let receipt = primary.commit(&[
        ChangeRecord::Insert {
            table: "person".into(),
            row: vec![900_001.into(), "Christopher Nolan".into(), 1970.into()],
        },
        ChangeRecord::Insert {
            table: "movie".into(),
            row: vec![
                900_002.into(),
                "Inception".into(),
                2010.into(),
                8.8.into(),
                900_001.into(),
            ],
        },
    ])?;
    println!(
        "\ncommitted lsns {}..={} ({} applied, {} rejected)",
        receipt.first_lsn,
        receipt.last_lsn,
        receipt.report.applied,
        receipt.report.rejected.len()
    );
    let routed = set.query("nolan 2010", Consistency::AtLeast(receipt.last_lsn))?;
    println!(
        "read-your-writes: 'nolan 2010' -> {} explanations, served by {} @ lsn {} (bound {})",
        routed.outcome.explanations.len(),
        routed.served_by,
        routed.lsn,
        receipt.last_lsn
    );
    println!("\ntopology:\n{}", set.topology());

    // 5. Crash r2 and replace it: the primary publishes a fresh snapshot,
    //    so the replacement bootstraps at the current LSN and replays
    //    nothing but the (empty) suffix.
    stop.store(true, Ordering::Release);
    for d in daemons {
        d.join().expect("daemon joins");
    }
    drop(r2);
    let snapshot_lsn = primary.publish_snapshot()?;
    let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::LeastLoaded);
    set.add_replica(Arc::clone(&r1));
    let r3 = set.spawn_replica("r3")?;
    println!(
        "r2 crashed; r3 re-bootstrapped from the lsn-{snapshot_lsn} snapshot at lsn {}",
        r3.applied_lsn()
    );
    let routed = set.query("nolan 2010", Consistency::AtLeast(primary.last_lsn()))?;
    println!(
        "after failover: 'nolan 2010' served by {} @ lsn {}",
        routed.served_by, routed.lsn
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
