//! Querying a hidden source: the Mondial-shaped database behind a Deep-Web
//! wrapper. No full-text indexes, no statistics — emissions come from schema
//! annotations (admissible-value patterns), datatype priors and the
//! ontology; the endpoint only answers bound, result-limited queries
//! (paper §1, §3: "hidden data sources such as those found in the Deep
//! Web").
//!
//! Run with: `cargo run -p quest --example mondial_deepweb`

use quest::prelude::*;
use quest_data::mondial::{self, MondialScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = mondial::generate(&MondialScale::default())?;
    println!(
        "Mondial-shaped source: {} tables, {} foreign keys, {} rows (hidden)",
        db.catalog().table_count(),
        db.catalog().foreign_keys().len(),
        db.total_rows()
    );

    // The source owner publishes schema annotations instead of an index.
    let mut ann = AnnotationSet::new();
    let c = db.catalog();
    ann.set_pattern(c.attr_id("country", "name")?, r"[A-Z][a-z]+")?;
    ann.set_pattern(c.attr_id("city", "name")?, r"[A-Z][a-z]+")?;
    ann.set_pattern(c.attr_id("river", "name")?, r"[A-Z][a-z]*")?;
    ann.set_pattern(c.attr_id("mountain", "name")?, r"[A-Z][a-z]+")?;
    ann.set_pattern(c.attr_id("language", "name")?, r"[A-Z][a-z]+")?;
    ann.set_pattern(c.attr_id("organization", "abbreviation")?, r"[A-Z]{2,6}")?;
    ann.add_examples(
        c.attr_id("religion", "name")?,
        ["Catholic", "Protestant", "Orthodox"],
    );
    ann.add_aliases(
        c.attr_id("country", "population")?,
        ["inhabitants", "people"],
    );

    // A form endpoint: requires at least one bound value, returns one page.
    let wrapper = DeepWebWrapper::new(db, ann, 25);
    let engine = Quest::new(wrapper, QuestConfig::default())?;
    let catalog = engine.wrapper().catalog();

    for raw in [
        "italy",
        "po italy",
        "nato italy",
        "country population",
        "etna",
    ] {
        println!("\n── query: {raw}");
        match engine.search(raw) {
            Ok(out) => {
                for (i, e) in out.explanations.iter().take(3).enumerate() {
                    println!("   #{} [{:.4}] {}", i + 1, e.score, e.sql(catalog));
                }
                if let Some(best) = out.explanations.first() {
                    match engine.execute(best) {
                        Ok(rs) => {
                            println!("   endpoint returned {} row(s) (page-limited)", rs.len())
                        }
                        Err(e) => println!("   endpoint refused: {e}"),
                    }
                }
            }
            Err(e) => println!("   search failed: {e}"),
        }
    }
    Ok(())
}
