//! Demo message 4 on the DBLP-shaped database: cold start → accumulating
//! user feedback → Dempster-Shafer re-weighting. Shows the effective
//! `O_Cf` (feedback-mode ignorance) decaying as validated searches arrive,
//! and the feedback HMM overtaking queries the a-priori heuristics rank
//! poorly.
//!
//! Run with: `cargo run --release -p quest --example dblp_feedback`

use quest::prelude::*;
use quest_core::eval::{aggregate, statements_equivalent};
use quest_data::dblp::{self, DblpScale};
use quest_data::FeedbackOracle;

fn measure(engine: &Quest<FullAccessWrapper>) -> quest_core::eval::WorkloadMetrics {
    let catalog = engine.wrapper().catalog();
    let masks: Vec<Vec<bool>> = dblp::workload()
        .iter()
        .map(|wq| {
            let gold = wq.gold.to_statement(catalog).expect("gold resolves");
            engine
                .search(&wq.raw)
                .map(|o| {
                    o.explanations
                        .iter()
                        .map(|e| statements_equivalent(&e.statement, &gold))
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();
    aggregate(&masks)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = dblp::generate(&DblpScale::with_publications(2_000))?;
    println!("DBLP-shaped database: {} rows", db.total_rows());
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default())?;
    let workload = dblp::workload();
    let mut oracle = FeedbackOracle::new(0.1, 7); // a slightly unreliable user

    println!(
        "\n{:>10} {:>8} {:>8} {:>8} {:>8}",
        "feedbacks", "O_Cf", "hit@1", "hit@3", "MRR"
    );
    for round in 0..6 {
        let m = measure(&engine);
        println!(
            "{:>10} {:>8.3} {:>8.2} {:>8.2} {:>8.3}",
            engine.forward().feedback_count(),
            engine.effective_o_cf(),
            m.hit_at_1,
            m.hit_at_3,
            m.mrr
        );
        if round == 5 {
            break;
        }
        // One pass of validated searches (the demo GUI's click stream).
        let feedback: Vec<(Configuration, bool)> = workload
            .iter()
            .map(|wq| oracle.feedback_for(engine.wrapper().catalog(), wq))
            .collect();
        for (cfg, _clean) in feedback {
            engine.feedback_configuration(&cfg, true)?;
        }
    }

    // Show the partial results of each operating mode on one query
    // (demo message 2: different semantics, different results).
    let q = "velegrakis vldb";
    let out = engine.search(q)?;
    let catalog = engine.wrapper().catalog();
    println!("\nper-module partial results for `{q}`:");
    println!(
        "  a-priori top: {:?}",
        out.apriori_configs
            .first()
            .map(|c| c.describe(catalog, &out.query))
    );
    println!(
        "  feedback top: {:?}",
        out.feedback_configs
            .first()
            .map(|c| c.describe(catalog, &out.query))
    );
    println!(
        "  combined top: {:?}",
        out.configurations
            .first()
            .map(|c| c.describe(catalog, &out.query))
    );
    Ok(())
}
