//! Figure 2 analogue: a textual explanation browser. For each keyword query
//! it renders the ranked explanations — SQL, keyword mapping, join path —
//! the result tuples, and an ASCII drawing of the database portion involved
//! (paper §4, message 5: "a new paradigm for visualizing query answers, by
//! coupling the list of tuples with a graphical representation of the
//! portion of the database involved by the query").
//!
//! Run with: `cargo run -p quest --example explain_browser [keywords...]`

use quest::prelude::*;
use quest_data::imdb::{self, ImdbScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = imdb::generate(&ImdbScale::with_movies(500))?;
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default())?;
    let catalog = engine.wrapper().catalog();
    let schema = engine.backward().schema_graph();

    // Orient the user first: the schema summary (paper reference [7]).
    let summary = quest_core::backward::summarize(
        engine.wrapper(),
        4,
        &quest_core::backward::SummaryWeights::default(),
    );
    println!(
        "{}",
        quest_core::backward::render_summary(catalog, &summary)
    );

    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries: Vec<String> = if args.is_empty() {
        vec![
            "leigh wind".into(),
            "drama 1939".into(),
            "casablanca director".into(),
        ]
    } else {
        vec![args.join(" ")]
    };

    for raw in &queries {
        println!("════ {raw} ════");
        let out = engine.search(raw)?;
        for (rank, e) in out.explanations.iter().take(3).enumerate() {
            println!("▸ explanation #{}", rank + 1);
            print!("{}", e.render(catalog, schema, &out.query));
            match engine.execute(e) {
                Ok(rs) if !rs.is_empty() => {
                    println!("  tuples ({}):", rs.len());
                    println!("    {}", rs.columns.join(" | "));
                    for row in rs.rows.iter().take(5) {
                        println!("    {row}");
                    }
                    if rs.len() > 5 {
                        println!("    … {} more", rs.len() - 5);
                    }
                }
                Ok(_) => println!("  (no tuples — join path empty in the instance)"),
                Err(err) => println!("  (execution failed: {err})"),
            }
            println!();
        }
    }
    Ok(())
}
