//! Baseline sanity: BANKS and DISCOVER find the same answers QUEST does on
//! unambiguous queries, and the instance graph dwarfs the schema graph as
//! data grows (demo message 3's premise).

use quest::prelude::*;
use quest_core::backward::BackwardModule;
use quest_core::baseline::{banks_search, discover_statements, InstanceGraph};
use quest_data::imdb::{self, ImdbScale};

#[test]
fn banks_agrees_on_simple_join() {
    let db = imdb::generate(&ImdbScale {
        movies: 100,
        seed: 42,
    })
    .expect("generate");
    let g = InstanceGraph::build(&db);
    let q = KeywordQuery::parse("fleming wind").expect("parse");
    let trees = banks_search(&db, &g, &q, 5).expect("banks runs");
    assert!(!trees.is_empty(), "BANKS finds the join");
    // The cheapest tree contains a movie tuple and a person tuple.
    let best = &trees[0];
    let tables: std::collections::HashSet<_> = best.tuples.iter().map(|t| t.table).collect();
    assert!(tables.len() >= 2);
}

#[test]
fn discover_covers_gold_networks() {
    let db = imdb::generate(&ImdbScale {
        movies: 100,
        seed: 42,
    })
    .expect("generate");
    let q = KeywordQuery::parse("leigh wind").expect("parse");
    let stmts = discover_statements(&db, &q, 4, Some(20));
    assert!(!stmts.is_empty());
    // At least one candidate network returns tuples (the cast_info path).
    let non_empty = stmts
        .iter()
        .filter(|s| {
            quest::store::sql::execute(&db, s)
                .map(|r| !r.is_empty())
                .unwrap_or(false)
        })
        .count();
    assert!(non_empty >= 1);
}

#[test]
fn schema_graph_constant_instance_graph_grows() {
    let small = imdb::generate(&ImdbScale {
        movies: 50,
        seed: 1,
    })
    .expect("generate");
    let large = imdb::generate(&ImdbScale {
        movies: 500,
        seed: 1,
    })
    .expect("generate");

    let ig_small = InstanceGraph::build(&small);
    let ig_large = InstanceGraph::build(&large);
    assert!(ig_large.node_count() > ig_small.node_count() * 5);

    let w_small = FullAccessWrapper::new(small);
    let w_large = FullAccessWrapper::new(large);
    let sg_small = BackwardModule::new(&w_small, &Default::default());
    let sg_large = BackwardModule::new(&w_large, &Default::default());
    // The schema graph is instance-size independent.
    assert_eq!(
        sg_small.schema_graph().node_count(),
        sg_large.schema_graph().node_count()
    );
    assert_eq!(
        sg_small.schema_graph().edge_count(),
        sg_large.schema_graph().edge_count()
    );
    // And it is orders of magnitude smaller than the instance graph.
    assert!(sg_large.schema_graph().node_count() * 10 < ig_large.node_count());
}

#[test]
fn quest_and_banks_agree_on_answer_tuples() {
    let db = imdb::generate(&ImdbScale {
        movies: 100,
        seed: 42,
    })
    .expect("generate");
    let ig = InstanceGraph::build(&db);
    let q = KeywordQuery::parse("casablanca curtiz").expect("parse");
    let banks = banks_search(&db, &ig, &q, 3).expect("banks");

    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let out = engine.search("casablanca curtiz").expect("search");
    let top_rows = engine.execute(&out.explanations[0]).expect("execute");

    // Both find an answer connecting the movie to its director.
    assert!(!banks.is_empty());
    assert!(!top_rows.is_empty());
}
