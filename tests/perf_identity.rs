//! The hot path's non-negotiable contract: the optimized pipeline
//! (interned O(1) index probes, prepared keywords, memoized metadata
//! matching, scratch-reused pruned decoding, per-query Steiner memo,
//! per-engine join-path templates, scratch-buffer assembly) is
//! **bit-identical** to the retained reference implementation — same SQL,
//! same score bits, same ranking — across datasets, random seeds, feedback
//! epochs, live-mutation interleavings, and the cached/pooled serving
//! layer, at the whole-search level and stage by stage (forward, backward,
//! assemble twins). Every optimization in this repo rides behind this
//! suite, including the template-memo invalidation on engine resync.

use quest::prelude::*;
use quest_data::{imdb, mondial, FeedbackOracle};

/// Bitwise comparison of two search outcomes: explanations (score bits,
/// statements, configurations, rank order), combined configurations, and
/// the partial per-mode lists.
fn assert_outcomes_identical(a: &SearchOutcome, b: &SearchOutcome, context: &str) {
    assert_eq!(
        a.explanations.len(),
        b.explanations.len(),
        "explanation count ({context})"
    );
    for (i, (x, y)) in a.explanations.iter().zip(&b.explanations).enumerate() {
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "explanation {i} score bits ({context}): {} vs {}",
            x.score,
            y.score
        );
        assert_eq!(x.statement, y.statement, "explanation {i} SQL ({context})");
        assert_eq!(
            x.configuration.terms, y.configuration.terms,
            "explanation {i} configuration ({context})"
        );
        assert_eq!(
            x.interpretation.key(),
            y.interpretation.key(),
            "explanation {i} interpretation ({context})"
        );
    }
    let pairs = [
        (&a.configurations, &b.configurations, "combined"),
        (&a.apriori_configs, &b.apriori_configs, "apriori"),
        (&a.feedback_configs, &b.feedback_configs, "feedback"),
    ];
    for (xs, ys, which) in pairs {
        assert_eq!(xs.len(), ys.len(), "{which} list length ({context})");
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert_eq!(x.terms, y.terms, "{which} terms ({context})");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "{which} score bits ({context})"
            );
        }
    }
    assert_eq!(
        a.effective_o_cf.to_bits(),
        b.effective_o_cf.to_bits(),
        "effective O_Cf ({context})"
    );
}

/// Run every workload query through the optimized scratch path and the
/// reference path on the same engine and demand bitwise equality.
fn assert_engine_paths_identical(
    engine: &Quest<FullAccessWrapper>,
    queries: &[String],
    scratch: &mut SearchScratch,
    context: &str,
) {
    for raw in queries {
        let query = match KeywordQuery::parse(raw) {
            Ok(q) => q,
            Err(_) => continue,
        };
        let fast = engine.search_query_with(&query, scratch);
        let reference = engine.search_query_reference(&query);
        match (fast, reference) {
            (Ok(a), Ok(b)) => assert_outcomes_identical(&a, &b, &format!("{context}: {raw}")),
            (Err(a), Err(b)) => assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "error mismatch ({context}: {raw})"
            ),
            (a, b) => panic!("one path failed ({context}: {raw}): {a:?} vs {b:?}"),
        }
    }
}

fn imdb_engine(movies: usize, seed: u64) -> Quest<FullAccessWrapper> {
    let db = imdb::generate(&imdb::ImdbScale { movies, seed }).expect("imdb generates");
    Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("engine builds")
}

fn raw_queries(wl: &[quest_data::workload::WorkloadQuery]) -> Vec<String> {
    wl.iter().map(|wq| wq.raw.clone()).collect()
}

#[test]
fn optimized_path_is_bit_identical_across_datasets_and_seeds() {
    for seed in [7u64, 42, 20260731] {
        let engine = imdb_engine(300, seed);
        let mut scratch = SearchScratch::new();
        let queries = raw_queries(&imdb::workload());
        // Two passes with one scratch: the second exercises warm buffer and
        // memo reuse, which must change nothing.
        for pass in 0..2 {
            assert_engine_paths_identical(
                &engine,
                &queries,
                &mut scratch,
                &format!("imdb seed {seed} pass {pass}"),
            );
        }
    }
    let db = mondial::generate(&mondial::MondialScale::default()).expect("mondial generates");
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("builds");
    let mut scratch = SearchScratch::new();
    assert_engine_paths_identical(
        &engine,
        &raw_queries(&mondial::workload()),
        &mut scratch,
        "mondial",
    );
}

#[test]
fn identity_holds_across_feedback_epochs() {
    let engine = imdb_engine(300, 42);
    let wl = imdb::workload();
    let queries = raw_queries(&wl);
    let mut scratch = SearchScratch::new();
    let mut oracle = FeedbackOracle::new(0.2, 21);
    // Interleave feedback batches (cheap supervised updates + one EM
    // refinement) with full identity sweeps; the scratch and the engine's
    // metadata memo survive every epoch bump.
    for round in 0..3 {
        for wq in wl.iter().take(4 + round) {
            let (cfg, positive) = oracle.feedback_for(engine.wrapper().catalog(), wq);
            engine
                .feedback_configuration(&cfg, positive)
                .expect("feedback records");
        }
        if round == 1 {
            engine.refine_feedback_model(3).expect("EM refines");
        }
        assert!(engine.feedback_epoch() > 0);
        assert_engine_paths_identical(
            &engine,
            &queries,
            &mut scratch,
            &format!("feedback round {round}"),
        );
    }
}

#[test]
fn identity_holds_across_mutation_interleavings() {
    let mut engine = imdb_engine(250, 42);
    let queries = raw_queries(&imdb::workload());
    let mut scratch = SearchScratch::new();
    // Deterministic mutation rounds: insert a person+movie, retitle an
    // existing movie, then delete the previous round's movie. After every
    // round the optimized and reference paths must still agree bitwise —
    // this drags the interned incremental index maintenance, the stats
    // refresh, and the engine re-sync through the identity check.
    for round in 0..3i64 {
        let person_id = 900_000 + 2 * round;
        let movie_id = person_id + 1;
        engine
            .mutate_source(|w| -> Result<(), relstore::StoreError> {
                let db = w.database_mut();
                db.insert(
                    "person",
                    Row::new(vec![
                        person_id.into(),
                        format!("Identity Director {round}").into(),
                        1970.into(),
                    ]),
                )?;
                db.insert(
                    "movie",
                    Row::new(vec![
                        movie_id.into(),
                        format!("Identity Release {round} wind").into(),
                        2024.into(),
                        7.5.into(),
                        person_id.into(),
                    ]),
                )?;
                if round > 0 {
                    db.delete("movie", &[Value::Int(movie_id - 2)])?;
                }
                Ok(())
            })
            .expect("mutation closure runs")
            .expect("mutations apply");
        engine
            .wrapper()
            .database()
            .validate()
            .expect("instance stays consistent");
        assert_engine_paths_identical(
            &engine,
            &queries,
            &mut scratch,
            &format!("mutation round {round}"),
        );
    }
}

#[test]
fn backward_stages_are_bit_identical_and_templates_invalidate() {
    let mut engine = imdb_engine(250, 42);
    let queries = raw_queries(&imdb::workload());
    let mut scratch = SearchScratch::new();

    // Drive the stages by hand — forward, per-configuration backward,
    // assembly — on both the scratch path and the reference twins, and
    // demand bitwise equality at each seam. Two passes, so the second runs
    // against a warm per-engine join-template memo.
    for pass in 0..2 {
        for raw in &queries {
            let query = match KeywordQuery::parse(raw) {
                Ok(q) => q,
                Err(_) => continue,
            };
            let context = format!("stage pass {pass}: {raw}");
            scratch.reset_query_state();
            let fast_forward = engine.forward_pass_with(&query, &mut scratch);
            let ref_forward = engine.forward_pass_reference(&query);
            let (fa, fb) = match (fast_forward, ref_forward) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(a), Err(b)) => {
                    assert_eq!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "forward error ({context})"
                    );
                    continue;
                }
                (a, b) => panic!("one forward path failed ({context}): {a:?} vs {b:?}"),
            };
            let fast_interps: Vec<_> = fa
                .configurations
                .iter()
                .map(|cfg| {
                    engine
                        .backward_pass_with(cfg, &mut scratch)
                        .expect("backward (scratch)")
                })
                .collect();
            let ref_interps: Vec<_> = fb
                .configurations
                .iter()
                .map(|cfg| engine.backward_pass(cfg).expect("backward (reference)"))
                .collect();
            assert_eq!(
                fast_interps.len(),
                ref_interps.len(),
                "interpretation list count ({context})"
            );
            for (ci, (xs, ys)) in fast_interps.iter().zip(&ref_interps).enumerate() {
                assert_eq!(xs.len(), ys.len(), "config {ci} interps ({context})");
                for (ii, (x, y)) in xs.iter().zip(ys).enumerate() {
                    assert_eq!(x.key(), y.key(), "config {ci} interp {ii} ({context})");
                    assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "config {ci} interp {ii} score bits ({context})"
                    );
                }
            }
            let fast_out = engine
                .assemble_with(
                    &query,
                    fa,
                    fast_interps,
                    std::time::Duration::ZERO,
                    &mut scratch,
                )
                .expect("assemble (scratch)");
            let ref_out = engine
                .assemble_reference(&query, fb, ref_interps, std::time::Duration::ZERO)
                .expect("assemble (reference)");
            assert_outcomes_identical(&fast_out, &ref_out, &context);
        }
    }
    let warm = engine.backward().template_stats();
    assert!(warm.entries > 0, "templates memoized: {warm:?}");
    assert!(warm.misses > 0, "first pass misses: {warm:?}");
    assert!(warm.hits > 0, "second pass hits the memo: {warm:?}");

    // A source mutation resyncs the engine and rebuilds the backward
    // module, so the template memo must start cold — stale join paths
    // replayed against a changed schema graph would be silently wrong.
    engine
        .mutate_source(|w| -> Result<(), relstore::StoreError> {
            let db = w.database_mut();
            db.insert(
                "person",
                Row::new(vec![
                    910_000.into(),
                    "Template Reset Director".into(),
                    1980.into(),
                ]),
            )?;
            Ok(())
        })
        .expect("mutation closure runs")
        .expect("mutation applies");
    let cold = engine.backward().template_stats();
    assert_eq!(
        (cold.hits, cold.misses, cold.entries),
        (0, 0, 0),
        "resync must rebuild the template memo: {cold:?}"
    );
    assert_engine_paths_identical(&engine, &queries, &mut scratch, "post-mutation templates");
    let refilled = engine.backward().template_stats();
    assert!(
        refilled.misses > 0 && refilled.entries > 0,
        "post-mutation searches repopulate the memo: {refilled:?}"
    );
}

#[test]
fn served_results_match_the_reference_path() {
    let engine = imdb_engine(250, 42);
    let reference = engine.clone();
    let service = QueryService::new(CachedEngine::new(engine), 3);
    let queries = raw_queries(&imdb::workload());
    // Cold pass fills the caches, warm pass replays them; both must equal
    // the reference pipeline bit for bit, through pool scheduling and all.
    for pass in ["cold", "warm"] {
        let tickets = service.submit_batch(&queries);
        for (raw, ticket) in queries.iter().zip(tickets) {
            let served = ticket.wait().expect("query serves");
            let query = KeywordQuery::parse(raw).expect("parses");
            let expect = reference
                .search_query_reference(&query)
                .expect("reference searches");
            assert_outcomes_identical(&served, &expect, &format!("served {pass}: {raw}"));
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.errors, 0);
    assert!(
        stats.forward_cache.hits >= queries.len() as u64,
        "warm pass must hit the forward cache: {stats}"
    );
}
