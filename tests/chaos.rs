//! Seeded chaos harness: deterministic fault schedules against replicated
//! and sharded topologies, with self-healing required to converge.
//!
//! The contract under test: for every seeded [`FaultPlan`], after the
//! retry/re-bootstrap/unfence machinery converges, the topology serves
//! **byte-identical** answers (SQL text, score bits, ranking order) to a
//! never-faulted twin that ran the same workload — and ends Healthy without
//! a process restart. Every injected fault is visible in the `quest_fault_*`
//! counters, and the health report passes through a non-Healthy grade while
//! the topology is broken.
//!
//! The failpoint registry is process-global, so every test that installs a
//! plan serializes on [`FAULT_LOCK`]. `QUEST_CHAOS_SCHEDULES` overrides the
//! default schedule count (CI smoke runs fewer; soak runs run more).

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use quest::fault::{self, FaultPlan, ManualClock, RetryPolicy};
use quest::prelude::*;
use quest::shard::ShardConfig;
use quest_obs::HealthStatus;

/// Serializes plan-installing tests within this binary.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn schedules() -> u64 {
    std::env::var("QUEST_CHAOS_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("quest-chaos")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn dataset() -> Database {
    quest::data::imdb::generate(&quest::data::imdb::ImdbScale {
        movies: 40,
        seed: 7,
    })
    .expect("imdb generates")
}

/// Three deterministic mutation rounds: inserts with fresh keys, an update,
/// and a delete, so healing has torn batches, re-applies, and pending
/// slices to get exactly right.
fn chaos_batches() -> Vec<Vec<ChangeRecord>> {
    (0..3i64)
        .map(|round| {
            let base = 910_000 + round * 10;
            let mut batch = vec![
                ChangeRecord::Insert {
                    table: "person".into(),
                    row: vec![
                        (base + 1).into(),
                        format!("Chaos Person {round}").into(),
                        (1950 + round).into(),
                    ],
                },
                ChangeRecord::Insert {
                    table: "movie".into(),
                    row: vec![
                        (base + 2).into(),
                        format!("Chaos Horizons {round}").into(),
                        (1980 + round).into(),
                        (7.5 + round as f64 * 0.25).into(),
                        (base + 1).into(),
                    ],
                },
            ];
            if round == 2 {
                // Rewrite round 0's title and drop round 1's movie.
                batch.push(ChangeRecord::Update {
                    table: "movie".into(),
                    key: vec![910_002.into()],
                    row: vec![
                        910_002.into(),
                        "Chaos Horizons Rewritten".into(),
                        1980.into(),
                        7.5.into(),
                        910_001.into(),
                    ],
                });
                batch.push(ChangeRecord::Delete {
                    table: "movie".into(),
                    key: vec![910_012.into()],
                });
            }
            batch
        })
        .collect()
}

fn probe_queries() -> Vec<String> {
    let mut queries: Vec<String> = quest::data::imdb::workload()
        .iter()
        .take(2)
        .map(|wq| wq.raw.clone())
        .collect();
    queries.push("chaos horizons".to_string());
    queries.push("chaos person".to_string());
    queries
}

/// Bit-exact fingerprints: per query, each explanation's SQL text and score
/// bits in ranking order.
type Fingerprints = Vec<(String, Vec<(String, u64)>)>;

fn fingerprints<E>(
    search: impl Fn(&str) -> Result<SearchOutcome, E>,
    catalog: &Catalog,
) -> Fingerprints
where
    E: std::fmt::Debug,
{
    probe_queries()
        .into_iter()
        .map(|raw| {
            let prints = match search(&raw) {
                Ok(out) => out
                    .explanations
                    .iter()
                    .map(|e| (e.sql(catalog), e.score.to_bits()))
                    .collect(),
                Err(_) => Vec::new(),
            };
            (raw, prints)
        })
        .collect()
}

/// Snapshot of the global fault counters (bare, label-free series).
fn fault_counters() -> (u64, u64, u64) {
    let snap = quest_obs::global().snapshot();
    (
        snap.counter(fault::names::INJECTED).unwrap_or(0),
        snap.counter(fault::names::HEALS).unwrap_or(0),
        fault::consumed(),
    )
}

/// One replicated schedule: primary + two replicas under `plan`, with a
/// manual clock so no wall time passes in backoff. Returns the healed
/// fingerprints and the final target LSN.
fn run_replicated(tag: &str, plan: Option<FaultPlan>) -> (Fingerprints, u64) {
    let dir = temp_dir(tag);
    let initial = dataset();
    let clock = Arc::new(ManualClock::new());
    let retry = RetryPolicy {
        retries: 8,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(8),
        jitter_seed: 1,
    };
    let primary = Arc::new(
        Primary::open_with(
            &dir,
            initial.clone(),
            QuestConfig::default(),
            quest::replica::PrimaryOptions {
                retry: retry.clone(),
                clock: clock.clone(),
                ..Default::default()
            },
        )
        .expect("primary opens"),
    );
    let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
    set.set_recovery(retry, clock.clone());
    set.spawn_replica("c1").expect("c1");
    set.spawn_replica("c2").expect("c2");

    let spec = quest_obs::SloSpec {
        max_lag: Some(64),
        ..Default::default()
    };
    let faulted = plan.is_some();
    if let Some(plan) = plan {
        fault::install(plan);
    }

    let mut saw_unhealthy = false;
    for (round, batch) in chaos_batches().iter().enumerate() {
        primary
            .commit(batch)
            .expect("commit heals under the retry budget");
        if round == 1 {
            primary
                .publish_snapshot()
                .expect("snapshot publish heals under the retry budget");
        }
        let _ = set.sync_all();
        if set.replicas().iter().any(|r| !r.is_healthy()) {
            saw_unhealthy = true;
            assert_ne!(
                set.topology().health(&spec).status,
                HealthStatus::Healthy,
                "a broken replica must grade non-Healthy"
            );
        }
    }

    // Convergence: supervision ticks heal broken replicas (re-bootstrap
    // behind backoff), sync drains the log. Faults are finite, so this
    // terminates; the bound is generous.
    let target = primary.last_lsn();
    let mut iters = 0;
    loop {
        clock.advance(Duration::from_millis(60));
        set.supervise();
        let synced = set.sync_all().is_ok();
        let replicas = set.replicas();
        if synced
            && replicas
                .iter()
                .all(|r| r.is_healthy() && r.applied_lsn() == target)
        {
            break;
        }
        if !replicas.iter().all(|r| r.is_healthy()) {
            saw_unhealthy = true;
        }
        iters += 1;
        assert!(iters < 256, "replicated schedule {tag} failed to converge");
    }
    assert_eq!(
        set.topology().health(&spec).status,
        HealthStatus::Healthy,
        "healed topology must grade Healthy"
    );
    if faulted && saw_unhealthy {
        // Replica breakage must have healed through the supervised path.
        assert!(
            quest_obs::global()
                .snapshot()
                .counter(fault::names::HEALS)
                .unwrap_or(0)
                > 0,
            "heals counter must record the recovery"
        );
    }

    let mut prints: Vec<Fingerprints> = set
        .replicas()
        .iter()
        .map(|r| fingerprints(|raw| r.search(raw), initial.catalog()))
        .collect();
    let first = prints.remove(0);
    for other in prints {
        assert_eq!(first, other, "replicas diverged in schedule {tag}");
    }
    fault::clear();
    std::fs::remove_dir_all(&dir).ok();
    (first, target)
}

/// One sharded schedule: a 2-shard set under `plan`, with a deliberately
/// small commit retry budget so schedules that stack faults on one site
/// actually fence a shard and exercise `recover()`.
fn run_sharded(tag: &str, plan: Option<FaultPlan>) -> (Fingerprints, Vec<u64>) {
    let dir = temp_dir(tag);
    let db = dataset();
    let catalog = db.catalog().clone();
    let clock = Arc::new(ManualClock::new());
    let mut sp = ShardedPrimary::open(
        &dir,
        db,
        &ShardConfig {
            shard_count: 2,
            parallel: false,
        },
        QuestConfig::default(),
    )
    .expect("sharded primary opens");
    sp.set_recovery(
        RetryPolicy {
            retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            jitter_seed: 1,
        },
        clock.clone(),
    );

    let spec = quest_obs::SloSpec {
        max_lag: Some(64),
        ..Default::default()
    };
    if let Some(plan) = plan {
        fault::install(plan);
    }

    let mut saw_fence = false;
    for batch in &chaos_batches() {
        match sp.commit(batch) {
            Ok(_) => {}
            Err(ShardError::ShardDown { .. }) => {
                // The gateway applied the batch and the fence captured the
                // missed slice; heal before the next round.
                saw_fence = true;
                assert_ne!(
                    sp.topology().health(&spec).status,
                    HealthStatus::Healthy,
                    "a fenced shard must grade non-Healthy"
                );
                let mut iters = 0;
                while !sp.is_healthy() {
                    clock.advance(Duration::from_millis(40));
                    sp.supervise();
                    iters += 1;
                    assert!(iters < 256, "sharded schedule {tag} failed to unfence");
                }
            }
            Err(other) => panic!("unexpected commit error in {tag}: {other}"),
        }
    }
    assert!(sp.is_healthy(), "sharded set must end healthy in {tag}");
    assert_eq!(sp.topology().health(&spec).status, HealthStatus::Healthy);
    if saw_fence {
        assert!(
            quest_obs::global()
                .snapshot()
                .counter(fault::names::HEALS)
                .unwrap_or(0)
                > 0,
            "unfencing must land in the heals counter"
        );
    }

    let prints = fingerprints(|raw| sp.search(raw), &catalog);
    let lsns = sp.topology().lsns;
    fault::clear();
    std::fs::remove_dir_all(&dir).ok();
    (prints, lsns)
}

/// The never-faulted twins, computed once and reused by every schedule.
fn replicated_twin() -> &'static (Fingerprints, u64) {
    static TWIN: OnceLock<(Fingerprints, u64)> = OnceLock::new();
    TWIN.get_or_init(|| run_replicated("twin-replicated", None))
}

fn sharded_twin() -> &'static (Fingerprints, Vec<u64>) {
    static TWIN: OnceLock<(Fingerprints, Vec<u64>)> = OnceLock::new();
    TWIN.get_or_init(|| run_sharded("twin-sharded", None))
}

#[test]
fn seeded_schedules_heal_to_twin_identical_service() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    let twin_replicated = replicated_twin().clone();
    let twin_sharded = sharded_twin().clone();
    assert!(
        twin_replicated
            .0
            .iter()
            .any(|(_, prints)| !prints.is_empty()),
        "twin must actually answer queries"
    );

    for seed in 0..schedules() {
        let plan = FaultPlan::generate(seed, 5);
        let (injected_before, _, consumed_before) = fault_counters();
        if seed % 2 == 0 {
            let (prints, target) = run_replicated(&format!("r{seed}"), Some(plan));
            assert_eq!(
                prints, twin_replicated.0,
                "replicated schedule {seed} diverged from the twin"
            );
            assert_eq!(target, twin_replicated.1, "LSN drift in schedule {seed}");
        } else {
            let (prints, lsns) = run_sharded(&format!("s{seed}"), Some(plan));
            assert_eq!(
                prints, twin_sharded.0,
                "sharded schedule {seed} diverged from the twin"
            );
            assert_eq!(lsns, twin_sharded.1, "shard LSN drift in schedule {seed}");
        }
        let (injected_after, _, consumed_after) = fault_counters();
        assert_eq!(
            injected_after - injected_before,
            consumed_after - consumed_before,
            "every consumed injection of schedule {seed} must land in the counter"
        );
    }

    // The sweep must have real coverage: faults actually fired, and the
    // supervised heal paths actually ran — otherwise a plan whose sites
    // never trigger would pass vacuously.
    let (injected_total, heals_total, _) = fault_counters();
    assert!(injected_total > 0, "no schedule injected a single fault");
    assert!(heals_total > 0, "no schedule exercised a heal path");
    println!(
        "chaos: {} schedules, {injected_total} faults injected, {heals_total} heals",
        schedules()
    );
}

#[test]
fn zero_fault_plan_is_inert() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    let twin = replicated_twin().clone();
    let (injected_before, heals_before, consumed_before) = fault_counters();
    fault::install(FaultPlan::none());
    // An empty plan disarms the registry outright: the hot path stays a
    // single relaxed load, exactly as if no plan had ever been installed.
    assert!(!fault::installed());
    assert_eq!(fault::pending(), 0);
    let (prints, target) = run_replicated("zero-plan", None);
    let (injected_after, heals_after, consumed_after) = fault_counters();
    assert_eq!(prints, twin.0, "an empty plan must not perturb results");
    assert_eq!(target, twin.1);
    assert_eq!(injected_after, injected_before);
    assert_eq!(heals_after, heals_before);
    assert_eq!(consumed_after, consumed_before);
    fault::clear();
    assert!(!fault::installed());
}

#[test]
fn fault_metrics_render_in_prometheus_exposition() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    // Touch every series so a fresh process still renders all of them
    // (each helper registers its own `# HELP` description).
    fault::install("wal.fsync@1=fsync_error".parse().expect("plan parses"));
    assert!(fault::fire(fault::sites::WAL_FSYNC).is_some());
    fault::count_retry();
    fault::count_heal("chaos");
    fault::count_escalation("chaos");
    fault::quarantined("chaos").add(1);
    fault::quarantined("chaos").sub(1);
    fault::clear();

    let text = quest::obs::to_prometheus_text(&quest_obs::global().snapshot());
    // ServeStats::Display is registry-driven: merging the global snapshot
    // into a stats snapshot must surface the same fault series next to the
    // serving counters, with no hand-kept field list to forget them.
    let mut stats = ServeStats::default();
    stats.metrics.merge(&quest_obs::global().snapshot());
    let rendered = stats.to_string();
    for name in [
        fault::names::INJECTED,
        fault::names::RETRIES,
        fault::names::HEALS,
        fault::names::ESCALATIONS,
        fault::names::QUARANTINED,
    ] {
        assert!(
            text.contains(&format!("# HELP {name}")),
            "{name} missing a HELP line in the exposition"
        );
        assert!(text.contains(name), "{name} missing from the exposition");
        assert!(
            rendered.contains(name),
            "{name} missing from the ServeStats rendering"
        );
    }
}
