//! Integration test mirroring paper Figure 1 / Algorithm 1 line by line:
//! the full forward → combine → backward → combine → query-build pipeline,
//! exercised through the public API across all crates.

use quest::prelude::*;
use quest_core::backward::BackwardModule;
use quest_core::combiner::{combine_explanation_scores, combine_ranked};
use quest_core::forward::ForwardModule;
use quest_core::query_builder::build_query;
use quest_core::semantics::SemanticRules;
use quest_data::imdb::{self, ImdbScale};

fn wrapper() -> FullAccessWrapper {
    let db = imdb::generate(&ImdbScale {
        movies: 200,
        seed: 42,
    })
    .expect("generate imdb");
    FullAccessWrapper::new(db)
}

/// Algorithm 1, executed step by step with the module-level APIs, asserting
/// each intermediate artifact exists and is sane.
#[test]
fn algorithm1_step_by_step() {
    let w = wrapper();
    let k = 5usize;
    let query = KeywordQuery::parse("fleming wind").expect("parses");

    // Forward: Cap ← HMM_a_priori(q, k) | Cf ← HMM_feedback(q, k).
    let forward = ForwardModule::new(&w, &SemanticRules::default()).expect("forward builds");
    let emissions = forward.emissions(&w, &query);
    assert_eq!(emissions.len(), 2, "one emission row per keyword");
    let cap = forward
        .top_k_apriori(&emissions, k)
        .expect("a-priori decodes");
    assert!(!cap.is_empty(), "a-priori configurations exist");
    let cf = forward
        .top_k_feedback(&emissions, k)
        .expect("feedback decodes");
    assert!(cf.is_empty(), "no feedback yet: feedback list empty");

    // C ← CombinerDST(Cap, Cf, O_Cap, O_Cf).
    let l1: Vec<_> = cap.iter().map(|c| (c.terms.clone(), c.score)).collect();
    let l2: Vec<_> = cf.iter().map(|c| (c.terms.clone(), c.score)).collect();
    let combined = combine_ranked(&l1, 0.3, &l2, 1.0).expect("combination succeeds");
    assert!(!combined.is_empty());
    let configs: Vec<Configuration> = combined
        .into_iter()
        .take(k)
        .map(|(t, s)| Configuration::new(t, s))
        .collect();

    // I ← ST(q, C, k).
    let backward = BackwardModule::new(&w, &Default::default());
    let catalog = w.catalog();
    let mut pairs = Vec::new();
    for (ci, cfg) in configs.iter().enumerate() {
        for interp in backward
            .interpretations(catalog, cfg, k)
            .expect("steiner runs")
        {
            assert!(interp.tree.validate(backward.schema_graph().graph()));
            pairs.push((ci, interp));
        }
    }
    assert!(!pairs.is_empty(), "at least one interpretation");

    // E ← CombinerDST(C, I, O_C, O_I).
    let cfg_scores: Vec<f64> = configs.iter().map(|c| c.score).collect();
    let pair_scores: Vec<(usize, f64)> = pairs.iter().map(|(ci, i)| (*ci, i.score)).collect();
    let final_scores =
        combine_explanation_scores(&cfg_scores, &pair_scores, 0.3, 0.3).expect("combine");
    assert_eq!(final_scores.len(), pairs.len());
    let total: f64 = final_scores.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-6,
        "pignistic scores form a distribution"
    );

    // E ← QueryBuilder(E): every explanation compiles to executable SQL.
    for ((ci, interp), score) in pairs.iter().zip(&final_scores) {
        let stmt = build_query(
            catalog,
            backward.schema_graph(),
            &query,
            &configs[*ci],
            interp,
            Some(10),
        )
        .expect("query builds");
        assert!(*score >= 0.0);
        w.execute(&stmt).expect("generated SQL executes");
    }
}

/// The engine façade produces the same artifacts in one call.
#[test]
fn engine_pipeline_end_to_end() {
    let w = wrapper();
    let engine = Quest::new(w, QuestConfig::default()).expect("engine builds");
    let out = engine.search("fleming wind").expect("search succeeds");

    assert!(!out.apriori_configs.is_empty());
    assert!(!out.configurations.is_empty());
    assert!(!out.explanations.is_empty());
    // Ranked descending.
    for w2 in out.explanations.windows(2) {
        assert!(w2[0].score >= w2[1].score);
    }
    // Top explanation returns the Fleming/Wind row.
    let best = &out.explanations[0];
    let sql = best.sql(engine.wrapper().catalog());
    assert!(sql.contains("LIKE"), "{sql}");
    let rs = engine.execute(best).expect("executes");
    assert!(!rs.is_empty(), "top explanation returns tuples: {sql}");
}

/// Per-stage timings are populated (Figure 1's modules all ran).
#[test]
fn stage_timings_populated() {
    let engine = Quest::new(wrapper(), QuestConfig::default()).expect("engine builds");
    let out = engine.search("casablanca director").expect("search");
    let t = out.timings;
    assert!(t.total() > std::time::Duration::ZERO);
    assert!(t.total() >= t.backward);
}

/// The engine works identically when reached through the facade prelude.
#[test]
fn facade_prelude_surface() {
    let db = quest::data::mondial::generate(&quest::data::mondial::MondialScale::default())
        .expect("mondial generates");
    let engine =
        Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("engine builds");
    let out = engine.search("modena italy").expect("search");
    assert!(!out.explanations.is_empty());
    let rs = engine.execute(&out.explanations[0]).expect("executes");
    let _ = rs;
}
