//! The five demonstration messages of paper §4, each encoded as an
//! executable assertion. These are the paper's "results"; the experiments
//! binary quantifies them, these tests pin them as regressions.

use quest::prelude::*;
use quest_core::backward::BackwardModule;
use quest_core::baseline::InstanceGraph;
use quest_core::eval::statements_equivalent;
use quest_data::imdb::{self, ImdbScale};
use quest_data::mondial;

/// Message 1: "a schema-based approach for transforming keyword queries into
/// SQL is really effective in querying large-size databases" — accuracy must
/// not collapse when the instance grows 20×.
#[test]
fn message1_effective_at_scale() {
    let wl = imdb::workload();
    let mut mrr = Vec::new();
    for movies in [100usize, 2_000] {
        let db = imdb::generate(&ImdbScale { movies, seed: 42 }).expect("generate");
        let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
        let masks: Vec<Vec<bool>> = wl
            .iter()
            .map(|wq| {
                let gold = wq
                    .gold
                    .to_statement(engine.wrapper().catalog())
                    .expect("gold");
                engine
                    .search(&wq.raw)
                    .map(|o| {
                        o.explanations
                            .iter()
                            .map(|e| statements_equivalent(&e.statement, &gold))
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        mrr.push(quest_core::eval::aggregate(&masks).mrr);
    }
    assert!(
        mrr[1] >= mrr[0] - 0.15,
        "accuracy collapsed with scale: {mrr:?}"
    );
    assert!(mrr[1] >= 0.5, "large-scale MRR too low: {}", mrr[1]);
}

/// Message 2: "the different types of semantics implemented in the modules
/// provide different results when applied to the same keyword query" — the
/// partial results of the two operating modes must be observably different
/// after training, and both are exposed by the outcome.
#[test]
fn message2_modules_differ() {
    let db = imdb::generate(&ImdbScale {
        movies: 300,
        seed: 42,
    })
    .expect("generate");
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    // A year present both as a movie year and as a birth year is genuinely
    // ambiguous. Find one in the instance, so the test is seed-robust.
    let catalog = engine.wrapper().catalog();
    let year = catalog.attr_id("movie", "year").expect("attr");
    let birth = catalog.attr_id("person", "birth_year").expect("attr");
    let db = engine.wrapper().database();
    let movie_t = catalog.table_id("movie").expect("table");
    let person_t = catalog.table_id("person").expect("table");
    let years: std::collections::HashSet<String> = db
        .table_data(movie_t)
        .iter()
        .map(|(_, r)| r.get(catalog.attribute(year).position).render())
        .collect();
    let shared = db
        .table_data(person_t)
        .iter()
        .map(|(_, r)| r.get(catalog.attribute(birth).position).render())
        .find(|b| years.contains(b))
        .expect("some year appears in both columns");
    let cold = engine.search(&shared).expect("search");
    let apriori_top = cold.apriori_configs[0].terms.clone();
    let other = if apriori_top == vec![DbTerm::Domain(year)] {
        Configuration::new(vec![DbTerm::Domain(birth)], 1.0)
    } else {
        Configuration::new(vec![DbTerm::Domain(year)], 1.0)
    };
    for _ in 0..8 {
        engine
            .feedback_configuration(&other, true)
            .expect("feedback");
    }
    let out = engine.search(&shared).expect("search");
    assert!(!out.apriori_configs.is_empty());
    assert!(!out.feedback_configs.is_empty());
    assert_eq!(
        out.apriori_configs[0].terms, apriori_top,
        "a-priori unaffected by training"
    );
    assert_ne!(
        out.apriori_configs[0].terms, out.feedback_configs[0].terms,
        "operating modes should disagree after contrarian training"
    );
}

/// Message 3: "Steiner trees are effective in computing answers to keyword
/// queries even if applied to graphs representing database schemas" — the
/// schema graph stays constant while the tuple graph grows.
#[test]
fn message3_schema_graph_scales() {
    let small = imdb::generate(&ImdbScale {
        movies: 100,
        seed: 1,
    })
    .expect("generate");
    let big = imdb::generate(&ImdbScale {
        movies: 2_000,
        seed: 1,
    })
    .expect("generate");
    let ig_small = InstanceGraph::build(&small).node_count();
    let ig_big = InstanceGraph::build(&big).node_count();
    let ws = FullAccessWrapper::new(small);
    let wb = FullAccessWrapper::new(big);
    let ss = BackwardModule::new(&ws, &Default::default());
    let sb = BackwardModule::new(&wb, &Default::default());
    assert_eq!(
        ss.schema_graph().node_count(),
        sb.schema_graph().node_count(),
        "schema graph must be instance-size independent"
    );
    assert!(
        ig_big > ig_small * 10,
        "tuple graph must grow with the instance"
    );
    // And the schema-level trees still produce correct answers (E2E).
    let engine = Quest::new(wb, QuestConfig::default()).expect("build");
    let out = engine.search("leigh wind").expect("search");
    let rs = engine.execute(&out.explanations[0]).expect("execute");
    assert!(!rs.is_empty());
}

/// Message 4: "setting different levels of uncertainty to each module and
/// operating mode, we obtain different results" — flipping O_C/O_I changes
/// the ranking on an ambiguous query.
#[test]
fn message4_uncertainty_adapts_ranking() {
    let db = mondial::generate(&mondial::MondialScale::default()).expect("generate");
    let w = FullAccessWrapper::new(db);
    let trust_forward = QuestConfig {
        o_c: 0.05,
        o_i: 0.95,
        ..Default::default()
    };
    let trust_backward = QuestConfig {
        o_c: 0.95,
        o_i: 0.05,
        ..Default::default()
    };
    let a = Quest::new(w.clone(), trust_forward).expect("build");
    let b = Quest::new(w, trust_backward).expect("build");
    // A deliberately ambiguous query over the dense Mondial schema.
    let qa = a.search("italy population").expect("search");
    let qb = b.search("italy population").expect("search");
    let sql_a: Vec<String> = qa
        .explanations
        .iter()
        .map(|e| e.sql(a.wrapper().catalog()))
        .collect();
    let sql_b: Vec<String> = qb
        .explanations
        .iter()
        .map(|e| e.sql(b.wrapper().catalog()))
        .collect();
    assert_ne!(
        sql_a, sql_b,
        "uncertainty flip should reshape the ranked list"
    );
}

/// Message 5: "a new paradigm for visualizing query answers, by coupling the
/// list of tuples with a graphical representation of the portion of the
/// database involved" — the rendering carries SQL, mapping, path and the
/// schema portion for a multi-table answer.
#[test]
fn message5_explanations_render_completely() {
    let db = imdb::generate(&ImdbScale {
        movies: 200,
        seed: 42,
    })
    .expect("generate");
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let out = engine.search("fleming wind").expect("search");
    let best = &out.explanations[0];
    let text = best.render(
        engine.wrapper().catalog(),
        engine.backward().schema_graph(),
        &out.query,
    );
    for needle in [
        "score",
        "SQL:",
        "mapping:",
        "path:",
        "schema portion:",
        "-->",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    // The coupled tuples exist too.
    assert!(!engine.execute(best).expect("execute").is_empty());
}
