//! Replication determinism and routing-consistency suite.
//!
//! The contract under test: a replica at LSN `L` is indistinguishable — SQL
//! text, score *bits*, index postings, statistics — from a cold engine
//! built by replaying the first `L` WAL records onto the initial database.
//! That must hold at every checkpoint, across replica crash + re-bootstrap
//! from a newer snapshot, and under concurrent mutation. And the router's
//! LSN-bounded policy must never serve a query from a replica behind the
//! query's minimum LSN.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use quest::prelude::*;
use quest::wal::{read_log, replay};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("quest-replica-integration")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn imdb_db() -> Database {
    quest::data::imdb::generate(&quest::data::imdb::ImdbScale {
        movies: 150,
        seed: 42,
    })
    .expect("imdb generates")
}

/// Commit batches with fresh inserts, an update, a delete, and (round 2) a
/// poison record the primary rejects — so replicas must re-reject it too.
fn commit_batches(db: &Database) -> Vec<Vec<ChangeRecord>> {
    let movie = db.catalog().table_id("movie").expect("movie");
    let movie_row = db.table_data(movie).iter().next().expect("a movie").1;
    let mut retitled = movie_row.values().to_vec();
    retitled[1] = "Replicated Horizons".into();
    retitled[3] = (0.1f64 + 0.2).into(); // decimal-inexact rating
    vec![
        vec![
            ChangeRecord::Insert {
                table: "person".into(),
                row: vec![800_001.into(), "Joe Gillis".into(), 1917.into()],
            },
            ChangeRecord::Insert {
                table: "movie".into(),
                row: vec![
                    800_002.into(),
                    "Sunset Replicated".into(),
                    1950.into(),
                    8.5.into(),
                    800_001.into(),
                ],
            },
        ],
        vec![
            ChangeRecord::Update {
                table: "movie".into(),
                key: vec![movie_row.get(0).clone()],
                row: retitled,
            },
            // Poison: dangling FK, rejected at the primary, logged anyway.
            ChangeRecord::Insert {
                table: "movie".into(),
                row: vec![
                    800_003.into(),
                    "Dangling".into(),
                    2000.into(),
                    Value::Null,
                    999_999.into(),
                ],
            },
        ],
        vec![
            ChangeRecord::Insert {
                table: "movie".into(),
                row: vec![
                    800_004.into(),
                    "Ephemeral".into(),
                    2001.into(),
                    Value::Null,
                    Value::Null,
                ],
            },
            ChangeRecord::Delete {
                table: "movie".into(),
                key: vec![800_004.into()],
            },
        ],
    ]
}

fn probe_queries() -> Vec<String> {
    let mut queries: Vec<String> = quest::data::imdb::workload()
        .iter()
        .take(4)
        .map(|wq| wq.raw.clone())
        .collect();
    queries.extend(
        ["sunset replicated", "replicated horizons", "joe gillis"]
            .iter()
            .map(|s| s.to_string()),
    );
    queries
}

/// Bit-exact fingerprints of an outcome list: SQL text + score bits.
fn fingerprints(
    search: impl Fn(&str) -> Result<SearchOutcome, QuestError>,
    catalog: &Catalog,
) -> Vec<(String, Vec<(String, u64)>)> {
    probe_queries()
        .into_iter()
        .map(|raw| {
            let prints = match search(&raw) {
                Ok(out) => out
                    .explanations
                    .iter()
                    .map(|e| (e.sql(catalog), e.score.to_bits()))
                    .collect(),
                Err(_) => Vec::new(),
            };
            (raw, prints)
        })
        .collect()
}

/// Index/statistics/slot-layout identity — stronger than query equality.
fn assert_structurally_identical(a: &Database, b: &Database) {
    for attr in a.catalog().attributes() {
        assert_eq!(
            a.index(attr.id),
            b.index(attr.id),
            "inverted index of {} diverged",
            a.catalog().qualified_name(attr.id)
        );
        assert_eq!(a.attr_stats(attr.id), b.attr_stats(attr.id));
    }
    for fk in a.catalog().foreign_keys() {
        assert_eq!(a.fk_stats(*fk), b.fk_stats(*fk));
    }
    for table in a.catalog().tables() {
        assert_eq!(
            a.table_data(table.id).slot_count(),
            b.table_data(table.id).slot_count(),
            "slot layout of {} diverged",
            table.name
        );
    }
}

/// A cold engine built from the initial database plus the first `lsn` WAL
/// records — the reference every replica state is measured against.
fn cold_engine_at(
    initial: &Database,
    wal_path: &std::path::Path,
    lsn: u64,
) -> Quest<FullAccessWrapper> {
    let log = read_log(wal_path, initial.catalog()).expect("log reads");
    let prefix: Vec<(u64, ChangeRecord)> = log
        .records
        .into_iter()
        .filter(|(seq, _)| *seq <= lsn)
        .collect();
    let mut db = initial.clone();
    replay(&mut db, &prefix, 0).expect("replay applies");
    db.validate().expect("cold reference validates");
    Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("cold engine builds")
}

#[test]
fn replica_at_lsn_l_matches_cold_engine_from_first_l_records() {
    let dir = temp_dir("bitwise");
    let initial = imdb_db();
    let primary = Primary::open(&dir, initial.clone(), QuestConfig::default()).expect("primary");
    let replica = Replica::from_primary("r1", &primary).expect("replica bootstraps");

    for batch in commit_batches(&initial) {
        let receipt = primary.commit(&batch).expect("commit");
        let report = replica.sync_to(receipt.last_lsn).expect("replica syncs");
        assert_eq!(report.lsn, receipt.last_lsn);
        let lsn = replica.applied_lsn();

        let cold = cold_engine_at(&initial, &primary.wal_path(), lsn);
        {
            let guard = replica.engine().engine();
            assert_structurally_identical(guard.wrapper().database(), cold.wrapper().database());
        }
        assert_eq!(
            fingerprints(|raw| replica.search(raw), initial.catalog()),
            fingerprints(|raw| cold.search(raw), initial.catalog()),
            "replica at lsn {lsn} must answer bit-identically to the cold engine"
        );
    }
    // The poison record was really exercised: one rejection re-applied.
    let stats = replica.stats();
    assert_eq!(stats.watermark, primary.last_lsn());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crashed_replica_rebootstraps_from_a_newer_snapshot_bit_identically() {
    let dir = temp_dir("rebootstrap");
    let initial = imdb_db();
    let primary = Primary::open(&dir, initial.clone(), QuestConfig::default()).expect("primary");
    let batches = commit_batches(&initial);

    // First replica follows the first commit, then "crashes" (dropped).
    let replica = Replica::from_primary("r1", &primary).expect("replica bootstraps");
    let receipt = primary.commit(&batches[0]).expect("commit");
    replica.sync_to(receipt.last_lsn).expect("sync");
    drop(replica);

    // The primary moves on and publishes a newer snapshot mid-history.
    primary.commit(&batches[1]).expect("commit");
    let snapshot_lsn = primary.publish_snapshot().expect("snapshot");
    assert!(snapshot_lsn > receipt.last_lsn);
    let receipt = primary.commit(&batches[2]).expect("commit");

    // The replacement bootstraps from the newer snapshot: it starts at the
    // snapshot LSN (no re-replay of the prefix) and converges bitwise.
    let replacement = Replica::from_primary("r2", &primary).expect("re-bootstrap");
    assert_eq!(replacement.applied_lsn(), snapshot_lsn);
    let report = replacement.sync_to(receipt.last_lsn).expect("catch up");
    assert_eq!(report.lsn, primary.last_lsn());

    let cold = cold_engine_at(&initial, &primary.wal_path(), report.lsn);
    {
        let guard = replacement.engine().engine();
        assert_structurally_identical(guard.wrapper().database(), cold.wrapper().database());
    }
    assert_eq!(
        fingerprints(|raw| replacement.search(raw), initial.catalog()),
        fingerprints(|raw| cold.search(raw), initial.catalog()),
        "re-bootstrapped replica must answer bit-identically to the cold engine"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replicas_converge_under_concurrent_mutation_and_reads() {
    let dir = temp_dir("concurrent");
    let initial = imdb_db();
    let primary =
        Arc::new(Primary::open(&dir, initial.clone(), QuestConfig::default()).expect("primary"));
    let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
    let replicas = [
        set.spawn_replica("r1").expect("r1"),
        set.spawn_replica("r2").expect("r2"),
    ];

    // Replication daemons: one sync loop per replica until shutdown.
    let stop = Arc::new(AtomicBool::new(false));
    let daemons: Vec<_> = replicas
        .iter()
        .map(|replica| {
            let replica = Arc::clone(replica);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    replica.sync().expect("sync keeps working");
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // Writer: commit every batch while reads hammer the router.
    let writer = {
        let primary = Arc::clone(&primary);
        let batches = commit_batches(&initial);
        std::thread::spawn(move || {
            for batch in batches {
                primary.commit(&batch).expect("commit");
            }
        })
    };
    // (No upper bound on routed.lsn here: a replica that tails the shared
    // log may apply a batch in the window between the primary's append and
    // its last_lsn publish, so it can legitimately run briefly "ahead".)
    for raw in probe_queries().iter().cycle().take(40) {
        let routed = set.query(raw, Consistency::Eventual).expect("routes");
        assert!(!routed.served_by.is_empty());
    }
    writer.join().expect("writer finishes");

    // Read-your-writes against the final LSN, while daemons still run.
    let last = primary.last_lsn();
    for raw in probe_queries().iter().take(4) {
        let routed = set.query(raw, Consistency::AtLeast(last)).expect("routes");
        assert!(
            routed.lsn >= last,
            "served at {} < bound {last}",
            routed.lsn
        );
    }
    stop.store(true, Ordering::Release);
    for daemon in daemons {
        daemon.join().expect("daemon exits cleanly");
    }

    // Both replicas converged to the cold reference at the final LSN.
    for replica in &replicas {
        replica.sync().expect("final drain");
        assert_eq!(replica.applied_lsn(), last);
        let cold = cold_engine_at(&initial, &primary.wal_path(), last);
        {
            let guard = replica.engine().engine();
            assert_structurally_identical(guard.wrapper().database(), cold.wrapper().database());
        }
        assert_eq!(
            fingerprints(|raw| replica.search(raw), initial.catalog()),
            fingerprints(|raw| cold.search(raw), initial.catalog()),
            "{} must converge bitwise",
            replica.name()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lsn_bounded_routing_never_serves_below_the_bound() {
    let dir = temp_dir("routing");
    let initial = imdb_db();
    let primary =
        Arc::new(Primary::open(&dir, initial.clone(), QuestConfig::default()).expect("primary"));
    let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
    let stale = set.spawn_replica("stale").expect("stale");
    let fresh = set.spawn_replica("fresh").expect("fresh");

    let receipt = primary
        .commit(&commit_batches(&initial)[0])
        .expect("commit");
    fresh.sync_to(receipt.last_lsn).expect("fresh catches up");
    assert_eq!(stale.applied_lsn(), 0, "stale replica stays behind");

    // Every bounded query must come from a server at or past the bound —
    // and since an eligible replica exists, the stale one is never asked
    // (its LSN stays frozen).
    for _ in 0..10 {
        let routed = set
            .query("sunset replicated", Consistency::AtLeast(receipt.last_lsn))
            .expect("routes");
        assert!(routed.lsn >= receipt.last_lsn, "{routed:?}");
        assert_eq!(routed.served_by, "fresh");
    }
    assert_eq!(stale.applied_lsn(), 0, "stale replica was never consulted");

    // Eventual reads still rotate over both, each stamped with its LSN.
    let mut saw_stale = false;
    for _ in 0..4 {
        let routed = set
            .query("casablanca", Consistency::Eventual)
            .expect("routes");
        if routed.served_by == "stale" {
            saw_stale = true;
            assert_eq!(routed.lsn, 0);
        }
    }
    assert!(
        saw_stale,
        "round-robin uses the stale replica for eventual reads"
    );

    // A bound past the primary's LSN is unsatisfiable, loudly.
    assert!(matches!(
        set.query("casablanca", Consistency::AtLeast(primary.last_lsn() + 1)),
        Err(ReplicaError::Lagging { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}
