//! Deep-Web parity: the same workload through a metadata-only wrapper must
//! degrade gracefully, not catastrophically (paper §1: QUEST can query
//! "hidden data sources such as those found in the Deep Web").

use quest::prelude::*;
use quest_core::eval::{aggregate, statements_equivalent};
use quest_data::imdb::{self, ImdbScale};

/// Annotations a source owner would plausibly publish for the IMDB schema.
fn annotations(catalog: &quest::store::Catalog) -> AnnotationSet {
    let mut ann = AnnotationSet::new();
    let year = catalog.attr_id("movie", "year").expect("year exists");
    ann.set_pattern(year, r"(18|19|20)\d{2}")
        .expect("pattern compiles");
    let by = catalog
        .attr_id("person", "birth_year")
        .expect("birth_year exists");
    ann.set_pattern(by, r"(18|19|20)\d{2}")
        .expect("pattern compiles");
    let name = catalog.attr_id("person", "name").expect("name exists");
    ann.set_pattern(name, r"[A-Za-z' ]+")
        .expect("pattern compiles");
    let title = catalog.attr_id("movie", "title").expect("title exists");
    ann.set_pattern(title, r"[A-Za-z0-9' ]+")
        .expect("pattern compiles");
    let genre = catalog.attr_id("genre", "name").expect("genre name");
    ann.add_examples(genre, ["Drama", "Comedy", "Thriller", "Noir", "Western"]);
    let company = catalog.attr_id("company", "name").expect("company name");
    ann.set_pattern(company, r"[A-Z][a-z]+ Pictures")
        .expect("pattern compiles");
    ann
}

#[test]
fn deepweb_wrapper_still_answers() {
    let db = imdb::generate(&ImdbScale {
        movies: 200,
        seed: 42,
    })
    .expect("generate");
    let ann = annotations(db.catalog());
    let wrapper = DeepWebWrapper::new(db, ann, 50);
    let engine = Quest::new(wrapper, QuestConfig::default()).expect("build");
    let out = engine
        .search("fleming 1939")
        .expect("search succeeds without instance access");
    assert!(
        !out.explanations.is_empty(),
        "metadata-only search yields explanations"
    );
}

#[test]
fn deepweb_accuracy_degrades_gracefully() {
    let scale = ImdbScale {
        movies: 200,
        seed: 42,
    };
    let wl = imdb::workload();

    // Full access.
    let full = Quest::new(
        FullAccessWrapper::new(imdb::generate(&scale).expect("generate")),
        QuestConfig::default(),
    )
    .expect("build");
    let full_masks: Vec<Vec<bool>> = wl
        .iter()
        .map(|wq| {
            let gold = wq
                .gold
                .to_statement(full.wrapper().catalog())
                .expect("gold");
            full.search(&wq.raw)
                .map(|o| {
                    o.explanations
                        .iter()
                        .map(|e| statements_equivalent(&e.statement, &gold))
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();
    let full_m = aggregate(&full_masks);

    // Hidden source.
    let db = imdb::generate(&scale).expect("generate");
    let ann = annotations(db.catalog());
    let deep = Quest::new(DeepWebWrapper::new(db, ann, 50), QuestConfig::default()).expect("build");
    let deep_masks: Vec<Vec<bool>> = wl
        .iter()
        .map(|wq| {
            let gold = wq
                .gold
                .to_statement(deep.wrapper().catalog())
                .expect("gold");
            deep.search(&wq.raw)
                .map(|o| {
                    o.explanations
                        .iter()
                        .map(|e| statements_equivalent(&e.statement, &gold))
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();
    let deep_m = aggregate(&deep_masks);

    eprintln!("full: {full_m:?}\ndeep: {deep_m:?}");
    assert!(
        full_m.hit_at_k >= deep_m.hit_at_k - 1e-9,
        "full access should not be worse"
    );
    // Graceful: the hidden source still answers a substantial fraction.
    assert!(
        deep_m.hit_at_k >= full_m.hit_at_k * 0.4,
        "deep web hit@k {} collapsed vs full {}",
        deep_m.hit_at_k,
        full_m.hit_at_k
    );
}

#[test]
fn deepweb_endpoint_restrictions_enforced() {
    let db = imdb::generate(&ImdbScale {
        movies: 50,
        seed: 1,
    })
    .expect("generate");
    let movie = db.catalog().table_id("movie").expect("movie exists");
    let wrapper = DeepWebWrapper::new(db, AnnotationSet::new(), 5);
    // Unbounded scans are refused by the form endpoint.
    let scan = quest::store::sql::SelectStatement::scan(movie);
    assert!(wrapper.execute(&scan).is_err());
    // Bound queries are capped at the page size.
    let mut bound = quest::store::sql::SelectStatement::scan(movie);
    let year = wrapper.catalog().attr_id("movie", "year").expect("year");
    bound
        .predicates
        .push(quest::store::sql::Predicate::Compare {
            attr: year,
            op: quest::store::sql::CompareOp::Ge,
            value: quest::store::Value::Int(0),
        });
    let rs = wrapper.execute(&bound).expect("bound query allowed");
    assert!(rs.len() <= 5);
}
