//! Workload accuracy floors: on each demo-shaped dataset, the engine must
//! recover the gold SQL within its top-k for a healthy fraction of the
//! curated workload. These are regression floors, not the exact numbers —
//! the EXPERIMENTS harness prints the precise tables.

use quest::prelude::*;
use quest_core::eval::{aggregate, statements_equivalent};
use quest_data::workload::WorkloadQuery;
use quest_data::{dblp, imdb, mondial};

fn relevance_masks(
    engine: &Quest<FullAccessWrapper>,
    workload: &[WorkloadQuery],
) -> Vec<Vec<bool>> {
    let catalog = engine.wrapper().catalog();
    workload
        .iter()
        .map(|wq| {
            let gold = wq.gold.to_statement(catalog).expect("gold resolves");
            match engine.search(&wq.raw) {
                Ok(out) => out
                    .explanations
                    .iter()
                    .map(|e| statements_equivalent(&e.statement, &gold))
                    .collect(),
                Err(_) => Vec::new(),
            }
        })
        .collect()
}

#[test]
fn imdb_accuracy_floor() {
    let db = imdb::generate(&imdb::ImdbScale {
        movies: 300,
        seed: 42,
    })
    .expect("generate");
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let masks = relevance_masks(&engine, &imdb::workload());
    let m = aggregate(&masks);
    eprintln!("imdb metrics: {m:?}");
    assert!(m.hit_at_k >= 0.5, "hit@k {} below floor", m.hit_at_k);
    assert!(m.mrr >= 0.3, "mrr {} below floor", m.mrr);
}

#[test]
fn mondial_accuracy_floor() {
    let db = mondial::generate(&mondial::MondialScale::default()).expect("generate");
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let masks = relevance_masks(&engine, &mondial::workload());
    let m = aggregate(&masks);
    eprintln!("mondial metrics: {m:?}");
    assert!(m.hit_at_k >= 0.5, "hit@k {} below floor", m.hit_at_k);
    assert!(m.mrr >= 0.3, "mrr {} below floor", m.mrr);
}

#[test]
fn dblp_accuracy_floor() {
    let db = dblp::generate(&dblp::DblpScale {
        publications: 300,
        authors_per_paper: 3,
        seed: 42,
    })
    .expect("generate");
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let masks = relevance_masks(&engine, &dblp::workload());
    let m = aggregate(&masks);
    eprintln!("dblp metrics: {m:?}");
    assert!(m.hit_at_k >= 0.5, "hit@k {} below floor", m.hit_at_k);
    assert!(m.mrr >= 0.3, "mrr {} below floor", m.mrr);
}

/// Feedback training with a perfect oracle must not hurt — the paper's
/// abstract claims good results "even with few training data" because the
/// DST combination shields the ranking from an under-trained feedback model.
#[test]
fn feedback_improves_or_preserves_accuracy() {
    let db = imdb::generate(&imdb::ImdbScale {
        movies: 300,
        seed: 42,
    })
    .expect("generate");
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let wl = imdb::workload();
    let cold = aggregate(&relevance_masks(&engine, &wl));

    // Train with 3 passes of perfect feedback.
    let mut oracle = quest_data::FeedbackOracle::perfect(5);
    let feedback: Vec<Configuration> = wl
        .iter()
        .map(|wq| oracle.feedback_for(engine.wrapper().catalog(), wq).0)
        .collect();
    for _ in 0..3 {
        for cfg in &feedback {
            engine
                .feedback_configuration(cfg, true)
                .expect("feedback records");
        }
    }
    let warm = aggregate(&relevance_masks(&engine, &wl));
    eprintln!("cold: {cold:?}\nwarm: {warm:?}");
    assert!(
        warm.mrr >= cold.mrr - 0.05,
        "training with a perfect oracle must not collapse accuracy: {} vs {}",
        warm.mrr,
        cold.mrr
    );
}
