//! Cross-crate I/O round trips: a database exported to CSV and re-imported
//! answers keyword queries identically; SQL rendered from explanations
//! parses back to an equivalent statement; the schema summary orients on
//! the right tables.

use quest::prelude::*;
use quest::store::csv::{dump_csv, load_csv};
use quest::store::sql::parse_sql;
use quest_core::backward::{summarize, SummaryWeights};
use quest_core::eval::statements_equivalent;
use quest_data::imdb::{self, ImdbScale};

/// Dump every table of a database and load it into a fresh instance.
fn roundtrip(db: &Database) -> Database {
    let mut copy = Database::new(db.catalog().clone()).expect("same catalog is valid");
    for table in db.catalog().tables() {
        let text = dump_csv(db, table.id);
        load_csv(&mut copy, &table.name, &text, true).expect("reimport succeeds");
    }
    copy.validate_foreign_keys()
        .expect("fks survive round trip");
    copy.finalize();
    copy
}

#[test]
fn csv_round_trip_preserves_search_results() {
    let db = imdb::generate(&ImdbScale {
        movies: 100,
        seed: 42,
    })
    .expect("generate");
    let copy = roundtrip(&db);
    assert_eq!(db.total_rows(), copy.total_rows());

    let a = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let b = Quest::new(FullAccessWrapper::new(copy), QuestConfig::default()).expect("build");
    for q in ["casablanca", "fleming wind", "drama 1939"] {
        let oa = a.search(q).expect("search original");
        let ob = b.search(q).expect("search copy");
        assert_eq!(oa.explanations.len(), ob.explanations.len(), "query {q}");
        for (ea, eb) in oa.explanations.iter().zip(&ob.explanations) {
            assert!(
                statements_equivalent(&ea.statement, &eb.statement),
                "query {q}: {} vs {}",
                ea.sql(a.wrapper().catalog()),
                eb.sql(b.wrapper().catalog())
            );
            assert!((ea.score - eb.score).abs() < 1e-9);
        }
    }
}

#[test]
fn rendered_sql_parses_back_equivalently() {
    let db = imdb::generate(&ImdbScale {
        movies: 100,
        seed: 42,
    })
    .expect("generate");
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let catalog = engine.wrapper().catalog();
    for q in [
        "casablanca",
        "fleming wind",
        "leigh wind",
        "selznick wind",
        "movie year",
    ] {
        let out = engine.search(q).expect("search");
        for e in &out.explanations {
            let text = e.sql(catalog);
            let reparsed = parse_sql(catalog, &text)
                .unwrap_or_else(|err| panic!("`{text}` fails to reparse: {err}"));
            assert!(
                statements_equivalent(&e.statement, &reparsed),
                "round trip changed semantics of {text}"
            );
            // And the reparsed statement executes to the same row count.
            let r1 = engine
                .wrapper()
                .execute(&e.statement)
                .expect("original runs");
            let r2 = engine.wrapper().execute(&reparsed).expect("reparsed runs");
            assert_eq!(r1.len(), r2.len());
        }
    }
}

#[test]
fn summary_identifies_hub_of_star_schema() {
    let db = imdb::generate(&ImdbScale {
        movies: 200,
        seed: 42,
    })
    .expect("generate");
    let w = FullAccessWrapper::new(db);
    let s = summarize(&w, 3, &SummaryWeights::default());
    let top = w.catalog().table(s.ranking[0].table).name.clone();
    assert_eq!(top, "movie", "the star hub must rank first");
    assert!(!s.summary_edges.is_empty());
}

#[test]
fn parser_rejects_what_engine_never_emits() {
    let db = imdb::generate(&ImdbScale {
        movies: 10,
        seed: 1,
    })
    .expect("generate");
    let c = db.catalog();
    // Aggregates and subqueries are out of fragment — clean errors.
    assert!(parse_sql(c, "SELECT COUNT(*) FROM movie").is_err());
    assert!(parse_sql(c, "SELECT * FROM (SELECT * FROM movie)").is_err());
    assert!(parse_sql(c, "DELETE FROM movie").is_err());
}
