//! Shard identity suite: the scatter-gather engine over N hash shards must
//! be **bit-identical** to the unsharded engine over the union of the
//! shards — same SQL text, same score bits, same ranking order, same
//! postings and statistics — for every shard count, dataset, seed,
//! feedback epoch, and mutation interleaving below. Sharding is a physical
//! layout decision; it must never be observable in an answer.

use std::path::PathBuf;

use quest::prelude::*;
use quest::shard::ShardedStore;
use quest::store::index::TokenPartial;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("quest-shard-integration")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn imdb_db(seed: u64) -> Database {
    quest::data::imdb::generate(&quest::data::imdb::ImdbScale { movies: 150, seed })
        .expect("imdb generates")
}

fn dblp_db() -> Database {
    quest::data::dblp::generate(&quest::data::dblp::DblpScale::with_publications(120))
        .expect("dblp generates")
}

fn shard_config(n: usize) -> quest::shard::ShardConfig {
    quest::shard::ShardConfig {
        shard_count: n,
        parallel: true,
    }
}

fn unsharded(db: &Database) -> CachedEngine<FullAccessWrapper> {
    CachedEngine::new(
        Quest::new(FullAccessWrapper::new(db.clone()), QuestConfig::default())
            .expect("unsharded engine builds"),
    )
}

fn sharded(db: &Database, shards: usize) -> ScatterGather {
    ScatterGather::new(db, &shard_config(shards), QuestConfig::default())
        .expect("sharded engine builds")
}

/// Bit-exact fingerprints of an outcome list: SQL text + score bits, in
/// ranking order. Equality of two fingerprint vectors is the identity
/// criterion from the issue: SQL text, score bits, and ranking order.
fn fingerprints(
    queries: &[String],
    search: impl Fn(&str) -> Result<SearchOutcome, QuestError>,
    catalog: &Catalog,
) -> Vec<(String, Vec<(String, u64)>)> {
    queries
        .iter()
        .map(|raw| {
            let prints = match search(raw) {
                Ok(out) => out
                    .explanations
                    .iter()
                    .map(|e| (e.sql(catalog), e.score.to_bits()))
                    .collect(),
                Err(_) => Vec::new(),
            };
            (raw.clone(), prints)
        })
        .collect()
}

fn imdb_queries() -> Vec<String> {
    let mut queries: Vec<String> = quest::data::imdb::workload()
        .iter()
        .take(5)
        .map(|wq| wq.raw.clone())
        .collect();
    queries.push("casablanca director".into());
    queries.push("gone wind".into());
    queries
}

fn dblp_queries() -> Vec<String> {
    quest::data::dblp::workload()
        .iter()
        .take(5)
        .map(|wq| wq.raw.clone())
        .collect()
}

/// Merged postings + statistics identity, token by token: for every
/// attribute, the union of per-shard vocabularies equals the unsharded
/// vocabulary, per-token `df` is the *sum* of shard partials and `max_tf`
/// the *max* (the integer merge laws), and the merged attribute/join
/// statistics equal the unsharded ones bit for bit.
fn assert_postings_and_stats_identical(store: &ShardedStore, whole: &Database) {
    for attr in whole.catalog().attributes() {
        let Some(whole_index) = whole.index(attr.id) else {
            continue;
        };
        let mut vocab: Vec<String> = (0..store.shard_count())
            .filter_map(|s| store.shard(s).index(attr.id))
            .flat_map(|idx| idx.live_tokens().into_iter().map(str::to_string))
            .collect();
        vocab.sort();
        vocab.dedup();
        let mut whole_vocab: Vec<String> = whole_index
            .live_tokens()
            .into_iter()
            .map(str::to_string)
            .collect();
        whole_vocab.sort();
        assert_eq!(
            vocab,
            whole_vocab,
            "vocabulary union diverged on {}",
            whole.catalog().qualified_name(attr.id)
        );
        for token in &vocab {
            let merged = (0..store.shard_count())
                .filter_map(|s| store.shard(s).index(attr.id))
                .map(|idx| idx.token_partial(token))
                .fold(TokenPartial::default(), |acc, p| TokenPartial {
                    df: acc.df + p.df,
                    max_tf: acc.max_tf.max(p.max_tf),
                });
            let reference = whole_index.token_partial(token);
            assert_eq!(merged.df, reference.df, "df sum diverged for {token:?}");
            assert_eq!(
                merged.max_tf, reference.max_tf,
                "max_tf diverged for {token:?}"
            );
        }
        assert_eq!(
            store.attr_stats(attr.id),
            whole.attr_stats(attr.id),
            "attribute stats diverged on {}",
            whole.catalog().qualified_name(attr.id)
        );
    }
    for fk in whole.catalog().foreign_keys() {
        let merged = store.fk_stats(*fk).expect("merged join stats");
        let reference = whole.fk_stats(*fk).expect("whole join stats");
        assert_eq!(merged.pairs, reference.pairs);
        assert_eq!(merged.referenced_distinct, reference.referenced_distinct);
        assert_eq!(merged.referencing_rows, reference.referencing_rows);
        assert_eq!(merged.referenced_rows, reference.referenced_rows);
        assert_eq!(
            merged.nmi.to_bits(),
            reference.nmi.to_bits(),
            "join NMI bits diverged"
        );
    }
}

/// Per-record accept/reject parity: applied counts, rejected indices, and
/// the exact error strings.
fn assert_reports_match(sharded: &quest::serve::ApplyReport, whole: &quest::serve::ApplyReport) {
    assert_eq!(sharded.applied, whole.applied, "applied counts diverged");
    let project = |r: &quest::serve::ApplyReport| -> Vec<(usize, String)> {
        r.rejected
            .iter()
            .map(|(i, e)| (*i, e.to_string()))
            .collect()
    };
    assert_eq!(project(sharded), project(whole), "rejections diverged");
}

/// Mutation rounds with fresh inserts, a full-text retitle, a delete, a
/// dangling-FK poison record (must be rejected on both sides with the same
/// message), and a cross-partition PK move.
fn mutation_batches(db: &Database) -> Vec<Vec<ChangeRecord>> {
    let movie = db.catalog().table_id("movie").expect("movie");
    let movie_row = db.table_data(movie).iter().next().expect("a movie").1;
    let mut retitled = movie_row.values().to_vec();
    retitled[1] = "Sharded Horizons".into();
    retitled[3] = (0.1f64 + 0.2).into();
    vec![
        vec![
            ChangeRecord::Insert {
                table: "person".into(),
                row: vec![900_001.into(), "Norma Desmond".into(), 1899.into()],
            },
            ChangeRecord::Insert {
                table: "movie".into(),
                row: vec![
                    900_002.into(),
                    "Scatter Boulevard".into(),
                    1950.into(),
                    8.5.into(),
                    900_001.into(),
                ],
            },
            // Poison: dangling FK. Both sides must reject with one message.
            ChangeRecord::Insert {
                table: "movie".into(),
                row: vec![
                    900_003.into(),
                    "Dangling".into(),
                    2000.into(),
                    Value::Null,
                    777_777.into(),
                ],
            },
        ],
        vec![
            ChangeRecord::Update {
                table: "movie".into(),
                key: vec![movie_row.get(0).clone()],
                row: retitled,
            },
            // PK move: almost certainly a cross-shard migration at N > 1.
            ChangeRecord::Update {
                table: "movie".into(),
                key: vec![900_002.into()],
                row: vec![
                    900_004.into(),
                    "Scatter Boulevard".into(),
                    1950.into(),
                    8.5.into(),
                    900_001.into(),
                ],
            },
        ],
        vec![
            ChangeRecord::Insert {
                table: "movie".into(),
                row: vec![
                    900_005.into(),
                    "Ephemeral Partition".into(),
                    2001.into(),
                    Value::Null,
                    Value::Null,
                ],
            },
            ChangeRecord::Delete {
                table: "movie".into(),
                key: vec![900_005.into()],
            },
            // Duplicate key: second rejection flavor.
            ChangeRecord::Insert {
                table: "person".into(),
                row: vec![900_001.into(), "Norma Again".into(), 1899.into()],
            },
        ],
    ]
}

// ---------------------------------------------------------------------------
// 1. Pure-search identity: shard counts × datasets × seeds.
// ---------------------------------------------------------------------------

#[test]
fn sharded_search_is_bit_identical_across_shard_counts_datasets_and_seeds() {
    let cases: Vec<(&str, Database, Vec<String>)> = vec![
        ("imdb/seed42", imdb_db(42), imdb_queries()),
        ("imdb/seed7", imdb_db(7), imdb_queries()),
        ("dblp", dblp_db(), dblp_queries()),
    ];
    for (name, db, queries) in &cases {
        let whole = unsharded(db);
        let reference = fingerprints(queries, |raw| whole.search(raw), db.catalog());
        for shards in [1usize, 2, 4, 8] {
            let gather = sharded(db, shards);
            assert_eq!(gather.shard_count(), shards);
            assert_eq!(
                fingerprints(queries, |raw| gather.search(raw), db.catalog()),
                reference,
                "{name}: {shards}-shard ranking diverged from unsharded"
            );
            {
                let guard = gather.engine().engine();
                assert_postings_and_stats_identical(guard.wrapper().store(), db);
            }
            assert_eq!(gather.stats().shards, shards);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Mutation interleavings: apply-report parity + identity after each batch.
// ---------------------------------------------------------------------------

#[test]
fn mutation_interleavings_preserve_identity_and_reports() {
    let db = imdb_db(42);
    let queries = {
        let mut q = imdb_queries();
        q.push("scatter boulevard".into());
        q.push("sharded horizons".into());
        q
    };
    for shards in [2usize, 4, 8] {
        let whole = unsharded(&db);
        let gather = sharded(&db, shards);
        let mut total_rejected = 0usize;
        for batch in mutation_batches(&db) {
            let whole_report = whole.apply(&batch).expect("unsharded apply");
            let shard_report = gather.apply(&batch).expect("sharded apply");
            assert_reports_match(&shard_report, &whole_report);
            total_rejected += shard_report.rejected.len();
            let guard = whole.engine();
            assert_eq!(
                fingerprints(
                    &queries,
                    |raw| gather.search(raw),
                    guard.wrapper().catalog()
                ),
                fingerprints(&queries, |raw| whole.search(raw), guard.wrapper().catalog()),
                "{shards}-shard identity broke mid-interleaving"
            );
            {
                let shard_guard = gather.engine().engine();
                assert_postings_and_stats_identical(
                    shard_guard.wrapper().store(),
                    guard.wrapper().database(),
                );
            }
        }
        // At least one poison record really was rejected on both sides.
        assert!(total_rejected > 0);
    }
}

// ---------------------------------------------------------------------------
// 3. Feedback epochs: supervised updates + EM refinement on both sides.
// ---------------------------------------------------------------------------

#[test]
fn feedback_epochs_preserve_identity() {
    let db = imdb_db(42);
    let queries = imdb_queries();
    let wl = quest::data::imdb::workload();
    let whole = unsharded(&db);
    let gather = sharded(&db, 4);
    let mut oracle = quest::data::FeedbackOracle::new(0.2, 21);
    for round in 0..3 {
        let feedback: Vec<(Configuration, bool)> = wl
            .iter()
            .take(3 + round)
            .map(|wq| oracle.feedback_for(db.catalog(), wq))
            .collect();
        for (cfg, positive) in &feedback {
            whole
                .engine()
                .feedback_configuration(cfg, *positive)
                .expect("unsharded feedback records");
            gather
                .engine()
                .engine()
                .feedback_configuration(cfg, *positive)
                .expect("sharded feedback records");
        }
        if round == 1 {
            let a = whole.engine().refine_feedback_model(3).expect("EM refines");
            let b = gather
                .engine()
                .engine()
                .refine_feedback_model(3)
                .expect("EM refines");
            assert_eq!(a, b, "EM iteration counts diverged");
        }
        assert_eq!(
            whole.engine().feedback_epoch(),
            gather.engine().engine().feedback_epoch()
        );
        assert_eq!(
            fingerprints(&queries, |raw| gather.search(raw), db.catalog()),
            fingerprints(&queries, |raw| whole.search(raw), db.catalog()),
            "feedback round {round}: sharded ranking diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// 4. Rebalance: n → m keeps searches, postings, and stats bit-identical.
// ---------------------------------------------------------------------------

#[test]
fn rebalance_preserves_search_identity() {
    let db = imdb_db(42);
    let queries = imdb_queries();
    let whole = unsharded(&db);
    let reference = fingerprints(&queries, |raw| whole.search(raw), db.catalog());
    let store = ShardedStore::from_database(&db, &shard_config(2)).expect("store builds");
    for target in [1usize, 4, 8] {
        let rebalanced = store.rebalance(&shard_config(target)).expect("rebalance");
        rebalanced.validate().expect("placement + RI hold");
        assert_postings_and_stats_identical(&rebalanced, &db);
        let gather = ScatterGather::from_store(rebalanced, QuestConfig::default())
            .expect("rebalanced engine builds");
        assert_eq!(
            fingerprints(&queries, |raw| gather.search(raw), db.catalog()),
            reference,
            "rebalance to {target} shards changed an answer"
        );
    }
}

// ---------------------------------------------------------------------------
// 5. ShardedPrimary: WAL-backed commits, LSN vector, reopen, replicas.
// ---------------------------------------------------------------------------

#[test]
fn sharded_primary_commits_recover_and_feed_replicas() {
    let dir = temp_dir("primary");
    let db = imdb_db(42);
    let queries = {
        let mut q = imdb_queries();
        q.push("scatter boulevard".into());
        q
    };
    let whole = unsharded(&db);
    let mut primary =
        ShardedPrimary::open(&dir, db.clone(), &shard_config(3), QuestConfig::default())
            .expect("sharded primary opens");

    for batch in mutation_batches(&db) {
        let whole_report = whole.apply(&batch).expect("unsharded apply");
        let receipt = primary.commit(&batch).expect("sharded commit");
        assert_reports_match(&receipt.report, &whole_report);
        assert_eq!(receipt.lsns.len(), 3);
        assert_eq!(
            fingerprints(
                &queries,
                |raw| primary.search(raw).map_err(|e| match e {
                    quest::shard::ShardError::Engine(e) => e,
                    other => panic!("unexpected error {other}"),
                }),
                db.catalog()
            ),
            fingerprints(&queries, |raw| whole.search(raw), db.catalog()),
            "sharded primary diverged from unsharded engine mid-commit"
        );
    }
    primary.sync().expect("group fsync");
    let topo = primary.topology();
    assert!(topo.is_healthy());
    assert_eq!(topo.shard_count, 3);
    // LSN sequences are per shard: only shards that were routed records
    // advanced, and at least one did.
    assert!(topo.lsns.iter().any(|&l| l > 0), "lsns: {:?}", topo.lsns);

    // A stock per-shard replica bootstraps from one shard's primary and
    // converges to the gateway's copy of that shard, bit for bit.
    let snapshot_lsns = primary.publish_snapshots().expect("snapshots publish");
    let replica = Replica::from_primary("r0", primary.shard(0)).expect("replica bootstraps");
    assert_eq!(replica.applied_lsn(), snapshot_lsns[0]);
    replica.sync().expect("replica drains");
    assert_eq!(replica.applied_lsn(), topo.lsns[0]);
    {
        let replica_guard = replica.engine().engine();
        let gateway_guard = primary.gateway().engine().engine();
        let shard0 = gateway_guard.wrapper().store().shard(0);
        for attr in shard0.catalog().attributes() {
            assert_eq!(
                replica_guard.wrapper().database().index(attr.id),
                shard0.index(attr.id)
            );
        }
    }

    // Reopen from disk: every shard recovers, the LSN vector continues,
    // and the gateway answers exactly as before.
    let before = fingerprints(&queries, |raw| primary.gateway().search(raw), db.catalog());
    let lsns_before = primary.topology().lsns;
    drop(primary);
    let reopened = ShardedPrimary::reopen(
        &dir,
        db.catalog().clone(),
        &shard_config(3),
        QuestConfig::default(),
    )
    .expect("sharded primary reopens");
    assert_eq!(reopened.topology().lsns, lsns_before);
    assert_eq!(
        fingerprints(&queries, |raw| reopened.gateway().search(raw), db.catalog()),
        before,
        "recovery changed an answer"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn topology_health_is_purely_observational() {
    let dir = temp_dir("health");
    let db = imdb_db(42);
    let queries = imdb_queries();
    let mut primary =
        ShardedPrimary::open(&dir, db.clone(), &shard_config(3), QuestConfig::default())
            .expect("sharded primary opens");
    for batch in mutation_batches(&db) {
        primary.commit(&batch).expect("sharded commit");
    }
    let search = |p: &ShardedPrimary| {
        fingerprints(
            &queries,
            |raw| {
                p.search(raw).map_err(|e| match e {
                    quest::shard::ShardError::Engine(e) => e,
                    other => panic!("unexpected error {other}"),
                })
            },
            db.catalog(),
        )
    };
    let before = search(&primary);

    // Grade against a zero-tolerance spec: routed batches land unevenly,
    // so the shards' independent LSN sequences skew and the verdict is
    // unhealthy — but grading is a pure read. The set still serves, the
    // answers are still bit-identical, and the fencing state is untouched.
    let spec = quest::obs::SloSpec {
        max_lag: Some(0),
        ..Default::default()
    };
    let topo = primary.topology();
    let report = topo.health(&spec);
    if topo.lsns.iter().max() != topo.lsns.iter().min() {
        assert_ne!(report.status, quest::obs::HealthStatus::Healthy);
        assert!(
            report.reasons.iter().any(|r| r.contains("lag")),
            "{report:?}"
        );
    }
    assert!(primary.is_healthy(), "grading must not fence");
    assert_eq!(search(&primary), before, "grading changed an answer");

    // A permissive spec over the same topology is healthy; fencing a
    // shard turns any verdict critical with the shard named — and the
    // report is still just a value, not a state change.
    assert_eq!(
        topo.health(&quest::obs::SloSpec::default()).status,
        quest::obs::HealthStatus::Healthy
    );
    primary.fence(1, "drill");
    let report = primary.topology().health(&quest::obs::SloSpec::default());
    assert_eq!(report.status, quest::obs::HealthStatus::Critical);
    assert!(
        report.reasons.iter().any(|r| r.contains("shard 1 fenced")),
        "{report:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// 6. Config validation regression: zero shards rejected everywhere.
// ---------------------------------------------------------------------------

#[test]
fn zero_shard_count_is_rejected_everywhere() {
    // ShardConfig, the partitioning knob.
    let err = quest::shard::ShardConfig::new(0)
        .validate()
        .expect_err("0 rejected");
    assert!(err.to_string().contains("shard_count = 0"), "{err}");
    assert!(err.to_string().contains("valid range"), "{err}");

    // QuestConfig, the engine introspection knob — alongside the existing
    // result_limit = Some(0) rejection.
    let bad = QuestConfig {
        shard_count: 0,
        ..QuestConfig::default()
    };
    let err = Quest::new(FullAccessWrapper::new(imdb_db(42)), bad).expect_err("0 rejected");
    assert!(err.to_string().contains("shard_count"), "{err}");
    let bad = QuestConfig {
        result_limit: Some(0),
        ..QuestConfig::default()
    };
    let err = Quest::new(FullAccessWrapper::new(imdb_db(42)), bad).expect_err("Some(0) rejected");
    assert!(err.to_string().contains("result_limit"), "{err}");

    // And the sane path still works at the boundary: one shard is legal.
    quest::shard::ShardConfig::new(1)
        .validate()
        .expect("1 is unsharded");
}
