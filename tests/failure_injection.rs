//! Failure injection: malformed schemas, hostile queries and edge-case
//! configurations must fail cleanly (typed errors), never panic.

use quest::prelude::*;
use quest_data::imdb::{self, ImdbScale};

fn engine() -> Quest<FullAccessWrapper> {
    let db = imdb::generate(&ImdbScale {
        movies: 30,
        seed: 2,
    })
    .expect("generate");
    Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build")
}

#[test]
fn empty_and_stopword_queries() {
    let e = engine();
    assert!(matches!(e.search(""), Err(QuestError::EmptyQuery)));
    assert!(matches!(e.search("   \t "), Err(QuestError::EmptyQuery)));
    assert!(matches!(
        e.search("the of and"),
        Err(QuestError::EmptyQuery)
    ));
}

#[test]
fn oversized_query_rejected() {
    let e = engine();
    let q = (0..12)
        .map(|i| format!("kw{i}"))
        .collect::<Vec<_>>()
        .join(" ");
    assert!(matches!(
        e.search(&q),
        Err(QuestError::TooManyKeywords { .. })
    ));
}

#[test]
fn unknown_keywords_still_answer_or_fail_cleanly() {
    let e = engine();
    // Pure gibberish: the emission floor keeps decoding alive; the engine
    // returns (low-quality) explanations rather than panicking.
    let out = e.search("zzqx vvrw").expect("gibberish handled");
    for ex in &out.explanations {
        // Whatever comes back must execute.
        e.execute(ex).expect("sql executes");
    }
}

#[test]
fn hostile_strings_are_safe() {
    let e = engine();
    for q in [
        "Robert'); DROP TABLE movie;--",
        "movie % _ \\ '",
        "\"unterminated phrase",
        "emoji 🎬 query",
        "ünïcödé tïtle",
    ] {
        match e.search(q) {
            Ok(out) => {
                for ex in &out.explanations {
                    let _ = e.execute(ex);
                    // Rendered SQL must escape quotes.
                    let sql = ex.sql(e.wrapper().catalog());
                    assert!(!sql.contains("');"), "unescaped quote in {sql}");
                }
            }
            Err(err) => {
                let _ = err.to_string();
            }
        }
    }
}

#[test]
fn invalid_engine_parameters_rejected() {
    let db = imdb::generate(&ImdbScale {
        movies: 10,
        seed: 2,
    })
    .expect("generate");
    let w = FullAccessWrapper::new(db);
    for bad in [
        QuestConfig {
            o_cap: -0.1,
            ..Default::default()
        },
        QuestConfig {
            o_i: 2.0,
            ..Default::default()
        },
        QuestConfig {
            o_c: f64::NAN,
            ..Default::default()
        },
        QuestConfig {
            k: 0,
            ..Default::default()
        },
    ] {
        assert!(Quest::new(w.clone(), bad).is_err());
    }
}

#[test]
fn schema_without_fk_still_searches() {
    // A single isolated table: no joins possible, single-table answers only.
    let mut c = Catalog::new();
    c.define_table("note")
        .expect("define")
        .pk("id", DataType::Int)
        .expect("pk")
        .col("body", DataType::Text)
        .expect("col")
        .finish();
    let mut db = Database::new(c).expect("db");
    db.insert("note", Row::new(vec![1.into(), "remember the milk".into()]))
        .expect("insert");
    db.finalize();
    let e = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let out = e.search("milk").expect("search");
    assert!(!out.explanations.is_empty());
    assert!(e.execute(&out.explanations[0]).expect("exec").len() == 1);
}

#[test]
fn malformed_catalogs_rejected_at_setup() {
    // No primary key.
    let mut c = Catalog::new();
    c.define_table("t")
        .expect("define")
        .col("x", DataType::Int)
        .expect("col")
        .finish();
    assert!(Database::new(c).is_err());
    // Empty catalog builds a database but no engine.
    let db = Database::new(Catalog::new()).expect("empty catalog is structurally fine");
    assert!(Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).is_err());
}

#[test]
fn feedback_with_foreign_terms_rejected() {
    let e = engine();
    // A configuration whose term refers to an attribute id far outside the
    // catalog is rejected, not silently accepted.
    let bogus = Configuration::new(vec![DbTerm::Domain(quest::store::AttrId(9999))], 1.0);
    assert!(e.feedback_configuration(&bogus, true).is_err());
}

fn sharded_primary_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("quest-shard-failures")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn broken_shard_refuses_queries_with_a_typed_error() {
    use quest::shard::{ShardConfig, ShardError};
    let dir = sharded_primary_dir("fenced-read");
    let db = imdb::generate(&ImdbScale {
        movies: 40,
        seed: 3,
    })
    .expect("generate");
    let mut primary = ShardedPrimary::open(
        &dir,
        db,
        &ShardConfig {
            shard_count: 3,
            parallel: true,
        },
        QuestConfig::default(),
    )
    .expect("sharded primary opens");
    assert!(primary.search("casablanca").is_ok());

    // One shard goes down (operator fence, e.g. after a failing disk is
    // detected out of band). A query against the set must now return a
    // typed error naming the shard — never silently partial results from
    // the surviving shards.
    primary.fence(1, "fsync: I/O error (injected)");
    match primary.search("casablanca") {
        Err(ShardError::ShardDown { shard, reason }) => {
            assert_eq!(shard, 1);
            assert!(reason.contains("fsync"), "{reason}");
        }
        other => panic!("expected ShardDown, got {other:?}"),
    }
    // Writes are refused with the same typed error.
    let batch = vec![ChangeRecord::Insert {
        table: "person".into(),
        row: vec![910_000.into(), "Fenced Writer".into(), 1960.into()],
    }];
    assert!(matches!(
        primary.commit(&batch),
        Err(ShardError::ShardDown { shard: 1, .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_shard_primary_is_reported_in_the_topology() {
    use quest::shard::ShardConfig;
    let dir = sharded_primary_dir("fenced-topology");
    let db = imdb::generate(&ImdbScale {
        movies: 40,
        seed: 3,
    })
    .expect("generate");
    let mut primary = ShardedPrimary::open(
        &dir,
        db,
        &ShardConfig {
            shard_count: 4,
            parallel: true,
        },
        QuestConfig::default(),
    )
    .expect("sharded primary opens");
    let healthy = primary.topology();
    assert!(healthy.is_healthy());
    assert_eq!(healthy.broken, vec![None; 4]);

    // A shard whose primary poisons on fsync failure is fenced; the
    // topology names it and carries the reason for the operator.
    primary.fence(2, "wal poisoned after failed fsync");
    let topo = primary.topology();
    assert!(!topo.is_healthy());
    assert_eq!(topo.shard_count, 4);
    for (i, state) in topo.broken.iter().enumerate() {
        if i == 2 {
            let reason = state.as_deref().expect("shard 2 is fenced");
            assert!(reason.contains("poisoned"), "{reason}");
        } else {
            assert!(state.is_none(), "shard {i} must stay healthy");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
