//! Failure injection: malformed schemas, hostile queries and edge-case
//! configurations must fail cleanly (typed errors), never panic — and
//! deterministic failpoint plans must heal through the retry/re-bootstrap
//! machinery instead of terminating service.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use quest::fault::{self, ManualClock, RetryPolicy};
use quest::prelude::*;
use quest::replica::PrimaryOptions;
use quest_data::imdb::{self, ImdbScale};

/// The failpoint registry is process-global, so every test in this binary
/// that installs a plan — or that drives WAL traffic which could consume an
/// armed plan's hits — serializes on this lock.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// A small deterministic insert batch with keys disjoint per `round`.
fn insert_batch(round: i64) -> Vec<ChangeRecord> {
    let base = 920_000 + round * 10;
    vec![
        ChangeRecord::Insert {
            table: "person".into(),
            row: vec![
                (base + 1).into(),
                format!("Injected Person {round}").into(),
                (1940 + round).into(),
            ],
        },
        ChangeRecord::Insert {
            table: "movie".into(),
            row: vec![
                (base + 2).into(),
                format!("Injected Feature {round}").into(),
                (1970 + round).into(),
                6.5.into(),
                (base + 1).into(),
            ],
        },
    ]
}

/// A primary wired to a manual clock so retry backoff takes no wall time.
fn manual_primary(dir: &std::path::Path, db: Database, sync_policy: SyncPolicy) -> Primary {
    Primary::open_with(
        dir,
        db,
        QuestConfig::default(),
        PrimaryOptions {
            sync_policy,
            retry: RetryPolicy {
                retries: 4,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(4),
                jitter_seed: 1,
            },
            clock: Arc::new(ManualClock::new()),
            ..Default::default()
        },
    )
    .expect("primary opens")
}

fn engine() -> Quest<FullAccessWrapper> {
    let db = imdb::generate(&ImdbScale {
        movies: 30,
        seed: 2,
    })
    .expect("generate");
    Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build")
}

#[test]
fn empty_and_stopword_queries() {
    let e = engine();
    assert!(matches!(e.search(""), Err(QuestError::EmptyQuery)));
    assert!(matches!(e.search("   \t "), Err(QuestError::EmptyQuery)));
    assert!(matches!(
        e.search("the of and"),
        Err(QuestError::EmptyQuery)
    ));
}

#[test]
fn oversized_query_rejected() {
    let e = engine();
    let q = (0..12)
        .map(|i| format!("kw{i}"))
        .collect::<Vec<_>>()
        .join(" ");
    assert!(matches!(
        e.search(&q),
        Err(QuestError::TooManyKeywords { .. })
    ));
}

#[test]
fn unknown_keywords_still_answer_or_fail_cleanly() {
    let e = engine();
    // Pure gibberish: the emission floor keeps decoding alive; the engine
    // returns (low-quality) explanations rather than panicking.
    let out = e.search("zzqx vvrw").expect("gibberish handled");
    for ex in &out.explanations {
        // Whatever comes back must execute.
        e.execute(ex).expect("sql executes");
    }
}

#[test]
fn hostile_strings_are_safe() {
    let e = engine();
    for q in [
        "Robert'); DROP TABLE movie;--",
        "movie % _ \\ '",
        "\"unterminated phrase",
        "emoji 🎬 query",
        "ünïcödé tïtle",
    ] {
        match e.search(q) {
            Ok(out) => {
                for ex in &out.explanations {
                    let _ = e.execute(ex);
                    // Rendered SQL must escape quotes.
                    let sql = ex.sql(e.wrapper().catalog());
                    assert!(!sql.contains("');"), "unescaped quote in {sql}");
                }
            }
            Err(err) => {
                let _ = err.to_string();
            }
        }
    }
}

#[test]
fn invalid_engine_parameters_rejected() {
    let db = imdb::generate(&ImdbScale {
        movies: 10,
        seed: 2,
    })
    .expect("generate");
    let w = FullAccessWrapper::new(db);
    for bad in [
        QuestConfig {
            o_cap: -0.1,
            ..Default::default()
        },
        QuestConfig {
            o_i: 2.0,
            ..Default::default()
        },
        QuestConfig {
            o_c: f64::NAN,
            ..Default::default()
        },
        QuestConfig {
            k: 0,
            ..Default::default()
        },
    ] {
        assert!(Quest::new(w.clone(), bad).is_err());
    }
}

#[test]
fn schema_without_fk_still_searches() {
    // A single isolated table: no joins possible, single-table answers only.
    let mut c = Catalog::new();
    c.define_table("note")
        .expect("define")
        .pk("id", DataType::Int)
        .expect("pk")
        .col("body", DataType::Text)
        .expect("col")
        .finish();
    let mut db = Database::new(c).expect("db");
    db.insert("note", Row::new(vec![1.into(), "remember the milk".into()]))
        .expect("insert");
    db.finalize();
    let e = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let out = e.search("milk").expect("search");
    assert!(!out.explanations.is_empty());
    assert!(e.execute(&out.explanations[0]).expect("exec").len() == 1);
}

#[test]
fn malformed_catalogs_rejected_at_setup() {
    // No primary key.
    let mut c = Catalog::new();
    c.define_table("t")
        .expect("define")
        .col("x", DataType::Int)
        .expect("col")
        .finish();
    assert!(Database::new(c).is_err());
    // Empty catalog builds a database but no engine.
    let db = Database::new(Catalog::new()).expect("empty catalog is structurally fine");
    assert!(Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).is_err());
}

#[test]
fn feedback_with_foreign_terms_rejected() {
    let e = engine();
    // A configuration whose term refers to an attribute id far outside the
    // catalog is rejected, not silently accepted.
    let bogus = Configuration::new(vec![DbTerm::Domain(quest::store::AttrId(9999))], 1.0);
    assert!(e.feedback_configuration(&bogus, true).is_err());
}

fn sharded_primary_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("quest-shard-failures")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn broken_shard_refuses_queries_with_a_typed_error() {
    use quest::shard::{ShardConfig, ShardError};
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = sharded_primary_dir("fenced-read");
    let db = imdb::generate(&ImdbScale {
        movies: 40,
        seed: 3,
    })
    .expect("generate");
    let mut primary = ShardedPrimary::open(
        &dir,
        db,
        &ShardConfig {
            shard_count: 3,
            parallel: true,
        },
        QuestConfig::default(),
    )
    .expect("sharded primary opens");
    assert!(primary.search("casablanca").is_ok());

    // One shard goes down (operator fence, e.g. after a failing disk is
    // detected out of band). A query against the set must now return a
    // typed error naming the shard — never silently partial results from
    // the surviving shards.
    primary.fence(1, "fsync: I/O error (injected)");
    match primary.search("casablanca") {
        Err(ShardError::ShardDown { shard, reason }) => {
            assert_eq!(shard, 1);
            assert!(reason.contains("fsync"), "{reason}");
        }
        other => panic!("expected ShardDown, got {other:?}"),
    }
    // Writes are refused with the same typed error.
    let batch = vec![ChangeRecord::Insert {
        table: "person".into(),
        row: vec![910_000.into(), "Fenced Writer".into(), 1960.into()],
    }];
    assert!(matches!(
        primary.commit(&batch),
        Err(ShardError::ShardDown { shard: 1, .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_shard_primary_is_reported_in_the_topology() {
    use quest::shard::ShardConfig;
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = sharded_primary_dir("fenced-topology");
    let db = imdb::generate(&ImdbScale {
        movies: 40,
        seed: 3,
    })
    .expect("generate");
    let mut primary = ShardedPrimary::open(
        &dir,
        db,
        &ShardConfig {
            shard_count: 4,
            parallel: true,
        },
        QuestConfig::default(),
    )
    .expect("sharded primary opens");
    let healthy = primary.topology();
    assert!(healthy.is_healthy());
    assert_eq!(healthy.broken, vec![None; 4]);

    // A shard whose primary poisons on fsync failure is fenced; the
    // topology names it and carries the reason for the operator.
    primary.fence(2, "wal poisoned after failed fsync");
    let topo = primary.topology();
    assert!(!topo.is_healthy());
    assert_eq!(topo.shard_count, 4);
    for (i, state) in topo.broken.iter().enumerate() {
        if i == 2 {
            let reason = state.as_deref().expect("shard 2 is fenced");
            assert!(reason.contains("poisoned"), "{reason}");
        } else {
            assert!(state.is_none(), "shard {i} must stay healthy");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn failpoint_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("quest-failpoints")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn small_db() -> Database {
    imdb::generate(&ImdbScale {
        movies: 25,
        seed: 5,
    })
    .expect("generate")
}

#[test]
fn torn_append_mid_batch_heals_on_retry() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    let dir = failpoint_dir("torn-append");
    let db = small_db();
    let primary = manual_primary(&dir, db.clone(), SyncPolicy::Never);

    // The first append tears mid-batch: half the framed bytes land, the
    // write errors, and the writer rolls the file back. The retry loop
    // must re-append the whole batch at the SAME LSNs — nothing torn left
    // behind, nothing logged twice.
    fault::install("wal.append@1=torn_write".parse().expect("plan parses"));
    let batch = insert_batch(0);
    let receipt = primary.commit(&batch).expect("torn write heals on retry");
    fault::clear();
    assert_eq!(receipt.first_lsn, 1);
    assert_eq!(receipt.last_lsn, batch.len() as u64);
    assert!(receipt.report.all_applied());

    // The log holds exactly the batch, checksums intact, no torn tail.
    let log = quest::wal::read_log(&primary.wal_path(), db.catalog()).expect("log reads cleanly");
    assert_eq!(log.records.len(), batch.len());
    assert_eq!(
        log.records.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
        vec![1, 2]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_fsync_failure_no_longer_poisons_the_writer() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    let dir = failpoint_dir("fsync-heal");
    let db = small_db();
    // SyncPolicy::Always drives the injected fsync inside the commit path
    // itself — the exact sequence that used to leave the writer poisoned
    // for good and the primary refusing every later commit.
    let primary = manual_primary(&dir, db, SyncPolicy::Always);

    fault::install("wal.fsync@1=fsync_error".parse().expect("plan parses"));
    let receipt = primary
        .commit(&insert_batch(0))
        .expect("transient fsync failure heals inside commit");
    assert!(receipt.report.all_applied());
    fault::clear();

    // Regression: the writer is healed, not poisoned — later commits and
    // explicit durability points keep working without reopening anything.
    let receipt = primary
        .commit(&insert_batch(1))
        .expect("writer survives the earlier fsync fault");
    assert!(receipt.report.all_applied());
    primary.sync().expect("explicit sync works");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_snapshot_publish_leaves_prior_snapshot_bootstrappable() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    let dir = failpoint_dir("snapshot-fault");
    let db = small_db();
    let primary = manual_primary(&dir, db, SyncPolicy::Never);
    let receipt = primary.commit(&insert_batch(0)).expect("commit");

    // A PERMANENT snapshot fault (trailing `!`): the retry loop must not
    // burn its budget on it, and the publish fails...
    fault::install("wal.snapshot@1=append_error!".parse().expect("plan parses"));
    assert!(primary.publish_snapshot().is_err());
    fault::clear();

    // ...but the snapshot written at open (LSN 0) is untouched, so a new
    // replica still bootstraps from it and catches up over the log.
    let replica = Replica::from_primary("fresh", &primary).expect("bootstrap uses prior snapshot");
    let report = replica.sync_to(receipt.last_lsn).expect("catches up");
    assert_eq!(report.lsn, primary.last_lsn());
    assert!(replica.is_healthy());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healed_replica_resumes_serving_bounded_reads() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    let dir = failpoint_dir("quarantine-heal");
    let db = small_db();
    let clock = Arc::new(ManualClock::new());
    let retry = RetryPolicy {
        retries: 4,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(4),
        jitter_seed: 1,
    };
    let primary = Arc::new(
        Primary::open_with(
            &dir,
            db,
            QuestConfig::default(),
            PrimaryOptions {
                retry: retry.clone(),
                clock: clock.clone(),
                ..Default::default()
            },
        )
        .expect("primary opens"),
    );
    let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
    set.set_recovery(retry, clock.clone());
    let victim = set.spawn_replica("victim").expect("spawn");
    primary.commit(&insert_batch(0)).expect("commit");
    victim.sync().expect("baseline sync");

    // An injected apply fault breaks the replica mid-tail.
    fault::install("replica.apply@1=apply_error".parse().expect("plan parses"));
    primary.commit(&insert_batch(1)).expect("commit");
    assert!(victim.sync().is_err(), "the injected apply fault surfaces");
    assert!(!victim.is_healthy());

    // Supervision quarantines it, probes after backoff, re-bootstraps from
    // the latest snapshot, and swaps the healed instance back in.
    let mut iters = 0;
    loop {
        clock.advance(Duration::from_millis(20));
        let healed = set.supervise();
        if healed > 0 {
            break;
        }
        iters += 1;
        assert!(iters < 64, "supervision never healed the replica");
    }
    fault::clear();

    // The healed replica serves read-your-writes at the full bound again —
    // routed by name, not via the primary fallback.
    let last = primary.last_lsn();
    let routed = set
        .query("injected feature", Consistency::AtLeast(last))
        .expect("bounded read routes");
    assert_eq!(routed.served_by, "victim");
    assert!(routed.lsn >= last, "{routed:?}");
    std::fs::remove_dir_all(&dir).ok();
}
