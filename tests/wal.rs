//! Crash-recovery determinism: for a scripted mutation+query workload,
//! snapshot + WAL-suffix replay must reproduce a `Database` whose query
//! results — SQL text and score *bits* — are identical to the uninterrupted
//! run, down to the inverted-index postings and statistics.

use std::path::PathBuf;

use quest::prelude::*;
use quest::wal::{read_log, recover, write_snapshot, WalWriter};

fn temp_path(name: &str, ext: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("quest-wal-integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}.{ext}", std::process::id()))
}

fn imdb_db() -> Database {
    quest::data::imdb::generate(&quest::data::imdb::ImdbScale {
        movies: 150,
        seed: 42,
    })
    .expect("imdb generates")
}

/// The scripted mutation workload: inserts, updates (including bit-tricky
/// float ratings), and a delete, all through the checked mutation API.
fn mutation_script(db: &Database) -> Vec<ChangeRecord> {
    let movie = db.catalog().table_id("movie").expect("movie");
    let person = db.catalog().table_id("person").expect("person");
    // Two existing rows to update, read off the live instance.
    let movie_row = db.table_data(movie).iter().next().expect("a movie").1;
    let person_row = db.table_data(person).iter().next().expect("a person").1;
    let mut retitled = movie_row.values().to_vec();
    retitled[1] = "Recovered Horizons".into();
    retitled[3] = (0.1f64 + 0.2).into(); // rating: inexact in decimal
    let mut renamed = person_row.values().to_vec();
    renamed[1] = "Norma Desmond".into();
    vec![
        ChangeRecord::Insert {
            table: "person".into(),
            row: vec![700_001.into(), "Joe Gillis".into(), 1917.into()],
        },
        ChangeRecord::Insert {
            table: "movie".into(),
            row: vec![
                700_002.into(),
                "Sunset Revisited".into(),
                1950.into(),
                8.5.into(),
                700_001.into(),
            ],
        },
        ChangeRecord::Update {
            table: "movie".into(),
            key: vec![movie_row.get(0).clone()],
            row: retitled,
        },
        ChangeRecord::Update {
            table: "person".into(),
            key: vec![person_row.get(0).clone()],
            row: renamed,
        },
        ChangeRecord::Insert {
            table: "movie".into(),
            row: vec![
                700_003.into(),
                "Ephemeral".into(),
                2001.into(),
                Value::Null,
                Value::Null,
            ],
        },
        ChangeRecord::Delete {
            table: "movie".into(),
            key: vec![700_003.into()],
        },
    ]
}

/// Bit-exact query fingerprints over a mixed workload: generated queries
/// plus ones that only match post-mutation data.
fn query_fingerprints(db: &Database) -> Vec<(String, Vec<(String, u64)>)> {
    let engine = Quest::new(FullAccessWrapper::new(db.clone()), QuestConfig::default())
        .expect("engine builds");
    let mut queries: Vec<String> = quest::data::imdb::workload()
        .iter()
        .take(6)
        .map(|wq| wq.raw.clone())
        .collect();
    queries.extend(
        ["recovered horizons", "norma desmond", "sunset revisited"]
            .iter()
            .map(|s| s.to_string()),
    );
    queries
        .into_iter()
        .map(|raw| {
            let prints = match engine.search(&raw) {
                Ok(out) => out
                    .explanations
                    .iter()
                    .map(|e| (e.sql(engine.wrapper().catalog()), e.score.to_bits()))
                    .collect(),
                Err(_) => Vec::new(),
            };
            (raw, prints)
        })
        .collect()
}

/// Structural identity: indexes and statistics bit-equal attribute by
/// attribute (stronger than query-level equality; catches latent drift).
fn assert_structurally_identical(a: &Database, b: &Database) {
    for attr in a.catalog().attributes() {
        assert_eq!(
            a.index(attr.id),
            b.index(attr.id),
            "inverted index of {} diverged",
            a.catalog().qualified_name(attr.id)
        );
        assert_eq!(a.attr_stats(attr.id), b.attr_stats(attr.id));
    }
    for fk in a.catalog().foreign_keys() {
        assert_eq!(a.fk_stats(*fk), b.fk_stats(*fk));
    }
    for table in a.catalog().tables() {
        assert_eq!(
            a.table_data(table.id).slot_count(),
            b.table_data(table.id).slot_count(),
            "slot layout of {} diverged",
            table.name
        );
    }
}

#[test]
fn snapshot_plus_wal_suffix_reproduces_the_uninterrupted_run() {
    let wal_path = temp_path("determinism", "wal");
    let snap_path = temp_path("determinism", "snap");
    let mut db = imdb_db();
    let script = mutation_script(&db);

    // Uninterrupted run: write-ahead, apply, snapshot mid-script.
    let snapshot_after = 3usize;
    let mut writer = WalWriter::open(&wal_path, db.catalog()).expect("wal opens");
    for (i, change) in script.iter().enumerate() {
        let seq = writer.append(change).expect("append");
        change.apply(&mut db).expect("apply");
        if i + 1 == snapshot_after {
            writer.sync().expect("sync");
            write_snapshot(&db, &snap_path, seq).expect("snapshot");
        }
    }
    writer.sync().expect("sync");
    db.validate().expect("uninterrupted instance is consistent");
    let expected = query_fingerprints(&db);

    // Crash here. Recover from snapshot + log suffix.
    let recovery = recover(&snap_path, &wal_path).expect("recovery succeeds");
    assert_eq!(recovery.applied, script.len() - snapshot_after);
    assert!(!recovery.torn_tail);
    recovery
        .db
        .validate()
        .expect("recovered instance is consistent");
    assert_structurally_identical(&db, &recovery.db);
    assert_eq!(
        query_fingerprints(&recovery.db),
        expected,
        "recovered query results must be bit-identical"
    );

    // Recovery is idempotent: running it again changes nothing.
    let again = recover(&snap_path, &wal_path).expect("second recovery");
    assert_structurally_identical(&recovery.db, &again.db);

    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn recovery_without_snapshot_replays_the_whole_log() {
    let wal_path = temp_path("fulllog", "wal");
    let snap_path = temp_path("fulllog", "snap");
    let mut db = imdb_db();
    // Snapshot the pristine database, then log the whole script.
    write_snapshot(&db, &snap_path, 0).expect("snapshot");
    let mut writer = WalWriter::open(&wal_path, db.catalog()).expect("wal opens");
    let script = mutation_script(&db);
    for change in &script {
        writer.append(change).expect("append");
        change.apply(&mut db).expect("apply");
    }
    writer.sync().expect("sync");

    let recovery = recover(&snap_path, &wal_path).expect("recovery succeeds");
    assert_eq!(recovery.applied, script.len());
    recovery
        .db
        .validate()
        .expect("recovered instance validates");
    assert_structurally_identical(&db, &recovery.db);

    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn live_rejected_records_replay_to_the_same_state() {
    // The write-ahead protocol logs records *before* applying them, so the
    // log legitimately contains records the live system rejected. Replay
    // must re-reject exactly those (rejections are deterministic) and
    // converge on the live state — one poison record must never make the
    // log unrecoverable.
    let wal_path = temp_path("rejected", "wal");
    let snap_path = temp_path("rejected", "snap");
    let db = imdb_db();
    write_snapshot(&db, &snap_path, 0).expect("snapshot");
    let mut writer = WalWriter::open(&wal_path, db.catalog()).expect("wal opens");

    let mut script = mutation_script(&db);
    // Poison records mid-stream: a dangling-FK insert and a restricted
    // delete, logged like everything else.
    script.insert(
        2,
        ChangeRecord::Insert {
            table: "movie".into(),
            row: vec![
                700_500.into(),
                "Dangling".into(),
                2000.into(),
                Value::Null,
                999_999.into(),
            ],
        },
    );
    script.push(ChangeRecord::Delete {
        table: "person".into(),
        key: vec![700_001.into()], // still directs "Sunset Revisited"
    });

    // Live run through the serving layer: log first, then apply.
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("engine");
    let cached = CachedEngine::new(engine);
    for change in &script {
        writer.append(change).expect("append");
    }
    writer.sync().expect("sync");
    let report = cached.apply(&script).expect("batch applies");
    assert_eq!(report.rejected.len(), 2, "both poison records rejected");
    assert_eq!(report.applied, script.len() - 2);

    let recovery = recover(&snap_path, &wal_path).expect("recovery succeeds");
    assert_eq!(recovery.applied, report.applied);
    assert_eq!(recovery.rejected, 2, "replay re-rejects the same records");
    let live = cached.engine().wrapper().database().clone();
    assert_structurally_identical(&live, &recovery.db);

    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn torn_tail_recovers_to_the_last_complete_record() {
    let wal_path = temp_path("torn", "wal");
    let snap_path = temp_path("torn", "snap");
    let mut db = imdb_db();
    write_snapshot(&db, &snap_path, 0).expect("snapshot");
    let mut writer = WalWriter::open(&wal_path, db.catalog()).expect("wal opens");
    let script = mutation_script(&db);
    // Only the first four records make it to disk intact; the fifth is
    // torn mid-write by the "crash".
    for change in script.iter().take(4) {
        writer.append(change).expect("append");
        change.apply(&mut db).expect("apply");
    }
    drop(writer);
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .expect("reopen");
        f.write_all(b"5\tdeadbeef\tI\tmovie\ti7000").expect("tear");
    }

    let recovery = recover(&snap_path, &wal_path).expect("recovery succeeds");
    assert!(recovery.torn_tail, "the torn record must be detected");
    assert_eq!(recovery.applied, 4);
    recovery
        .db
        .validate()
        .expect("recovered instance validates");
    assert_structurally_identical(&db, &recovery.db);

    // Re-opening the log for append truncates the torn tail; the next
    // append lands at sequence 5 and reads back cleanly.
    let mut writer = WalWriter::open(&wal_path, db.catalog()).expect("reopen");
    assert_eq!(writer.next_seq(), 5);
    writer.append(&script[4]).expect("append after truncation");
    drop(writer);
    let log = read_log(&wal_path, db.catalog()).expect("log reads");
    assert!(!log.torn_tail);
    assert_eq!(log.records.len(), 5);

    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snap_path).ok();
}
