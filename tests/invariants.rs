//! Cross-crate invariants: laws that only hold when the substrate crates
//! (quest-dst, quest-graph, quest-hmm) and the engine layers (quest-core,
//! quest-data) agree on their contracts. Each test drives a real generated
//! dataset through the facade rather than a synthetic fixture.

use quest::dst::{dempster_combine, dempster_combine_all, Frame, MassFunction};
use quest::prelude::*;
use quest_core::backward::{BackwardModule, SchemaGraphWeights};
use quest_core::forward::ForwardModule;
use quest_core::semantics::SemanticRules;
use quest_data::{imdb, mondial};

fn imdb_wrapper() -> FullAccessWrapper {
    FullAccessWrapper::new(
        imdb::generate(&imdb::ImdbScale {
            movies: 200,
            seed: 42,
        })
        .expect("imdb generates"),
    )
}

/// Turn one engine evidence list (hypothesis scores) into a DST mass
/// function over an n-hypothesis frame, the way the combiner does: singleton
/// masses from normalized scores, remaining mass on Θ as uncertainty.
fn mass_from_scores(frame: Frame, scores: &[f64], uncertainty: f64) -> MassFunction {
    let mut m = MassFunction::new(frame);
    for (i, s) in scores.iter().enumerate() {
        m.add_singleton(i, *s).expect("singleton in frame");
    }
    m.set_uncertainty(uncertainty).expect("valid uncertainty");
    m
}

/// DST invariant, driven by real engine scores: masses built from the
/// forward module's configuration scores still sum to 1 after every
/// `dempster_combine`, and the pignistic transform is a distribution.
#[test]
fn combined_masses_stay_normalized_on_real_scores() {
    let w = imdb_wrapper();
    let fwd = ForwardModule::new(&w, &SemanticRules::default()).expect("forward builds");
    // Emissions are sparse, so many queries admit a single feasible mapping;
    // scan a few (deterministic — the generator seed is pinned) until one
    // yields several hypotheses.
    let configs = [
        "drama 1942",
        "leigh wind drama",
        "fleming wind",
        "drama comedy",
    ]
    .iter()
    .map(|raw| {
        let q = KeywordQuery::parse(raw).expect("parses");
        fwd.top_k_apriori(&fwd.emissions(&w, &q), 8)
            .expect("decodes")
    })
    .find(|c| c.len() >= 2)
    .expect("some query admits several hypotheses");

    let frame = Frame::new(configs.len()).expect("frame");
    let scores: Vec<f64> = configs.iter().map(|c| c.score).collect();
    let apriori = mass_from_scores(frame, &scores, 0.2);
    // A second, blunter source: uniform over the same hypotheses.
    let uniform = mass_from_scores(frame, &vec![1.0; scores.len()], 0.4);

    let c = dempster_combine(&apriori, &uniform).expect("combines");
    assert!(
        (c.mass.total_mass() - 1.0).abs() < 1e-9,
        "total {}",
        c.mass.total_mass()
    );
    assert!((0.0..=1.0).contains(&c.conflict));

    let all = dempster_combine_all(&[apriori, uniform, c.mass.clone()]).expect("combines");
    assert!((all.mass.total_mass() - 1.0).abs() < 1e-9);
    let pignistic: f64 = (0..configs.len())
        .map(|i| all.mass.pignistic(i).expect("in frame"))
        .sum();
    assert!((pignistic - 1.0).abs() < 1e-9, "pignistic sum {pignistic}");
}

/// Steiner invariant across quest-graph and the backward module: every
/// interpretation's tree is a valid connected tree in the schema graph and
/// spans all requested terminal attributes.
#[test]
fn backward_interpretations_are_connected_and_span_terminals() {
    for db in [
        imdb::generate(&imdb::ImdbScale {
            movies: 100,
            seed: 42,
        })
        .expect("imdb generates"),
        mondial::generate(&mondial::MondialScale::default()).expect("mondial generates"),
    ] {
        let w = FullAccessWrapper::new(db);
        let backward = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let catalog = w.catalog();

        // Terminals: the first three text attributes on distinct tables.
        let mut attrs = Vec::new();
        let mut seen_tables = std::collections::HashSet::new();
        for a in catalog.attributes() {
            if a.full_text && seen_tables.insert(a.table) {
                attrs.push(a.id);
            }
            if attrs.len() == 3 {
                break;
            }
        }
        assert_eq!(attrs.len(), 3, "dataset should have 3 text-bearing tables");

        let interps = backward
            .interpretations_for_attrs(&attrs, 5)
            .expect("steiner enumeration succeeds");
        assert!(!interps.is_empty(), "schema graphs are connected");

        let schema = backward.schema_graph();
        for interp in &interps {
            // Connected tree whose edges exist in the schema graph.
            assert!(interp.tree.validate(schema.graph()), "invalid tree");
            // Spans every terminal.
            let nodes = interp.tree.nodes();
            for attr in &attrs {
                assert!(
                    nodes.contains(&schema.node_of(*attr)),
                    "terminal {attr:?} missing from tree"
                );
            }
        }
        // Best-first: scores (1 / (1 + cost)) never increase down the list.
        for pair in interps.windows(2) {
            assert!(pair[0].score >= pair[1].score - 1e-12);
        }
    }
}

/// List-Viterbi invariant across quest-hmm and the forward module: top-k
/// configuration scores are monotonically non-increasing, and k=1 is the
/// same hypothesis the plain Viterbi decoder returns.
#[test]
fn forward_top_k_scores_are_monotone() {
    let w = imdb_wrapper();
    let fwd = ForwardModule::new(&w, &SemanticRules::default()).expect("forward builds");
    let q = KeywordQuery::parse("fleming wind").expect("parses");
    let em = fwd.emissions(&w, &q);

    let top = fwd.top_k_apriori(&em, 10).expect("decodes");
    assert!(!top.is_empty());
    for pair in top.windows(2) {
        assert!(
            pair[0].score >= pair[1].score - 1e-12,
            "scores regressed: {} then {}",
            pair[0].score,
            pair[1].score
        );
    }

    let best = fwd.top_k_apriori(&em, 1).expect("decodes");
    assert_eq!(best.len(), 1);
    assert_eq!(
        best[0].terms, top[0].terms,
        "k=1 must match the top hypothesis"
    );

    // The same law must survive the full engine combination: ranked
    // explanations out of `search` are non-increasing in combined score.
    let engine = Quest::new(imdb_wrapper(), QuestConfig::default()).expect("engine builds");
    let out = engine.search("fleming wind").expect("search succeeds");
    assert!(!out.explanations.is_empty());
    for pair in out.explanations.windows(2) {
        assert!(pair[0].score >= pair[1].score - 1e-12);
    }
    let total: f64 = out.explanations.iter().map(|e| e.score).sum();
    assert!(
        total <= 1.0 + 1e-9,
        "explanation scores are a sub-distribution"
    );
}
