//! Determinism under concurrency: the serving layer must be semantically
//! invisible. N workers over a shuffled workload — cold caches or warm —
//! produce explanation sets and scores bit-identical to serial execution on
//! the plain engine.

use std::collections::HashMap;

use quest::prelude::*;
use quest::serve::CachedEngine;

fn imdb_engine() -> Quest<FullAccessWrapper> {
    let db = quest::data::imdb::generate(&quest::data::imdb::ImdbScale {
        movies: 300,
        seed: 42,
    })
    .expect("imdb generates");
    Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("engine builds")
}

/// The workload's raw queries repeated `reps` times, deterministically
/// shuffled so repeats interleave across workers.
fn shuffled_stream(reps: usize) -> Vec<String> {
    quest_bench::shuffled_stream(&quest::data::imdb::workload(), reps, 0xDEAD_BEEF_CAFE_F00D)
}

/// Everything that identifies an outcome, bit-exact: per-explanation SQL
/// statement text, exact score bits, configuration terms, and the combined
/// configuration list.
type Fingerprint = Vec<(String, u64, String)>;

fn fingerprint(engine: &Quest<FullAccessWrapper>, out: &SearchOutcome) -> Fingerprint {
    let catalog = engine.wrapper().catalog();
    out.explanations
        .iter()
        .map(|e| {
            (
                e.sql(catalog),
                e.score.to_bits(),
                format!("{:?}", e.configuration.terms),
            )
        })
        .collect()
}

/// Serial reference: every distinct query through the *plain* engine.
fn serial_reference(
    engine: &Quest<FullAccessWrapper>,
    stream: &[String],
) -> HashMap<String, Fingerprint> {
    let mut expected = HashMap::new();
    for raw in stream {
        if !expected.contains_key(raw) {
            let out = engine.search(raw).expect("serial search succeeds");
            expected.insert(raw.clone(), fingerprint(engine, &out));
        }
    }
    expected
}

#[test]
fn concurrent_results_identical_to_serial_cold_and_warm() {
    let engine = imdb_engine();
    let stream = shuffled_stream(4);
    let expected = serial_reference(&engine, &stream);

    let service = QueryService::new(CachedEngine::new(engine), 4);
    for phase in ["cold", "warm"] {
        let tickets = service.submit_batch(&stream);
        for (raw, ticket) in stream.iter().zip(tickets) {
            let out = ticket.wait().expect("served search succeeds");
            assert_eq!(&out.query.raw, raw, "ticket order matches submissions");
            let got = fingerprint(service.engine().engine(), &out);
            assert_eq!(
                &got, &expected[raw],
                "{phase}-cache result diverged from serial for {raw:?}"
            );
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.queries as usize, 2 * stream.len());
    assert_eq!(stats.errors, 0);
    assert!(
        stats.forward_cache.hits > 0 && stats.backward_cache.hits > 0,
        "the stream must actually exercise the caches: {stats}"
    );
}

#[test]
fn warm_cache_serves_entirely_from_lookups() {
    let engine = imdb_engine();
    let distinct: Vec<String> = quest::data::imdb::workload()
        .iter()
        .map(|wq| wq.raw.clone())
        .collect();
    let cached = CachedEngine::new(engine);
    for raw in &distinct {
        let _ = cached.search(raw).expect("cold fill");
    }
    let misses_after_fill = cached.stats().forward_cache.misses;
    for raw in &distinct {
        let _ = cached.search(raw).expect("warm serve");
    }
    let stats = cached.stats();
    assert_eq!(
        stats.forward_cache.misses, misses_after_fill,
        "no forward recomputation on the warm pass"
    );
    assert!(stats.forward_cache.hits >= distinct.len() as u64);
}

#[test]
fn feedback_mid_stream_keeps_serving_consistent() {
    // After feedback lands, served results must again equal a serial engine
    // with identical feedback — the caches must not leak the old model.
    let engine = imdb_engine();
    let reference = engine.clone();
    let service = QueryService::new(CachedEngine::new(engine), 4);
    let stream = shuffled_stream(2);

    // Warm everything, then train both engines identically.
    for t in service.submit_batch(&stream) {
        let _ = t.wait();
    }
    let query = KeywordQuery::parse(&stream[0]).expect("parse");
    let best = service
        .engine()
        .search_query(&query)
        .expect("search")
        .explanations[0]
        .clone();
    for _ in 0..5 {
        service
            .engine()
            .feedback(&query, &best, true)
            .expect("feedback");
        reference.feedback(&query, &best, true).expect("feedback");
    }

    let expected = serial_reference(&reference, &stream);
    for (raw, ticket) in stream.iter().zip(service.submit_batch(&stream)) {
        let out = ticket.wait().expect("served search succeeds");
        let got = fingerprint(service.engine().engine(), &out);
        assert_eq!(
            &got, &expected[raw],
            "post-feedback result diverged from serial for {raw:?}"
        );
    }
}

#[test]
fn worker_counts_do_not_change_results() {
    let stream = shuffled_stream(2);
    let mut baseline: Option<HashMap<String, Fingerprint>> = None;
    for workers in [1usize, 2, 4, 8] {
        let service = QueryService::new(CachedEngine::new(imdb_engine()), workers);
        let mut results: HashMap<String, Fingerprint> = HashMap::new();
        for (raw, ticket) in stream.iter().zip(service.submit_batch(&stream)) {
            let out = ticket.wait().expect("search succeeds");
            results.insert(raw.clone(), fingerprint(service.engine().engine(), &out));
        }
        match &baseline {
            None => baseline = Some(results),
            Some(b) => assert_eq!(b, &results, "{workers} workers diverged"),
        }
    }
}
