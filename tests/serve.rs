//! Determinism under concurrency and mutation: the serving layer must be
//! semantically invisible. N workers over a shuffled workload — cold caches
//! or warm, before or after live-data mutation batches — produce
//! explanation sets and scores bit-identical to serial execution on a plain
//! engine over the same data.

use std::collections::HashMap;

use quest::prelude::*;
use quest::serve::CachedEngine;
use quest::wal::ChangeRecord;

fn imdb_engine() -> Quest<FullAccessWrapper> {
    let db = quest::data::imdb::generate(&quest::data::imdb::ImdbScale {
        movies: 300,
        seed: 42,
    })
    .expect("imdb generates");
    Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("engine builds")
}

/// The workload's raw queries repeated `reps` times, deterministically
/// shuffled so repeats interleave across workers.
fn shuffled_stream(reps: usize) -> Vec<String> {
    quest_bench::shuffled_stream(&quest::data::imdb::workload(), reps, 0xDEAD_BEEF_CAFE_F00D)
}

/// Everything that identifies an outcome, bit-exact: per-explanation SQL
/// statement text, exact score bits, configuration terms, and the combined
/// configuration list.
type Fingerprint = Vec<(String, u64, String)>;

fn fingerprint(engine: &Quest<FullAccessWrapper>, out: &SearchOutcome) -> Fingerprint {
    let catalog = engine.wrapper().catalog();
    out.explanations
        .iter()
        .map(|e| {
            (
                e.sql(catalog),
                e.score.to_bits(),
                format!("{:?}", e.configuration.terms),
            )
        })
        .collect()
}

/// Serial reference: every distinct query through the *plain* engine.
fn serial_reference(
    engine: &Quest<FullAccessWrapper>,
    stream: &[String],
) -> HashMap<String, Fingerprint> {
    let mut expected = HashMap::new();
    for raw in stream {
        if !expected.contains_key(raw) {
            let out = engine.search(raw).expect("serial search succeeds");
            expected.insert(raw.clone(), fingerprint(engine, &out));
        }
    }
    expected
}

#[test]
fn concurrent_results_identical_to_serial_cold_and_warm() {
    let engine = imdb_engine();
    let stream = shuffled_stream(4);
    let expected = serial_reference(&engine, &stream);

    let service = QueryService::new(CachedEngine::new(engine), 4);
    for phase in ["cold", "warm"] {
        let tickets = service.submit_batch(&stream);
        for (raw, ticket) in stream.iter().zip(tickets) {
            let out = ticket.wait().expect("served search succeeds");
            assert_eq!(&out.query.raw, raw, "ticket order matches submissions");
            let got = fingerprint(&service.engine().engine(), &out);
            assert_eq!(
                &got, &expected[raw],
                "{phase}-cache result diverged from serial for {raw:?}"
            );
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.queries as usize, 2 * stream.len());
    assert_eq!(stats.errors, 0);
    assert!(
        stats.forward_cache.hits > 0 && stats.backward_cache.hits > 0,
        "the stream must actually exercise the caches: {stats}"
    );
}

#[test]
fn warm_cache_serves_entirely_from_lookups() {
    let engine = imdb_engine();
    let distinct: Vec<String> = quest::data::imdb::workload()
        .iter()
        .map(|wq| wq.raw.clone())
        .collect();
    let cached = CachedEngine::new(engine);
    for raw in &distinct {
        let _ = cached.search(raw).expect("cold fill");
    }
    let misses_after_fill = cached.stats().forward_cache.misses;
    for raw in &distinct {
        let _ = cached.search(raw).expect("warm serve");
    }
    let stats = cached.stats();
    assert_eq!(
        stats.forward_cache.misses, misses_after_fill,
        "no forward recomputation on the warm pass"
    );
    assert!(stats.forward_cache.hits >= distinct.len() as u64);
}

#[test]
fn feedback_mid_stream_keeps_serving_consistent() {
    // After feedback lands, served results must again equal a serial engine
    // with identical feedback — the caches must not leak the old model.
    let engine = imdb_engine();
    let reference = engine.clone();
    let service = QueryService::new(CachedEngine::new(engine), 4);
    let stream = shuffled_stream(2);

    // Warm everything, then train both engines identically.
    for t in service.submit_batch(&stream) {
        let _ = t.wait();
    }
    let query = KeywordQuery::parse(&stream[0]).expect("parse");
    let best = service
        .engine()
        .search_query(&query)
        .expect("search")
        .explanations[0]
        .clone();
    for _ in 0..5 {
        service
            .engine()
            .feedback(&query, &best, true)
            .expect("feedback");
        reference.feedback(&query, &best, true).expect("feedback");
    }

    let expected = serial_reference(&reference, &stream);
    for (raw, ticket) in stream.iter().zip(service.submit_batch(&stream)) {
        let out = ticket.wait().expect("served search succeeds");
        let got = fingerprint(&service.engine().engine(), &out);
        assert_eq!(
            &got, &expected[raw],
            "post-feedback result diverged from serial for {raw:?}"
        );
    }
}

/// Mutation batches for the live-data tests: retitle one movie, add a new
/// person and movie, delete a rating-less orphan. Addressed by primary
/// keys that exist in the `movies: 300, seed: 42` IMDB generation.
fn mutation_batches(db: &Database) -> Vec<Vec<ChangeRecord>> {
    let movie = db.catalog().table_id("movie").expect("movie table");
    // Take two live movies to mutate, read their current rows.
    let victims: Vec<(Vec<Value>, Vec<Value>)> = db
        .table_data(movie)
        .iter()
        .take(2)
        .map(|(_, row)| {
            let key = vec![row.get(0).clone()];
            (key, row.values().to_vec())
        })
        .collect();
    let mut retitled = victims[0].1.clone();
    retitled[1] = "A Completely New Title".into();
    vec![
        vec![
            ChangeRecord::Insert {
                table: "person".into(),
                row: vec![900_001.into(), "Zelda Zeitgeist".into(), 1901.into()],
            },
            ChangeRecord::Update {
                table: "movie".into(),
                key: victims[0].0.clone(),
                row: retitled,
            },
        ],
        vec![ChangeRecord::Insert {
            table: "movie".into(),
            row: {
                let mut row = victims[1].1.clone();
                row[0] = 900_002.into();
                row[1] = "Zeitgeist Rising".into();
                row
            },
        }],
        vec![ChangeRecord::Delete {
            table: "movie".into(),
            key: vec![900_002.into()],
        }],
    ]
}

#[test]
fn served_results_after_mutations_match_a_cold_engine() {
    // After every mutation batch applied through the service's shared
    // engine, served results must be bit-identical to a *cold* engine
    // built from scratch over the identically mutated database.
    let engine = imdb_engine();
    let mut shadow_db = engine.wrapper().database().clone();
    let service = QueryService::new(CachedEngine::new(engine), 4);
    let stream = shuffled_stream(2);

    // Warm all caches so stale entries would be caught if epochs failed.
    for t in service.submit_batch(&stream) {
        let _ = t.wait();
    }
    let batches = mutation_batches(&shadow_db);
    for (i, batch) in batches.iter().enumerate() {
        let report = service.engine().apply(batch).expect("batch applies");
        assert_eq!(report.applied, batch.len());
        assert!(report.all_applied());
        assert_eq!(service.engine().data_epoch(), i as u64 + 1);
        for change in batch {
            change.apply(&mut shadow_db).expect("shadow applies");
        }
        let cold = Quest::new(
            FullAccessWrapper::new(shadow_db.clone()),
            QuestConfig::default(),
        )
        .expect("cold engine builds");
        let expected = serial_reference(&cold, &stream);
        for (raw, ticket) in stream.iter().zip(service.submit_batch(&stream)) {
            let out = ticket.wait().expect("served search succeeds");
            let got = fingerprint(&service.engine().engine(), &out);
            assert_eq!(
                &got, &expected[raw],
                "batch {i}: served result diverged from cold engine for {raw:?}"
            );
        }
    }
    // The mutated-keyword queries see the new data end to end.
    let out = service.submit("zeitgeist").wait().expect("search");
    assert!(!out.explanations.is_empty());
    let stats = service.shutdown();
    assert_eq!(stats.data_epoch, batches.len() as u64);
    assert_eq!(stats.errors, 0);
}

#[test]
fn schema_affecting_mutations_rebuild_join_templates() {
    // The backward module memoizes join-path templates per engine. A
    // WAL-applied mutation batch resyncs the engine (schema-graph weights
    // shift with the data), so the template memo must come back empty —
    // and everything served afterwards must still be bit-identical to a
    // cold engine over the mutated database, proving no stale template
    // leaked into the SQL.
    let engine = imdb_engine();
    let mut shadow_db = engine.wrapper().database().clone();
    let cached = CachedEngine::new(engine);
    let stream = shuffled_stream(2);

    for raw in &stream {
        let _ = cached.search(raw).expect("warm fill");
    }
    let warm = cached.stats().join_templates;
    assert!(
        warm.entries > 0 && warm.misses > 0,
        "the warm stream must populate the template memo: {warm:?}"
    );

    let batch = mutation_batches(&shadow_db).remove(0);
    let report = cached.apply(&batch).expect("batch applies");
    assert!(report.all_applied());
    let cold_stats = cached.stats().join_templates;
    assert_eq!(
        (cold_stats.hits, cold_stats.misses, cold_stats.entries),
        (0, 0, 0),
        "applying a batch must rebuild the backward module cold: {cold_stats:?}"
    );

    for change in &batch {
        change.apply(&mut shadow_db).expect("shadow applies");
    }
    let cold = Quest::new(FullAccessWrapper::new(shadow_db), QuestConfig::default())
        .expect("cold engine builds");
    let expected = serial_reference(&cold, &stream);
    for raw in &stream {
        let out = cached.search(raw).expect("post-apply search");
        let got = fingerprint(&cached.engine(), &out);
        assert_eq!(
            &got, &expected[raw],
            "post-apply result diverged from cold engine for {raw:?}"
        );
    }
    let refilled = cached.stats().join_templates;
    assert!(
        refilled.misses > 0 && refilled.entries > 0,
        "post-apply searches must recompute templates: {refilled:?}"
    );
}

#[test]
fn mutations_and_queries_interleave_safely_across_workers() {
    // Queries race a mutation batch from another thread; every ticket must
    // resolve against either the old or the new data (never a torn mix),
    // and afterwards the service must agree with a cold engine.
    let engine = imdb_engine();
    let mut shadow_db = engine.wrapper().database().clone();
    let shared = std::sync::Arc::new(CachedEngine::new(engine));
    let service = QueryService::over(std::sync::Arc::clone(&shared), 4);
    let stream = shuffled_stream(2);
    let tickets = service.submit_batch(&stream);

    let batch = mutation_batches(&shadow_db).remove(0);
    let mutator = {
        let shared = std::sync::Arc::clone(&shared);
        let batch = batch.clone();
        std::thread::spawn(move || shared.apply(&batch).expect("apply succeeds").applied)
    };
    for ticket in tickets {
        let out = ticket.wait().expect("ticket resolves");
        assert!(!out.query.raw.is_empty());
    }
    assert_eq!(mutator.join().expect("mutator thread"), batch.len());

    for change in &batch {
        change.apply(&mut shadow_db).expect("shadow applies");
    }
    let cold = Quest::new(FullAccessWrapper::new(shadow_db), QuestConfig::default())
        .expect("cold engine builds");
    let expected = serial_reference(&cold, &stream);
    for (raw, ticket) in stream.iter().zip(service.submit_batch(&stream)) {
        let out = ticket.wait().expect("served search succeeds");
        let got = fingerprint(&service.engine().engine(), &out);
        assert_eq!(&got, &expected[raw], "post-race divergence for {raw:?}");
    }
}

#[test]
fn slo_monitoring_and_span_tracing_leave_results_byte_identical() {
    // The serial reference runs on a plain engine with no service layer,
    // no SLO monitor, and no explicit scrapes — the instrumented service
    // below must reproduce its answers bit for bit even though every
    // query violates the installed SLO and records spans.
    let engine = imdb_engine();
    let stream = shuffled_stream(2);
    let expected = serial_reference(&engine, &stream);

    let service = QueryService::new(CachedEngine::new(engine), 4);
    service.engine().set_slo(quest::obs::SloSpec {
        max_p99_us: Some(1), // everything violates: grading must still be inert
        ..Default::default()
    });
    let _ = service.engine().stats(); // seed the aggregation window
    for (raw, ticket) in stream.iter().zip(service.submit_batch(&stream)) {
        let out = ticket.wait().expect("instrumented search succeeds");
        let got = fingerprint(&service.engine().engine(), &out);
        assert_eq!(
            &got, &expected[raw],
            "SLO monitoring / span tracing changed a result for {raw:?}"
        );
    }
    let stats = service.shutdown();

    // The monitor really graded (it was not inert because it was absent):
    // the 1us p99 bound is unmeetable, so the verdict must be unhealthy
    // with a latency reason attached.
    let health = stats.health.as_ref().expect("verdict after two scrapes");
    assert_ne!(
        health.status,
        quest::obs::HealthStatus::Healthy,
        "a 1us p99 bound cannot be met: {health}"
    );
    assert!(
        health.reasons.iter().any(|r| r.contains("p99")),
        "reasons: {health}"
    );

    // And spans really recorded: the shared collector holds query spans
    // from the stream just served.
    let collector = quest::obs::spans();
    assert!(collector.is_enabled(), "default span capacity is nonzero");
    assert!(
        collector
            .recent()
            .iter()
            .any(|s| s.kind == quest::obs::TraceKind::Query && s.name == "query"),
        "no query spans recorded while serving"
    );
}

#[test]
fn worker_counts_do_not_change_results() {
    let stream = shuffled_stream(2);
    let mut baseline: Option<HashMap<String, Fingerprint>> = None;
    for workers in [1usize, 2, 4, 8] {
        let service = QueryService::new(CachedEngine::new(imdb_engine()), workers);
        let mut results: HashMap<String, Fingerprint> = HashMap::new();
        for (raw, ticket) in stream.iter().zip(service.submit_batch(&stream)) {
            let out = ticket.wait().expect("search succeeds");
            results.insert(raw.clone(), fingerprint(&service.engine().engine(), &out));
        }
        match &baseline {
            None => baseline = Some(results),
            Some(b) => assert_eq!(b, &results, "{workers} workers diverged"),
        }
    }
}
