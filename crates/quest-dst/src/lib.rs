//! # quest-dst — Dempster–Shafer theory of evidence for QUEST
//!
//! QUEST merges the scores of its evidence sources — the a-priori HMM, the
//! feedback-trained HMM, and the Steiner-tree backward module — "within a
//! probabilistic framework based on the Dempster-Shafer Theory" (paper
//! abstract, §2). Each source becomes a [`MassFunction`] whose singleton
//! masses are the source's normalized scores and whose mass on the universe
//! Θ is the user-specified *uncertainty degree* of that source; sources are
//! merged with [`dempster_combine`] and ranked by pignistic probability.
//!
//! ```
//! use quest_dst::{dempster_combine, Frame, MassFunction};
//!
//! // Two sources rank the same two hypotheses, with different confidence.
//! let frame = Frame::new(2)?;
//! let mut confident = MassFunction::new(frame);
//! confident.add_singleton(0, 0.7)?;
//! confident.add_singleton(1, 0.3)?;
//! confident.set_uncertainty(0.2)?; // O = 0.2: mostly trusted
//! let mut hesitant = MassFunction::new(frame);
//! hesitant.add_singleton(0, 0.4)?;
//! hesitant.add_singleton(1, 0.6)?;
//! hesitant.set_uncertainty(0.8)?; // O = 0.8: barely trusted
//!
//! // Dempster's rule lets the confident source dominate the disagreement.
//! let combined = dempster_combine(&confident, &hesitant)?.mass;
//! assert!(combined.pignistic(0)? > combined.pignistic(1)?);
//! # Ok::<(), quest_dst::DstError>(())
//! ```

#![warn(missing_docs)]

pub mod combine;
pub mod frame;
pub mod mass;

pub use combine::{dempster_combine, dempster_combine_all, Combination};
pub use frame::{DstError, FocalSet, Frame, MAX_ELEMENTS};
pub use mass::MassFunction;
