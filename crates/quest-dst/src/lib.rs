//! # quest-dst — Dempster–Shafer theory of evidence for QUEST
//!
//! QUEST merges the scores of its evidence sources — the a-priori HMM, the
//! feedback-trained HMM, and the Steiner-tree backward module — "within a
//! probabilistic framework based on the Dempster-Shafer Theory" (paper
//! abstract, §2). Each source becomes a [`MassFunction`] whose singleton
//! masses are the source's normalized scores and whose mass on the universe
//! Θ is the user-specified *uncertainty degree* of that source; sources are
//! merged with [`dempster_combine`] and ranked by pignistic probability.

#![warn(missing_docs)]

pub mod combine;
pub mod frame;
pub mod mass;

pub use combine::{dempster_combine, dempster_combine_all, Combination};
pub use frame::{DstError, FocalSet, Frame, MAX_ELEMENTS};
pub use mass::MassFunction;
