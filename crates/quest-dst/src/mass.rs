//! Basic probability assignments (mass functions) with ignorance handling.
//!
//! QUEST builds one mass function per evidence source (the a-priori HMM, the
//! feedback HMM, the Steiner-tree backward module). Scores become masses on
//! singleton hypotheses; the source's *uncertainty degree* `O` becomes mass
//! on the universe Θ (paper Algorithm 1: `addEvidence`, `setUncertainty`,
//! `normalize`).

use std::collections::BTreeMap;

use crate::frame::{DstError, FocalSet, Frame};

/// A mass function (basic probability assignment) over a frame.
///
/// The body of evidence is an ordered map so every iteration — and hence
/// every floating-point summation in [`MassFunction::normalize`],
/// [`MassFunction::pignistic`], and Dempster's rule — runs in the same
/// order on every call: combinations are bit-for-bit reproducible.
#[derive(Debug, Clone)]
pub struct MassFunction {
    frame: Frame,
    masses: BTreeMap<FocalSet, f64>,
}

impl MassFunction {
    /// Empty (all-zero) mass function; add evidence then normalize.
    pub fn new(frame: Frame) -> MassFunction {
        MassFunction {
            frame,
            masses: BTreeMap::new(),
        }
    }

    /// The vacuous mass function: all mass on Θ (total ignorance).
    pub fn vacuous(frame: Frame) -> MassFunction {
        let mut m = MassFunction::new(frame);
        m.masses.insert(frame.universe(), 1.0);
        m
    }

    /// The frame.
    pub fn frame(&self) -> Frame {
        self.frame
    }

    /// Add mass to a focal set (accumulates on repeated calls).
    pub fn add_evidence(&mut self, set: FocalSet, mass: f64) -> Result<(), DstError> {
        if set.is_empty() {
            return Err(DstError::MassOnEmptySet);
        }
        if !self.frame.contains(set) {
            return Err(DstError::SetOutOfFrame);
        }
        if !mass.is_finite() || mass < 0.0 {
            return Err(DstError::BadMass(mass));
        }
        if mass > 0.0 {
            *self.masses.entry(set).or_insert(0.0) += mass;
        }
        Ok(())
    }

    /// Add mass to the singleton hypothesis `i`.
    pub fn add_singleton(&mut self, i: usize, mass: f64) -> Result<(), DstError> {
        let s = self.frame.singleton(i)?;
        self.add_evidence(s, mass)
    }

    /// Normalize so the total mass is 1. Errors when the total is zero.
    pub fn normalize(&mut self) -> Result<(), DstError> {
        let sum: f64 = self.masses.values().sum();
        if sum <= 0.0 {
            return Err(DstError::ZeroMass);
        }
        for v in self.masses.values_mut() {
            *v /= sum;
        }
        Ok(())
    }

    /// The paper's `setUncertainty(W, O)`: scale the existing body of
    /// evidence to `1 - uncertainty` and put `uncertainty` on Θ. A fully
    /// uncertain source (O = 1) becomes vacuous. The function normalizes the
    /// existing evidence first, so call it after adding all evidence.
    pub fn set_uncertainty(&mut self, uncertainty: f64) -> Result<(), DstError> {
        if !uncertainty.is_finite() || !(0.0..=1.0).contains(&uncertainty) {
            return Err(DstError::BadMass(uncertainty));
        }
        if uncertainty >= 1.0 {
            *self = MassFunction::vacuous(self.frame);
            return Ok(());
        }
        self.normalize()?;
        for v in self.masses.values_mut() {
            *v *= 1.0 - uncertainty;
        }
        if uncertainty > 0.0 {
            *self.masses.entry(self.frame.universe()).or_insert(0.0) += uncertainty;
        }
        Ok(())
    }

    /// Mass of one focal set (0 for non-focal sets).
    pub fn mass(&self, set: FocalSet) -> f64 {
        self.masses.get(&set).copied().unwrap_or(0.0)
    }

    /// Focal sets with positive mass (the body of evidence).
    pub fn focal_sets(&self) -> impl Iterator<Item = (FocalSet, f64)> + '_ {
        self.masses.iter().map(|(s, m)| (*s, *m))
    }

    /// Number of focal sets.
    pub fn focal_count(&self) -> usize {
        self.masses.len()
    }

    /// Total mass (1 after normalization).
    pub fn total_mass(&self) -> f64 {
        self.masses.values().sum()
    }

    /// Belief of a set: total mass of its subsets.
    pub fn belief(&self, set: FocalSet) -> f64 {
        self.masses
            .iter()
            .filter(|(s, _)| s.is_subset_of(set))
            .map(|(_, m)| m)
            .sum()
    }

    /// Plausibility of a set: total mass of sets intersecting it.
    pub fn plausibility(&self, set: FocalSet) -> f64 {
        self.masses
            .iter()
            .filter(|(s, _)| !s.intersect(set).is_empty())
            .map(|(_, m)| m)
            .sum()
    }

    /// Pignistic probability of element `i`: each focal set spreads its mass
    /// uniformly over its elements. This is the score QUEST ranks
    /// explanations by after combination.
    pub fn pignistic(&self, i: usize) -> Result<f64, DstError> {
        let s = self.frame.singleton(i)?;
        Ok(self
            .masses
            .iter()
            .filter(|(fs, _)| !fs.intersect(s).is_empty())
            .map(|(fs, m)| m / fs.len() as f64)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame3() -> Frame {
        Frame::new(3).unwrap()
    }

    #[test]
    fn evidence_accumulates_and_normalizes() {
        let mut m = MassFunction::new(frame3());
        m.add_singleton(0, 2.0).unwrap();
        m.add_singleton(0, 1.0).unwrap();
        m.add_singleton(1, 1.0).unwrap();
        m.normalize().unwrap();
        assert!((m.mass(FocalSet(0b001)) - 0.75).abs() < 1e-12);
        assert!((m.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncertainty_splits_mass() {
        let mut m = MassFunction::new(frame3());
        m.add_singleton(0, 1.0).unwrap();
        m.add_singleton(1, 1.0).unwrap();
        m.set_uncertainty(0.4).unwrap();
        assert!((m.mass(FocalSet(0b001)) - 0.3).abs() < 1e-12);
        assert!((m.mass(frame3().universe()) - 0.4).abs() < 1e-12);
        assert!((m.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_uncertainty_is_vacuous() {
        let mut m = MassFunction::new(frame3());
        m.add_singleton(2, 5.0).unwrap();
        m.set_uncertainty(1.0).unwrap();
        assert_eq!(m.focal_count(), 1);
        assert!((m.mass(frame3().universe()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut m = MassFunction::new(frame3());
        assert_eq!(
            m.add_evidence(FocalSet::EMPTY, 0.5),
            Err(DstError::MassOnEmptySet)
        );
        assert_eq!(
            m.add_evidence(FocalSet(0b1000), 0.5),
            Err(DstError::SetOutOfFrame)
        );
        assert_eq!(m.add_singleton(0, -0.5), Err(DstError::BadMass(-0.5)));
        assert_eq!(m.normalize(), Err(DstError::ZeroMass));
        assert_eq!(m.set_uncertainty(1.5), Err(DstError::BadMass(1.5)));
    }

    #[test]
    fn belief_and_plausibility() {
        let mut m = MassFunction::new(frame3());
        m.add_evidence(FocalSet(0b001), 0.5).unwrap();
        m.add_evidence(FocalSet(0b011), 0.3).unwrap();
        m.add_evidence(frame3().universe(), 0.2).unwrap();
        // bel({0}) = 0.5; pl({0}) = 0.5+0.3+0.2 = 1.0
        assert!((m.belief(FocalSet(0b001)) - 0.5).abs() < 1e-12);
        assert!((m.plausibility(FocalSet(0b001)) - 1.0).abs() < 1e-12);
        // bel({0,1}) = 0.5+0.3
        assert!((m.belief(FocalSet(0b011)) - 0.8).abs() < 1e-12);
        // pl({2}) = only universe intersects = 0.2
        assert!((m.plausibility(FocalSet(0b100)) - 0.2).abs() < 1e-12);
        // belief <= plausibility always
        for s in 1..8u64 {
            assert!(m.belief(FocalSet(s)) <= m.plausibility(FocalSet(s)) + 1e-12);
        }
    }

    #[test]
    fn pignistic_distributes_set_mass() {
        let mut m = MassFunction::new(frame3());
        m.add_evidence(FocalSet(0b011), 0.6).unwrap();
        m.add_evidence(FocalSet(0b100), 0.4).unwrap();
        assert!((m.pignistic(0).unwrap() - 0.3).abs() < 1e-12);
        assert!((m.pignistic(1).unwrap() - 0.3).abs() < 1e-12);
        assert!((m.pignistic(2).unwrap() - 0.4).abs() < 1e-12);
        let total: f64 = (0..3).map(|i| m.pignistic(i).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
