//! Frames of discernment and focal sets.
//!
//! A frame holds up to 64 base elements (QUEST's frames are small: the union
//! of two top-k lists), so focal sets are `u64` bitmasks.

use std::fmt;

/// Maximum number of base elements in a frame.
pub const MAX_ELEMENTS: usize = 64;

/// A frame of discernment: `n` distinguishable hypotheses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    n: usize,
}

impl Frame {
    /// Frame with `n` elements (1..=64).
    pub fn new(n: usize) -> Result<Frame, DstError> {
        if n == 0 || n > MAX_ELEMENTS {
            return Err(DstError::BadFrameSize(n));
        }
        Ok(Frame { n })
    }

    /// Number of base elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Frames are never empty; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The universe Θ as a bitmask.
    pub fn universe(&self) -> FocalSet {
        if self.n == 64 {
            FocalSet(u64::MAX)
        } else {
            FocalSet((1u64 << self.n) - 1)
        }
    }

    /// Singleton set for element `i`.
    pub fn singleton(&self, i: usize) -> Result<FocalSet, DstError> {
        if i >= self.n {
            return Err(DstError::ElementOutOfRange {
                index: i,
                frame: self.n,
            });
        }
        Ok(FocalSet(1u64 << i))
    }

    /// Whether `set` is within this frame.
    pub fn contains(&self, set: FocalSet) -> bool {
        set.0 & !self.universe().0 == 0
    }
}

/// A subset of a frame, as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FocalSet(pub u64);

impl FocalSet {
    /// The empty set.
    pub const EMPTY: FocalSet = FocalSet(0);

    /// Set intersection.
    pub fn intersect(self, other: FocalSet) -> FocalSet {
        FocalSet(self.0 & other.0)
    }

    /// Set union.
    pub fn union(self, other: FocalSet) -> FocalSet {
        FocalSet(self.0 | other.0)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of elements.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(self, other: FocalSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether element `i` is in the set.
    pub fn contains_element(self, i: usize) -> bool {
        i < 64 && self.0 & (1u64 << i) != 0
    }

    /// Iterate over element indexes.
    pub fn elements(self) -> impl Iterator<Item = usize> {
        (0..64).filter(move |i| self.0 & (1u64 << i) != 0)
    }
}

/// Errors raised by the DST crate.
#[derive(Debug, Clone, PartialEq)]
pub enum DstError {
    /// Frame size out of 1..=64.
    BadFrameSize(usize),
    /// Element index outside the frame.
    ElementOutOfRange {
        /// Offending index.
        index: usize,
        /// Frame size.
        frame: usize,
    },
    /// Focal set contains elements outside the frame.
    SetOutOfFrame,
    /// Mass value negative or non-finite.
    BadMass(f64),
    /// Mass assigned to the empty set.
    MassOnEmptySet,
    /// Two mass functions over different frames cannot be combined.
    FrameMismatch,
    /// Dempster's rule is undefined under total conflict (K = 1).
    TotalConflict,
    /// Mass function has zero total mass, cannot normalize.
    ZeroMass,
}

impl fmt::Display for DstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DstError::BadFrameSize(n) => write!(f, "frame size {n} out of 1..=64"),
            DstError::ElementOutOfRange { index, frame } => {
                write!(f, "element {index} outside frame of size {frame}")
            }
            DstError::SetOutOfFrame => write!(f, "focal set outside the frame"),
            DstError::BadMass(m) => write!(f, "bad mass value {m}"),
            DstError::MassOnEmptySet => write!(f, "mass assigned to the empty set"),
            DstError::FrameMismatch => write!(f, "mass functions over different frames"),
            DstError::TotalConflict => write!(f, "total conflict: Dempster's rule undefined"),
            DstError::ZeroMass => write!(f, "zero total mass"),
        }
    }
}

impl std::error::Error for DstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_bounds() {
        assert!(Frame::new(0).is_err());
        assert!(Frame::new(65).is_err());
        assert_eq!(Frame::new(64).unwrap().universe(), FocalSet(u64::MAX));
        let f = Frame::new(3).unwrap();
        assert_eq!(f.universe(), FocalSet(0b111));
        assert_eq!(f.singleton(2).unwrap(), FocalSet(0b100));
        assert!(f.singleton(3).is_err());
    }

    #[test]
    fn set_algebra() {
        let a = FocalSet(0b0110);
        let b = FocalSet(0b0011);
        assert_eq!(a.intersect(b), FocalSet(0b0010));
        assert_eq!(a.union(b), FocalSet(0b0111));
        assert_eq!(a.len(), 2);
        assert!(FocalSet(0b0010).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(a.contains_element(1));
        assert!(!a.contains_element(0));
        assert_eq!(a.elements().collect::<Vec<_>>(), vec![1, 2]);
        assert!(FocalSet::EMPTY.is_empty());
    }

    #[test]
    fn frame_containment() {
        let f = Frame::new(3).unwrap();
        assert!(f.contains(FocalSet(0b101)));
        assert!(!f.contains(FocalSet(0b1000)));
    }
}
