//! Dempster's rule of combination.
//!
//! "The Dempster's rule of combination allows the aggregation of two
//! independent bodies of evidence with the respective degree of uncertainty
//! into one body of evidence" (paper §2).

use std::collections::BTreeMap;

use crate::frame::{DstError, FocalSet};
use crate::mass::MassFunction;

/// Result of combining two mass functions.
#[derive(Debug, Clone)]
pub struct Combination {
    /// The combined, normalized mass function.
    pub mass: MassFunction,
    /// The conflict `K`: total mass of contradictory focal pairs.
    pub conflict: f64,
}

/// Combine two normalized mass functions with Dempster's rule:
///
/// `m(C) = Σ_{A∩B=C, C≠∅} m1(A)·m2(B) / (1 − K)` with
/// `K = Σ_{A∩B=∅} m1(A)·m2(B)`.
///
/// Errors on frame mismatch or total conflict (`K = 1`).
pub fn dempster_combine(m1: &MassFunction, m2: &MassFunction) -> Result<Combination, DstError> {
    if m1.frame() != m2.frame() {
        return Err(DstError::FrameMismatch);
    }
    // Ordered map: the division/accumulation order below is deterministic.
    let mut combined: BTreeMap<FocalSet, f64> = BTreeMap::new();
    let mut conflict = 0.0;
    for (a, ma) in m1.focal_sets() {
        for (b, mb) in m2.focal_sets() {
            let c = a.intersect(b);
            let w = ma * mb;
            if c.is_empty() {
                conflict += w;
            } else {
                *combined.entry(c).or_insert(0.0) += w;
            }
        }
    }
    let norm = 1.0 - conflict;
    if norm <= f64::EPSILON {
        return Err(DstError::TotalConflict);
    }
    let mut out = MassFunction::new(m1.frame());
    for (set, m) in combined {
        out.add_evidence(set, m / norm)?;
    }
    Ok(Combination {
        mass: out,
        conflict,
    })
}

/// Fold a sequence of mass functions with Dempster's rule (associative and
/// commutative, so the fold order does not matter).
pub fn dempster_combine_all(ms: &[MassFunction]) -> Result<Combination, DstError> {
    let mut iter = ms.iter();
    let Some(first) = iter.next() else {
        return Err(DstError::ZeroMass);
    };
    let mut acc = Combination {
        mass: first.clone(),
        conflict: 0.0,
    };
    for m in iter {
        let step = dempster_combine(&acc.mass, m)?;
        // Report the maximum pairwise conflict encountered along the fold.
        acc = Combination {
            mass: step.mass,
            conflict: acc.conflict.max(step.conflict),
        };
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    fn frame() -> Frame {
        Frame::new(3).unwrap()
    }

    fn singleton_mass(weights: &[(usize, f64)], uncertainty: f64) -> MassFunction {
        let mut m = MassFunction::new(frame());
        for &(i, w) in weights {
            m.add_singleton(i, w).unwrap();
        }
        m.set_uncertainty(uncertainty).unwrap();
        m
    }

    #[test]
    fn agreement_reinforces() {
        let m1 = singleton_mass(&[(0, 0.8), (1, 0.2)], 0.0);
        let m2 = singleton_mass(&[(0, 0.7), (1, 0.3)], 0.0);
        let c = dempster_combine(&m1, &m2).unwrap();
        let p0 = c.mass.mass(frame().singleton(0).unwrap());
        // 0.56 / (0.56 + 0.06) ≈ 0.903: agreement sharpens the consensus.
        assert!((p0 - 0.56 / 0.62).abs() < 1e-12);
        assert!(p0 > 0.8);
        assert!((c.conflict - (0.8 * 0.3 + 0.2 * 0.7)).abs() < 1e-12);
    }

    #[test]
    fn vacuous_is_identity() {
        let m = singleton_mass(&[(0, 0.6), (2, 0.4)], 0.1);
        let v = MassFunction::vacuous(frame());
        let c = dempster_combine(&m, &v).unwrap();
        for s in [0b001u64, 0b100, 0b111] {
            assert!((c.mass.mass(FocalSet(s)) - m.mass(FocalSet(s))).abs() < 1e-12);
        }
        assert_eq!(c.conflict, 0.0);
    }

    #[test]
    fn commutative() {
        let m1 = singleton_mass(&[(0, 0.5), (1, 0.5)], 0.2);
        let m2 = singleton_mass(&[(1, 0.9), (2, 0.1)], 0.3);
        let ab = dempster_combine(&m1, &m2).unwrap();
        let ba = dempster_combine(&m2, &m1).unwrap();
        for s in 1..8u64 {
            assert!(
                (ab.mass.mass(FocalSet(s)) - ba.mass.mass(FocalSet(s))).abs() < 1e-12,
                "set {s}"
            );
        }
    }

    #[test]
    fn total_conflict_detected() {
        let m1 = singleton_mass(&[(0, 1.0)], 0.0);
        let m2 = singleton_mass(&[(1, 1.0)], 0.0);
        assert_eq!(
            dempster_combine(&m1, &m2).unwrap_err(),
            DstError::TotalConflict
        );
        // Any ignorance resolves the conflict.
        let m2 = singleton_mass(&[(1, 1.0)], 0.1);
        let c = dempster_combine(&m1, &m2).unwrap();
        assert!((c.mass.mass(frame().singleton(0).unwrap()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frame_mismatch_rejected() {
        let m1 = MassFunction::vacuous(Frame::new(2).unwrap());
        let m2 = MassFunction::vacuous(Frame::new(3).unwrap());
        assert_eq!(
            dempster_combine(&m1, &m2).unwrap_err(),
            DstError::FrameMismatch
        );
    }

    #[test]
    fn combined_mass_is_normalized() {
        let m1 = singleton_mass(&[(0, 0.3), (1, 0.4), (2, 0.3)], 0.25);
        let m2 = singleton_mass(&[(0, 0.5), (2, 0.5)], 0.5);
        let c = dempster_combine(&m1, &m2).unwrap();
        assert!((c.mass.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fold_of_three_sources() {
        let ms = vec![
            singleton_mass(&[(0, 0.6), (1, 0.4)], 0.2),
            singleton_mass(&[(0, 0.5), (2, 0.5)], 0.3),
            singleton_mass(&[(0, 0.7), (1, 0.3)], 0.4),
        ];
        let c = dempster_combine_all(&ms).unwrap();
        assert!((c.mass.total_mass() - 1.0).abs() < 1e-9);
        // Element 0 is supported by all three sources and must dominate.
        let p: Vec<f64> = (0..3).map(|i| c.mass.pignistic(i).unwrap()).collect();
        assert!(p[0] > p[1] && p[0] > p[2]);
        assert!(dempster_combine_all(&[]).is_err());
    }

    #[test]
    fn uncertainty_weights_source_influence() {
        // The same evidence with more ignorance moves the result less.
        let strong = singleton_mass(&[(0, 1.0)], 0.1);
        let weak = singleton_mass(&[(1, 1.0)], 0.8);
        let c = dempster_combine(&strong, &weak).unwrap();
        let p0 = c.mass.pignistic(0).unwrap();
        let p1 = c.mass.pignistic(1).unwrap();
        assert!(p0 > p1, "confident source should dominate: {p0} vs {p1}");
    }
}
