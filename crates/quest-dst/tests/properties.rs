//! Property-based tests for the Dempster-Shafer substrate: the algebraic
//! laws the combiner relies on must hold for arbitrary evidence.

use proptest::prelude::*;
use quest_dst::{dempster_combine, FocalSet, Frame, MassFunction};

/// Arbitrary normalized mass function over an `n`-element frame with some
/// ignorance, built from random singleton weights.
fn arb_mass(n: usize) -> impl Strategy<Value = MassFunction> {
    (proptest::collection::vec(0.0f64..10.0, n), 0.01f64..0.99).prop_map(
        move |(weights, uncertainty)| {
            let frame = Frame::new(n).expect("valid frame size");
            let mut m = MassFunction::new(frame);
            let mut any = false;
            for (i, w) in weights.iter().enumerate() {
                if *w > 1e-9 {
                    m.add_singleton(i, *w).expect("in range");
                    any = true;
                }
            }
            if !any {
                m.add_singleton(0, 1.0).expect("in range");
            }
            m.set_uncertainty(uncertainty).expect("valid uncertainty");
            m
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn combination_is_normalized(m1 in arb_mass(6), m2 in arb_mass(6)) {
        let c = dempster_combine(&m1, &m2).expect("ignorance prevents total conflict");
        prop_assert!((c.mass.total_mass() - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&c.conflict));
    }

    #[test]
    fn combination_is_commutative(m1 in arb_mass(5), m2 in arb_mass(5)) {
        let ab = dempster_combine(&m1, &m2).expect("combines");
        let ba = dempster_combine(&m2, &m1).expect("combines");
        for s in 1u64..(1 << 5) {
            let fs = FocalSet(s);
            prop_assert!((ab.mass.mass(fs) - ba.mass.mass(fs)).abs() < 1e-9);
        }
    }

    #[test]
    fn combination_is_associative(
        m1 in arb_mass(4),
        m2 in arb_mass(4),
        m3 in arb_mass(4),
    ) {
        let left = dempster_combine(&dempster_combine(&m1, &m2).expect("combines").mass, &m3)
            .expect("combines");
        let right = dempster_combine(&m1, &dempster_combine(&m2, &m3).expect("combines").mass)
            .expect("combines");
        for s in 1u64..(1 << 4) {
            let fs = FocalSet(s);
            prop_assert!(
                (left.mass.mass(fs) - right.mass.mass(fs)).abs() < 1e-6,
                "set {s}: {} vs {}",
                left.mass.mass(fs),
                right.mass.mass(fs)
            );
        }
    }

    #[test]
    fn vacuous_is_identity(m in arb_mass(6)) {
        let v = MassFunction::vacuous(Frame::new(6).expect("frame"));
        let c = dempster_combine(&m, &v).expect("combines");
        for s in 1u64..(1 << 6) {
            let fs = FocalSet(s);
            prop_assert!((c.mass.mass(fs) - m.mass(fs)).abs() < 1e-9);
        }
        prop_assert!(c.conflict.abs() < 1e-12);
    }

    #[test]
    fn belief_below_plausibility(m in arb_mass(6)) {
        for s in 1u64..(1 << 6) {
            let fs = FocalSet(s);
            prop_assert!(m.belief(fs) <= m.plausibility(fs) + 1e-9);
        }
    }

    #[test]
    fn pignistic_is_a_distribution(m in arb_mass(8)) {
        let total: f64 = (0..8).map(|i| m.pignistic(i).expect("in frame")).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn combining_sharpens_agreeing_evidence(w in 0.55f64..0.95) {
        // Two sources agreeing on element 0 with weight w: the combined
        // pignistic mass of element 0 must not decrease.
        let frame = Frame::new(3).expect("frame");
        let make = || {
            let mut m = MassFunction::new(frame);
            m.add_singleton(0, w).expect("ok");
            m.add_singleton(1, 1.0 - w).expect("ok");
            m.set_uncertainty(0.1).expect("ok");
            m
        };
        let m1 = make();
        let before = m1.pignistic(0).expect("ok");
        let c = dempster_combine(&m1, &make()).expect("combines");
        prop_assert!(c.mass.pignistic(0).expect("ok") >= before - 1e-9);
    }
}
