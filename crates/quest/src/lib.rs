//! # quest — facade for the QUEST keyword-search system
//!
//! One `use quest::prelude::*` away from the full reproduction of
//! *QUEST: A Keyword Search System for Relational Data based on Semantic and
//! Machine Learning Techniques* (Bergamaschi et al., PVLDB 6(12), 2013).
//!
//! ```
//! use quest::prelude::*;
//!
//! let db = quest::data::imdb::generate(&quest::data::imdb::ImdbScale::with_movies(50))
//!     .expect("generator succeeds");
//! let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default())
//!     .expect("setup succeeds");
//! let outcome = engine.search("casablanca director").expect("search succeeds");
//! assert!(!outcome.explanations.is_empty());
//! println!("{}", outcome.explanations[0].sql(engine.wrapper().catalog()));
//! ```

#![warn(missing_docs)]

pub use quest_core as core;
pub use quest_data as data;
pub use quest_dst as dst;
pub use quest_fault as fault;
pub use quest_graph as graph;
pub use quest_hmm as hmm;
pub use quest_obs as obs;
pub use quest_replica as replica;
pub use quest_serve as serve;
pub use quest_shard as shard;
pub use quest_wal as wal;
pub use relstore as store;

/// The most common imports.
pub mod prelude {
    pub use quest_core::{
        AnnotationSet, Configuration, DbTerm, DeepWebWrapper, Explanation, FullAccessWrapper,
        KeywordQuery, MiniOntology, Quest, QuestConfig, QuestError, SearchOutcome, SearchScratch,
        SourceWrapper,
    };
    pub use quest_fault::{FaultPlan, ManualClock, RetryPolicy};
    pub use quest_replica::{
        Consistency, Primary, Replica, ReplicaError, ReplicaSet, RoutingPolicy,
    };
    pub use quest_serve::{CacheConfig, CachedEngine, QueryService, ServeError, ServeStats};
    pub use quest_shard::{
        ScatterGather, ShardConfig, ShardError, ShardedPrimary, ShardedStore, ShardedWrapper,
    };
    pub use quest_wal::{ChangeRecord, SyncPolicy, WalWriter};
    pub use relstore::{Catalog, DataType, Database, Row, Value};
}
