//! Column data types and coercion rules.

use std::fmt;

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 text.
    Text,
    /// Calendar date.
    Date,
}

impl DataType {
    /// All data types, in rank order.
    pub const ALL: [DataType; 5] = [
        DataType::Bool,
        DataType::Int,
        DataType::Float,
        DataType::Text,
        DataType::Date,
    ];

    /// SQL spelling of the type (as used by the SQL renderer).
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "BIGINT",
            DataType::Float => "DOUBLE PRECISION",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
        }
    }

    /// Whether a value of `from` may be stored in a column of `self`
    /// without loss that matters to QUEST (Int widens to Float; everything
    /// renders to Text).
    pub fn accepts(&self, from: DataType) -> bool {
        *self == from
            || matches!((self, from), (DataType::Float, DataType::Int))
            || *self == DataType::Text
    }

    /// Whether the type is textual (and hence participates in full-text
    /// indexing by default).
    pub fn is_textual(&self) -> bool {
        matches!(self, DataType::Text)
    }

    /// Whether the type is numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercion_rules() {
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Float));
        assert!(DataType::Text.accepts(DataType::Date));
        assert!(DataType::Int.accepts(DataType::Int));
    }

    #[test]
    fn sql_names() {
        assert_eq!(DataType::Int.sql_name(), "BIGINT");
        assert_eq!(DataType::Text.to_string(), "TEXT");
    }

    #[test]
    fn textual_and_numeric_flags() {
        assert!(DataType::Text.is_textual());
        assert!(!DataType::Int.is_textual());
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Date.is_numeric());
    }
}
