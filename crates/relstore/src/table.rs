//! Row storage for a single table, with a primary-key index.

use std::collections::HashMap;

use crate::error::StoreError;
use crate::row::{Row, RowId};
use crate::schema::{Catalog, TableId, TableSchema};
use crate::value::Value;

/// Append-only row storage for one table plus a hash index on the primary key.
#[derive(Debug, Clone, Default)]
pub struct TableData {
    rows: Vec<Row>,
    /// PK value tuple -> row id. Keys are the PK column values in key order.
    pk_index: HashMap<Vec<Value>, RowId>,
}

impl TableData {
    /// Empty storage.
    pub fn new() -> TableData {
        TableData::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row by id.
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id.0 as usize]
    }

    /// Iterate `(RowId, &Row)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, r)| (RowId(i as u64), r))
    }

    /// Find a row by its primary-key values.
    pub fn lookup_pk(&self, key: &[Value]) -> Option<RowId> {
        self.pk_index.get(key).copied()
    }

    /// Validate a row against the schema and append it.
    ///
    /// Checks: arity, column types (with coercion per [`crate::types::DataType::accepts`]),
    /// NOT NULL constraints, and PK uniqueness. FK checks live in
    /// `Database::insert` because they need other tables.
    pub fn insert(
        &mut self,
        catalog: &Catalog,
        schema: &TableSchema,
        row: Row,
    ) -> Result<RowId, StoreError> {
        if row.arity() != schema.attributes.len() {
            return Err(StoreError::TypeMismatch(format!(
                "table {} expects {} columns, row has {}",
                schema.name,
                schema.attributes.len(),
                row.arity()
            )));
        }
        for (pos, attr_id) in schema.attributes.iter().enumerate() {
            let attr = catalog.attribute(*attr_id);
            let v = row.get(pos);
            if v.is_null() {
                if !attr.nullable {
                    return Err(StoreError::NullViolation(format!(
                        "{}.{}",
                        schema.name, attr.name
                    )));
                }
                continue;
            }
            let vty = v.data_type().expect("non-null value has a type");
            if !attr.data_type.accepts(vty) {
                return Err(StoreError::TypeMismatch(format!(
                    "{}.{} expects {}, got {}",
                    schema.name, attr.name, attr.data_type, vty
                )));
            }
        }
        let key: Vec<Value> = schema
            .primary_key
            .iter()
            .map(|a| row.get(catalog.attribute(*a).position).clone())
            .collect();
        if self.pk_index.contains_key(&key) {
            return Err(StoreError::DuplicateKey(format!(
                "{}{}",
                schema.name,
                Row::new(key)
            )));
        }
        let id = RowId(self.rows.len() as u64);
        self.pk_index.insert(key, id);
        self.rows.push(row);
        Ok(id)
    }
}

/// A `(table, row)` reference used by instance-level baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleRef {
    /// Owning table.
    pub table: TableId,
    /// Row within the table.
    pub row: RowId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .col_opts("score", DataType::Float, true, false)
            .unwrap()
            .finish();
        c
    }

    #[test]
    fn insert_and_lookup() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        let id = d
            .insert(&c, &ts, Row::new(vec![1.into(), "a".into(), 0.5.into()]))
            .unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.lookup_pk(&[Value::Int(1)]), Some(id));
        assert_eq!(d.lookup_pk(&[Value::Int(2)]), None);
    }

    #[test]
    fn arity_checked() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        let err = d.insert(&c, &ts, Row::new(vec![1.into()])).unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch(_)));
    }

    #[test]
    fn type_checked_with_coercion() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        // Int coerces into Float column.
        d.insert(&c, &ts, Row::new(vec![1.into(), "a".into(), 3.into()]))
            .unwrap();
        // Text into Float column rejected.
        let err = d
            .insert(&c, &ts, Row::new(vec![2.into(), "b".into(), "x".into()]))
            .unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch(_)));
    }

    #[test]
    fn pk_uniqueness() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        d.insert(&c, &ts, Row::new(vec![1.into(), "a".into(), Value::Null]))
            .unwrap();
        let err = d
            .insert(&c, &ts, Row::new(vec![1.into(), "b".into(), Value::Null]))
            .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey(_)));
    }

    #[test]
    fn null_violation_on_pk() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        let err = d
            .insert(
                &c,
                &ts,
                Row::new(vec![Value::Null, "a".into(), Value::Null]),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::NullViolation(_)));
    }
}
