//! Row storage for a single table, with a primary-key index.

use std::collections::HashMap;

use crate::error::StoreError;
use crate::row::{Row, RowId};
use crate::schema::{Catalog, TableId, TableSchema};
use crate::value::Value;

/// Row storage for one table plus a hash index on the primary key.
///
/// Rows live in *slots*: a [`RowId`] is the slot position, assigned at
/// insertion and never reused, so references held elsewhere (inverted-index
/// postings, result sets) stay valid across deletes. A deleted row leaves a
/// tombstoned slot behind; [`TableData::iter`] skips tombstones and
/// [`TableData::len`] counts live rows only.
#[derive(Debug, Clone, Default)]
pub struct TableData {
    /// Slot-addressed rows; `None` marks a tombstone.
    rows: Vec<Option<Row>>,
    /// Number of live (non-tombstoned) rows.
    live: usize,
    /// PK value tuple -> row id. Keys are the PK column values in key order.
    pk_index: HashMap<Vec<Value>, RowId>,
}

impl TableData {
    /// Empty storage.
    pub fn new() -> TableData {
        TableData::default()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots, including tombstones (the next insert's [`RowId`]).
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Row by id. Panics if the slot is tombstoned or out of range; use
    /// [`TableData::get`] when the id may refer to a deleted row.
    pub fn row(&self, id: RowId) -> &Row {
        self.rows[id.0 as usize]
            .as_ref()
            .expect("row slot is tombstoned")
    }

    /// Row by id, `None` for tombstoned or out-of-range slots.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    /// Iterate `(RowId, &Row)` over live rows in slot (= insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (RowId(i as u64), r)))
    }

    /// Iterate all slots in order, tombstones included (snapshot export).
    pub fn slots(&self) -> impl Iterator<Item = Option<&Row>> {
        self.rows.iter().map(|s| s.as_ref())
    }

    /// Find a row by its primary-key values.
    pub fn lookup_pk(&self, key: &[Value]) -> Option<RowId> {
        self.pk_index.get(key).copied()
    }

    /// Validate a row against the schema: arity, column types (with coercion
    /// per [`crate::types::DataType::accepts`]), and NOT NULL constraints.
    pub fn check_row(catalog: &Catalog, schema: &TableSchema, row: &Row) -> Result<(), StoreError> {
        if row.arity() != schema.attributes.len() {
            return Err(StoreError::TypeMismatch(format!(
                "table {} expects {} columns, row has {}",
                schema.name,
                schema.attributes.len(),
                row.arity()
            )));
        }
        for (pos, attr_id) in schema.attributes.iter().enumerate() {
            let attr = catalog.attribute(*attr_id);
            let v = row.get(pos);
            if v.is_null() {
                if !attr.nullable {
                    return Err(StoreError::NullViolation(format!(
                        "{}.{}",
                        schema.name, attr.name
                    )));
                }
                continue;
            }
            let vty = v.data_type().expect("non-null value has a type");
            if !attr.data_type.accepts(vty) {
                return Err(StoreError::TypeMismatch(format!(
                    "{}.{} expects {}, got {}",
                    schema.name, attr.name, attr.data_type, vty
                )));
            }
        }
        Ok(())
    }

    /// The primary-key value tuple of a row, in key order.
    pub fn pk_of(catalog: &Catalog, schema: &TableSchema, row: &Row) -> Vec<Value> {
        schema
            .primary_key
            .iter()
            .map(|a| row.get(catalog.attribute(*a).position).clone())
            .collect()
    }

    /// Validate a row and append it to a fresh slot.
    ///
    /// Checks: arity, column types, NOT NULL constraints, and PK uniqueness.
    /// FK checks live in `Database::insert` because they need other tables.
    pub fn insert(
        &mut self,
        catalog: &Catalog,
        schema: &TableSchema,
        row: Row,
    ) -> Result<RowId, StoreError> {
        Self::check_row(catalog, schema, &row)?;
        self.insert_prevalidated(catalog, schema, row)
    }

    /// [`TableData::insert`] for callers that already ran
    /// [`TableData::check_row`] on `row` earlier in their own pipeline, so
    /// the row is not re-validated here.
    pub fn insert_prevalidated(
        &mut self,
        catalog: &Catalog,
        schema: &TableSchema,
        row: Row,
    ) -> Result<RowId, StoreError> {
        let key = Self::pk_of(catalog, schema, &row);
        if self.pk_index.contains_key(&key) {
            return Err(StoreError::DuplicateKey(format!(
                "{}{}",
                schema.name,
                Row::new(key)
            )));
        }
        let id = RowId(self.rows.len() as u64);
        self.pk_index.insert(key, id);
        self.rows.push(Some(row));
        self.live += 1;
        Ok(id)
    }

    /// Tombstone the row at `id`, returning the removed row. RI checks live
    /// in `Database::delete`.
    pub fn delete(
        &mut self,
        catalog: &Catalog,
        schema: &TableSchema,
        id: RowId,
    ) -> Result<Row, StoreError> {
        let slot = self
            .rows
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .ok_or_else(|| StoreError::RowNotFound(format!("{}: no live row {id}", schema.name)))?;
        self.pk_index.remove(&Self::pk_of(catalog, schema, &slot));
        self.live -= 1;
        Ok(slot)
    }

    /// Replace the row at `id` in place (same slot, same [`RowId`]),
    /// returning the old row. Validates the new row and PK uniqueness when
    /// the key changes; FK checks live in `Database::update`.
    pub fn update(
        &mut self,
        catalog: &Catalog,
        schema: &TableSchema,
        id: RowId,
        row: Row,
    ) -> Result<Row, StoreError> {
        Self::check_row(catalog, schema, &row)?;
        self.update_prevalidated(catalog, schema, id, row)
    }

    /// [`TableData::update`] for callers that already ran
    /// [`TableData::check_row`] on `row` earlier in their own pipeline
    /// (`Database::update` validates before its FK checks), so the row is
    /// not re-validated here.
    pub fn update_prevalidated(
        &mut self,
        catalog: &Catalog,
        schema: &TableSchema,
        id: RowId,
        row: Row,
    ) -> Result<Row, StoreError> {
        let old = self
            .rows
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| StoreError::RowNotFound(format!("{}: no live row {id}", schema.name)))?;
        let old_key = Self::pk_of(catalog, schema, old);
        let new_key = Self::pk_of(catalog, schema, &row);
        if new_key != old_key {
            if self.pk_index.contains_key(&new_key) {
                return Err(StoreError::DuplicateKey(format!(
                    "{}{}",
                    schema.name,
                    Row::new(new_key)
                )));
            }
            self.pk_index.remove(&old_key);
            self.pk_index.insert(new_key, id);
        }
        let slot = &mut self.rows[id.0 as usize];
        let old = slot.replace(row).expect("slot checked live above");
        Ok(old)
    }

    /// Rebuild storage from an explicit slot layout, tombstones included
    /// (snapshot import). Live rows are validated like inserts.
    pub fn restore(
        catalog: &Catalog,
        schema: &TableSchema,
        slots: Vec<Option<Row>>,
    ) -> Result<TableData, StoreError> {
        let mut data = TableData {
            rows: Vec::with_capacity(slots.len()),
            live: 0,
            pk_index: HashMap::new(),
        };
        for slot in slots {
            match slot {
                Some(row) => {
                    Self::check_row(catalog, schema, &row)?;
                    let key = Self::pk_of(catalog, schema, &row);
                    let id = RowId(data.rows.len() as u64);
                    if data.pk_index.insert(key, id).is_some() {
                        return Err(StoreError::DuplicateKey(format!(
                            "{} slot {id}",
                            schema.name
                        )));
                    }
                    data.rows.push(Some(row));
                    data.live += 1;
                }
                None => data.rows.push(None),
            }
        }
        Ok(data)
    }
}

/// A `(table, row)` reference used by instance-level baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleRef {
    /// Owning table.
    pub table: TableId,
    /// Row within the table.
    pub row: RowId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .col_opts("score", DataType::Float, true, false)
            .unwrap()
            .finish();
        c
    }

    #[test]
    fn insert_and_lookup() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        let id = d
            .insert(&c, &ts, Row::new(vec![1.into(), "a".into(), 0.5.into()]))
            .unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.lookup_pk(&[Value::Int(1)]), Some(id));
        assert_eq!(d.lookup_pk(&[Value::Int(2)]), None);
    }

    #[test]
    fn arity_checked() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        let err = d.insert(&c, &ts, Row::new(vec![1.into()])).unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch(_)));
    }

    #[test]
    fn type_checked_with_coercion() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        // Int coerces into Float column.
        d.insert(&c, &ts, Row::new(vec![1.into(), "a".into(), 3.into()]))
            .unwrap();
        // Text into Float column rejected.
        let err = d
            .insert(&c, &ts, Row::new(vec![2.into(), "b".into(), "x".into()]))
            .unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch(_)));
    }

    #[test]
    fn pk_uniqueness() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        d.insert(&c, &ts, Row::new(vec![1.into(), "a".into(), Value::Null]))
            .unwrap();
        let err = d
            .insert(&c, &ts, Row::new(vec![1.into(), "b".into(), Value::Null]))
            .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey(_)));
    }

    #[test]
    fn null_violation_on_pk() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        let err = d
            .insert(
                &c,
                &ts,
                Row::new(vec![Value::Null, "a".into(), Value::Null]),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::NullViolation(_)));
    }

    #[test]
    fn delete_tombstones_and_keeps_ids_stable() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        for i in 0..3i64 {
            d.insert(
                &c,
                &ts,
                Row::new(vec![i.into(), format!("r{i}").into(), Value::Null]),
            )
            .unwrap();
        }
        let gone = d.delete(&c, &ts, RowId(1)).unwrap();
        assert_eq!(gone.get(1), &Value::text("r1"));
        assert_eq!(d.len(), 2);
        assert_eq!(d.slot_count(), 3);
        assert_eq!(d.lookup_pk(&[Value::Int(1)]), None);
        assert_eq!(d.get(RowId(1)), None);
        // Survivors keep their slots; iteration skips the tombstone.
        assert_eq!(d.row(RowId(2)).get(1), &Value::text("r2"));
        let ids: Vec<u64> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 2]);
        // Double delete fails; next insert takes a fresh slot.
        assert!(d.delete(&c, &ts, RowId(1)).is_err());
        let id = d
            .insert(&c, &ts, Row::new(vec![9.into(), "r9".into(), Value::Null]))
            .unwrap();
        assert_eq!(id, RowId(3));
    }

    #[test]
    fn update_in_place_and_pk_moves() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let mut d = TableData::new();
        d.insert(&c, &ts, Row::new(vec![1.into(), "a".into(), Value::Null]))
            .unwrap();
        d.insert(&c, &ts, Row::new(vec![2.into(), "b".into(), Value::Null]))
            .unwrap();
        // Same PK: value change only.
        let old = d
            .update(
                &c,
                &ts,
                RowId(0),
                Row::new(vec![1.into(), "a2".into(), Value::Null]),
            )
            .unwrap();
        assert_eq!(old.get(1), &Value::text("a"));
        assert_eq!(d.row(RowId(0)).get(1), &Value::text("a2"));
        // PK change relocates the index entry.
        d.update(
            &c,
            &ts,
            RowId(0),
            Row::new(vec![7.into(), "a3".into(), Value::Null]),
        )
        .unwrap();
        assert_eq!(d.lookup_pk(&[Value::Int(1)]), None);
        assert_eq!(d.lookup_pk(&[Value::Int(7)]), Some(RowId(0)));
        // PK collision rejected, state unchanged.
        let err = d
            .update(
                &c,
                &ts,
                RowId(0),
                Row::new(vec![2.into(), "x".into(), Value::Null]),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey(_)));
        assert_eq!(d.lookup_pk(&[Value::Int(7)]), Some(RowId(0)));
        // Updating a tombstone fails.
        d.delete(&c, &ts, RowId(1)).unwrap();
        assert!(d
            .update(
                &c,
                &ts,
                RowId(1),
                Row::new(vec![3.into(), "y".into(), Value::Null])
            )
            .is_err());
    }

    #[test]
    fn restore_preserves_slot_layout() {
        let c = catalog();
        let ts = c.table(c.table_id("t").unwrap()).clone();
        let slots = vec![
            Some(Row::new(vec![1.into(), "a".into(), Value::Null])),
            None,
            Some(Row::new(vec![2.into(), "b".into(), Value::Null])),
        ];
        let d = TableData::restore(&c, &ts, slots).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.slot_count(), 3);
        assert_eq!(d.lookup_pk(&[Value::Int(2)]), Some(RowId(2)));
        assert_eq!(d.get(RowId(1)), None);
        // Duplicate PKs across slots rejected.
        let bad = vec![
            Some(Row::new(vec![1.into(), "a".into(), Value::Null])),
            Some(Row::new(vec![1.into(), "b".into(), Value::Null])),
        ];
        assert!(TableData::restore(&c, &ts, bad).is_err());
    }
}
