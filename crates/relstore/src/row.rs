//! Rows and row identifiers.

use std::fmt;

use crate::value::Value;

/// Position of a row inside its table (stable: rows are append-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A tuple of values, positionally aligned with the owning table's attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at column position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_display() {
        let r = Row::new(vec![Value::Int(1), Value::text("x"), Value::Null]);
        assert_eq!(r.to_string(), "(1, x, NULL)");
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(1), &Value::text("x"));
    }
}
