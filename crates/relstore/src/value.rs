//! Typed scalar values stored in relation columns.
//!
//! `Value` is the dynamic value type flowing through the storage engine, the
//! SQL executor and the full-text indexes. It supports a *total* ordering
//! (`Null` sorts first, then by type rank, then by payload) so values can be
//! used as keys in ordered collections, and SQL-style *three-valued* equality
//! through [`Value::sql_eq`].

use std::cmp::Ordering;
use std::fmt;

use crate::types::DataType;

/// A calendar date, stored as (year, month, day) without timezone semantics.
///
/// The storage engine does not need full chrono support: QUEST only compares
/// and renders dates. Validity (month in 1..=12, day in 1..=31) is enforced at
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Astronomical year (may be negative).
    pub year: i32,
    /// Month, 1-12.
    pub month: u8,
    /// Day of month, 1-31 (no per-month length check; this is a storage type).
    pub day: u8,
}

impl Date {
    /// Create a date, validating month and day ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if (1..=12).contains(&month) && (1..=31).contains(&day) {
            Some(Date { year, month, day })
        } else {
            None
        }
    }

    /// Days since year 0 in a simplified proleptic calendar (months = 31
    /// days). Only used for ordering and distance, never for display.
    fn ordinal(&self) -> i64 {
        self.year as i64 * 372 + (self.month as i64 - 1) * 31 + (self.day as i64 - 1)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A dynamically typed scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalized to `Null` at construction sites.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Construct a float, mapping NaN to `Null` so the total order is sound.
    pub fn float(f: f64) -> Value {
        if f.is_nan() {
            Value::Null
        } else {
            Value::Float(f)
        }
    }

    /// The runtime type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True when the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL three-valued equality: NULL = anything is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_non_null(other) == Ordering::Equal)
    }

    /// SQL three-valued comparison; `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_non_null(other))
    }

    /// Numeric view: ints and floats compare numerically across types.
    fn numeric(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
            Value::Date(_) => 4,
        }
    }

    fn cmp_non_null(&self, other: &Value) -> Ordering {
        if let (Some(a), Some(b)) = (self.numeric(), other.numeric()) {
            return a.partial_cmp(&b).unwrap_or(Ordering::Equal);
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.ordinal().cmp(&b.ordinal()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    /// Render the value as it would appear inside a SQL literal.
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{:.1}", f)
                } else {
                    format!("{}", f)
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Date(d) => format!("DATE '{}'", d),
        }
    }

    /// Best-effort textual rendering (used by full-text indexing and display).
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Text(s) => s.clone(),
            Value::Date(d) => d.to_string(),
        }
    }

    /// Attempt to parse `raw` into a value of `ty`.
    pub fn parse(raw: &str, ty: DataType) -> Option<Value> {
        let raw = raw.trim();
        if raw.is_empty() || raw.eq_ignore_ascii_case("null") {
            return Some(Value::Null);
        }
        match ty {
            DataType::Bool => match raw.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" | "yes" => Some(Value::Bool(true)),
                "false" | "f" | "0" | "no" => Some(Value::Bool(false)),
                _ => None,
            },
            DataType::Int => raw.parse::<i64>().ok().map(Value::Int),
            DataType::Float => raw.parse::<f64>().ok().map(Value::float),
            DataType::Text => Some(Value::Text(raw.to_string())),
            DataType::Date => {
                let mut parts = raw.splitn(3, '-');
                let year = parts.next()?.parse::<i32>().ok()?;
                let month = parts.next()?.parse::<u8>().ok()?;
                let day = parts.next()?.parse::<u8>().ok()?;
                Date::new(year, month, day).map(Value::Date)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL first, then by type rank, then payload. Int/Float
    /// compare numerically so `Int(1) == Float(1.0)`.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        self.cmp_non_null(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when numerically equal,
            // because they compare equal. Hash the f64 bit pattern of the
            // canonical numeric value.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            other => write!(f, "{}", other.render()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::Int(1), Value::Null, Value::Bool(true)];
        vs.sort();
        assert!(vs[0].is_null());
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn sql_eq_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn nan_becomes_null() {
        assert!(Value::float(f64::NAN).is_null());
    }

    #[test]
    fn date_ordering_and_display() {
        let a = Date::new(1999, 12, 31).unwrap();
        let b = Date::new(2000, 1, 1).unwrap();
        assert!(Value::Date(a) < Value::Date(b));
        assert_eq!(a.to_string(), "1999-12-31");
        assert!(Date::new(2000, 13, 1).is_none());
        assert!(Date::new(2000, 0, 1).is_none());
        assert!(Date::new(2000, 1, 32).is_none());
    }

    #[test]
    fn parse_round_trip() {
        assert_eq!(Value::parse("42", DataType::Int), Some(Value::Int(42)));
        assert_eq!(
            Value::parse("2001-09-11", DataType::Date),
            Some(Value::Date(Date::new(2001, 9, 11).unwrap()))
        );
        assert_eq!(Value::parse("yes", DataType::Bool), Some(Value::Bool(true)));
        assert_eq!(Value::parse("", DataType::Int), Some(Value::Null));
        assert_eq!(Value::parse("abc", DataType::Int), None);
    }

    #[test]
    fn sql_literal_escaping() {
        assert_eq!(Value::text("O'Hara").to_sql_literal(), "'O''Hara'");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Float(2.0).to_sql_literal(), "2.0");
    }
}
