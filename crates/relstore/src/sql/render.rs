//! SQL text generation: the `SELECT ... FROM ... WHERE ...` strings QUEST
//! presents to the user as explanations.

use crate::schema::Catalog;
use crate::sql::ast::{Predicate, Projection, SelectStatement};

/// Render a statement as standard SQL against the given catalog.
pub fn render_sql(catalog: &Catalog, stmt: &SelectStatement) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("SELECT ");
    if stmt.distinct {
        out.push_str("DISTINCT ");
    }
    match &stmt.projection {
        Projection::Star => out.push('*'),
        Projection::Attrs(attrs) => {
            if attrs.is_empty() {
                out.push('*');
            } else {
                for (i, a) in attrs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&catalog.qualified_name(*a));
                }
            }
        }
    }
    out.push_str(" FROM ");
    for (i, t) in stmt.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&catalog.table(*t).name);
    }

    let mut conds: Vec<String> = Vec::new();
    for j in &stmt.joins {
        conds.push(format!(
            "{} = {}",
            catalog.qualified_name(j.left),
            catalog.qualified_name(j.right)
        ));
    }
    for p in &stmt.predicates {
        conds.push(render_predicate(catalog, p));
    }
    if !conds.is_empty() {
        out.push_str(" WHERE ");
        out.push_str(&conds.join(" AND "));
    }
    if let Some(l) = stmt.limit {
        out.push_str(&format!(" LIMIT {l}"));
    }
    out
}

fn render_predicate(catalog: &Catalog, p: &Predicate) -> String {
    match p {
        Predicate::Contains { attr, keyword } => format!(
            "{} LIKE '%{}%'",
            catalog.qualified_name(*attr),
            keyword.replace('\'', "''")
        ),
        Predicate::Compare { attr, op, value } => format!(
            "{} {} {}",
            catalog.qualified_name(*attr),
            op.sql(),
            value.to_sql_literal()
        ),
        Predicate::IsNull { attr, negated } => format!(
            "{} IS {}NULL",
            catalog.qualified_name(*attr),
            if *negated { "NOT " } else { "" }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::{CompareOp, JoinCondition};
    use crate::types::DataType;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        c
    }

    #[test]
    fn renders_join_query() {
        let c = catalog();
        let stmt = SelectStatement {
            projection: Projection::Attrs(vec![
                c.attr_id("movie", "title").unwrap(),
                c.attr_id("person", "name").unwrap(),
            ]),
            from: vec![c.table_id("movie").unwrap(), c.table_id("person").unwrap()],
            joins: vec![JoinCondition {
                left: c.attr_id("movie", "director_id").unwrap(),
                right: c.attr_id("person", "id").unwrap(),
            }],
            predicates: vec![Predicate::Contains {
                attr: c.attr_id("movie", "title").unwrap(),
                keyword: "wind".into(),
            }],
            distinct: true,
            limit: Some(10),
        };
        assert_eq!(
            render_sql(&c, &stmt),
            "SELECT DISTINCT movie.title, person.name FROM movie, person \
             WHERE movie.director_id = person.id AND movie.title LIKE '%wind%' LIMIT 10"
        );
    }

    #[test]
    fn renders_star_scan() {
        let c = catalog();
        let stmt = SelectStatement::scan(c.table_id("movie").unwrap());
        assert_eq!(render_sql(&c, &stmt), "SELECT * FROM movie");
    }

    #[test]
    fn renders_compare_and_null() {
        let c = catalog();
        let mut stmt = SelectStatement::scan(c.table_id("person").unwrap());
        stmt.predicates.push(Predicate::Compare {
            attr: c.attr_id("person", "id").unwrap(),
            op: CompareOp::Ge,
            value: Value::Int(5),
        });
        stmt.predicates.push(Predicate::IsNull {
            attr: c.attr_id("person", "name").unwrap(),
            negated: true,
        });
        assert_eq!(
            render_sql(&c, &stmt),
            "SELECT * FROM person WHERE person.id >= 5 AND person.name IS NOT NULL"
        );
    }

    #[test]
    fn escapes_quotes_in_like() {
        let c = catalog();
        let mut stmt = SelectStatement::scan(c.table_id("person").unwrap());
        stmt.predicates.push(Predicate::Contains {
            attr: c.attr_id("person", "name").unwrap(),
            keyword: "o'hara".into(),
        });
        assert!(render_sql(&c, &stmt).contains("LIKE '%o''hara%'"));
    }
}
