//! The SQL layer: AST, text rendering and execution.

pub mod ast;
pub mod executor;
pub mod parser;
pub mod render;

pub use ast::{CompareOp, JoinCondition, Predicate, Projection, SelectStatement};
pub use executor::{execute, has_results, ResultSet};
pub use parser::parse_sql;
pub use render::render_sql;
