//! A parser for the SELECT-PROJECT-JOIN fragment the engine emits.
//!
//! Round-trips [`crate::sql::render::render_sql`]: any statement the
//! renderer prints parses back to an equivalent AST. Useful for writing gold
//! queries as text and for driving the engine from a REPL.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! select   := SELECT [DISTINCT] ( '*' | column (',' column)* )
//!             FROM table (',' table)*
//!             [WHERE condition (AND condition)*]
//!             [LIMIT n]
//! column   := ident '.' ident
//! condition:= column '=' column            -- join
//!           | column LIKE string           -- containment ('%kw%')
//!           | column op literal            -- comparison
//!           | column IS [NOT] NULL
//! ```

use crate::error::StoreError;
use crate::schema::Catalog;
use crate::sql::ast::{CompareOp, JoinCondition, Predicate, Projection, SelectStatement};
use crate::types::DataType;
use crate::value::Value;

/// Parse a SQL string against a catalog.
pub fn parse_sql(catalog: &Catalog, input: &str) -> Result<SelectStatement, StoreError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        catalog,
        tokens,
        pos: 0,
    };
    let stmt = p.parse_select()?;
    p.expect_end()?;
    Ok(stmt)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Number(String),
    Star,
    Comma,
    Dot,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

fn lex(input: &str) -> Result<Vec<Token>, StoreError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let err = |m: String| StoreError::InvalidQuery(m);
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(ch) => {
                            s.push(*ch);
                            i += 1;
                        }
                        None => return Err(err("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                out.push(Token::Number(chars[start..i].iter().collect()));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
                let _ = start;
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    catalog: &'a Catalog,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: impl Into<String>) -> StoreError {
        StoreError::InvalidQuery(format!("{} (at token {})", m.into(), self.pos))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), StoreError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn ident(&mut self) -> Result<String, StoreError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(self.err("expected identifier")),
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), StoreError> {
        match self.bump() {
            Some(got) if got == t => Ok(()),
            _ => Err(self.err(format!("expected {t:?}"))),
        }
    }

    fn expect_end(&self) -> Result<(), StoreError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("trailing tokens"))
        }
    }

    fn qualified_attr(&mut self) -> Result<crate::schema::AttrId, StoreError> {
        let table = self.ident()?;
        self.expect(Token::Dot)?;
        let attr = self.ident()?;
        self.catalog.attr_id(&table, &attr)
    }

    fn parse_select(&mut self) -> Result<SelectStatement, StoreError> {
        self.expect_keyword("select")?;
        let distinct = self.keyword("distinct");
        let projection = if self.peek() == Some(&Token::Star) {
            self.bump();
            Projection::Star
        } else {
            let mut attrs = vec![self.qualified_attr()?];
            while self.peek() == Some(&Token::Comma) {
                self.bump();
                attrs.push(self.qualified_attr()?);
            }
            Projection::Attrs(attrs)
        };
        self.expect_keyword("from")?;
        let mut from = vec![self.catalog.table_id(&self.ident()?)?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            from.push(self.catalog.table_id(&self.ident()?)?);
        }
        let mut joins = Vec::new();
        let mut predicates = Vec::new();
        if self.keyword("where") {
            loop {
                self.parse_condition(&mut joins, &mut predicates)?;
                if !self.keyword("and") {
                    break;
                }
            }
        }
        let limit = if self.keyword("limit") {
            match self.bump() {
                Some(Token::Number(n)) => Some(
                    n.parse::<usize>()
                        .map_err(|_| self.err("bad LIMIT value"))?,
                ),
                _ => return Err(self.err("expected number after LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStatement {
            projection,
            from,
            joins,
            predicates,
            distinct,
            limit,
        })
    }

    fn parse_condition(
        &mut self,
        joins: &mut Vec<JoinCondition>,
        predicates: &mut Vec<Predicate>,
    ) -> Result<(), StoreError> {
        let attr = self.qualified_attr()?;
        if self.keyword("like") {
            let pat = match self.bump() {
                Some(Token::Str(s)) => s,
                _ => return Err(self.err("expected string after LIKE")),
            };
            let keyword = pat.trim_matches('%').to_string();
            predicates.push(Predicate::Contains { attr, keyword });
            return Ok(());
        }
        if self.keyword("is") {
            let negated = self.keyword("not");
            self.expect_keyword("null")?;
            predicates.push(Predicate::IsNull { attr, negated });
            return Ok(());
        }
        let op = match self.bump() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Ne) => CompareOp::Ne,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            _ => return Err(self.err("expected comparison operator")),
        };
        // Right side: another qualified attribute (join) or a literal.
        match self.peek() {
            Some(Token::Ident(s))
                if !s.eq_ignore_ascii_case("true")
                    && !s.eq_ignore_ascii_case("false")
                    && !s.eq_ignore_ascii_case("date") =>
            {
                if op != CompareOp::Eq {
                    return Err(self.err("joins must use ="));
                }
                let right = self.qualified_attr()?;
                joins.push(JoinCondition { left: attr, right });
            }
            _ => {
                let value = self.parse_literal()?;
                predicates.push(Predicate::Compare { attr, op, value });
            }
        }
        Ok(())
    }

    fn parse_literal(&mut self) -> Result<Value, StoreError> {
        match self.bump() {
            Some(Token::Number(n)) => {
                if n.contains('.') {
                    n.parse::<f64>()
                        .map(Value::float)
                        .map_err(|_| self.err("bad float literal"))
                } else {
                    n.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| self.err("bad integer literal"))
                }
            }
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("date") => match self.bump() {
                Some(Token::Str(d)) => {
                    Value::parse(&d, DataType::Date).ok_or_else(|| self.err("bad date literal"))
                }
                _ => Err(self.err("expected string after DATE")),
            },
            _ => Err(self.err("expected literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::render::render_sql;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .col_opts("year", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        c
    }

    #[test]
    fn parses_full_statement() {
        let c = catalog();
        let stmt = parse_sql(
            &c,
            "SELECT DISTINCT movie.title, person.name FROM movie, person \
             WHERE movie.director_id = person.id AND movie.title LIKE '%wind%' \
             AND movie.year >= 1930 LIMIT 10",
        )
        .unwrap();
        assert!(stmt.distinct);
        assert_eq!(stmt.from.len(), 2);
        assert_eq!(stmt.joins.len(), 1);
        assert_eq!(stmt.predicates.len(), 2);
        assert_eq!(stmt.limit, Some(10));
        match &stmt.predicates[0] {
            Predicate::Contains { keyword, .. } => assert_eq!(keyword, "wind"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trips_renderer_output() {
        let c = catalog();
        let original = parse_sql(
            &c,
            "SELECT movie.title FROM movie WHERE movie.year = 1939 AND \
             movie.title LIKE '%oz%' AND movie.director_id IS NOT NULL",
        )
        .unwrap();
        let text = render_sql(&c, &original);
        let reparsed = parse_sql(&c, &text).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn case_insensitive_keywords() {
        let c = catalog();
        let stmt = parse_sql(&c, "select * from movie where movie.year < 2000").unwrap();
        assert_eq!(stmt.projection, Projection::Star);
        assert_eq!(stmt.predicates.len(), 1);
    }

    #[test]
    fn string_escapes() {
        let c = catalog();
        let stmt = parse_sql(
            &c,
            "SELECT * FROM person WHERE person.name LIKE '%o''hara%'",
        )
        .unwrap();
        match &stmt.predicates[0] {
            Predicate::Contains { keyword, .. } => assert_eq!(keyword, "o'hara"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boolean_null_and_negative_literals() {
        let c = catalog();
        let stmt = parse_sql(&c, "SELECT * FROM movie WHERE movie.year <> -5").unwrap();
        match &stmt.predicates[0] {
            Predicate::Compare { op, value, .. } => {
                assert_eq!(*op, CompareOp::Ne);
                assert_eq!(*value, Value::Int(-5));
            }
            other => panic!("unexpected {other:?}"),
        }
        let stmt = parse_sql(&c, "SELECT * FROM movie WHERE movie.year IS NULL").unwrap();
        assert!(matches!(
            stmt.predicates[0],
            Predicate::IsNull { negated: false, .. }
        ));
    }

    #[test]
    fn rejects_malformed_sql() {
        let c = catalog();
        for bad in [
            "",
            "SELECT",
            "SELECT * FROM ghost",
            "SELECT * FROM movie WHERE",
            "SELECT * FROM movie WHERE movie.ghost = 1",
            "SELECT * FROM movie WHERE movie.year",
            "SELECT * FROM movie LIMIT x",
            "SELECT * FROM movie trailing",
            "SELECT * FROM movie WHERE movie.title LIKE 'unterminated",
            "SELECT * FROM movie WHERE movie.year > person.id", // join must use =
        ] {
            assert!(parse_sql(&c, bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parsed_statements_execute() {
        let c = catalog();
        let mut db = crate::Database::new(c).unwrap();
        db.insert(
            "person",
            crate::Row::new(vec![1.into(), "Victor Fleming".into()]),
        )
        .unwrap();
        db.insert(
            "movie",
            crate::Row::new(vec![
                10.into(),
                "Gone with the Wind".into(),
                1.into(),
                1939.into(),
            ]),
        )
        .unwrap();
        db.finalize();
        let stmt = parse_sql(
            db.catalog(),
            "SELECT movie.title, person.name FROM movie, person \
             WHERE movie.director_id = person.id AND movie.year = 1939",
        )
        .unwrap();
        let rs = crate::sql::execute(&db, &stmt).unwrap();
        assert_eq!(rs.len(), 1);
    }
}
