//! A minimal SQL AST: exactly the SELECT-PROJECT-JOIN fragment QUEST's query
//! builder emits and the wrapper executes.

use crate::schema::AttrId;
use crate::value::Value;

/// Comparison operators usable in WHERE predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    /// Evaluate against an ordering result.
    pub fn eval(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
        }
    }
}

/// A single-table WHERE predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Full-text containment: every keyword token occurs in the value
    /// (rendered as `attr LIKE '%kw%'`). This is how keyword→value mappings
    /// become SQL.
    Contains {
        /// Constrained attribute.
        attr: AttrId,
        /// The user keyword to match.
        keyword: String,
    },
    /// Scalar comparison against a literal.
    Compare {
        /// Constrained attribute.
        attr: AttrId,
        /// Comparison operator.
        op: CompareOp,
        /// Literal right-hand side.
        value: Value,
    },
    /// `attr IS NULL` / `IS NOT NULL`.
    IsNull {
        /// Constrained attribute.
        attr: AttrId,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Predicate {
    /// The attribute the predicate constrains.
    pub fn attr(&self) -> AttrId {
        match self {
            Predicate::Contains { attr, .. }
            | Predicate::Compare { attr, .. }
            | Predicate::IsNull { attr, .. } => *attr,
        }
    }
}

/// An equi-join condition `left = right` between attributes of two tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinCondition {
    /// Attribute on one side.
    pub left: AttrId,
    /// Attribute on the other side.
    pub right: AttrId,
}

/// What to project.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT *` over all FROM tables.
    Star,
    /// A list of attributes.
    Attrs(Vec<AttrId>),
}

/// A SELECT-PROJECT-JOIN statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// Projected columns.
    pub projection: Projection,
    /// Tables in the FROM clause, by catalog id. Each table appears at most
    /// once (QUEST's schema-level Steiner trees never repeat a table).
    pub from: Vec<crate::schema::TableId>,
    /// Equi-join conditions.
    pub joins: Vec<JoinCondition>,
    /// Single-table predicates, ANDed.
    pub predicates: Vec<Predicate>,
    /// DISTINCT flag.
    pub distinct: bool,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

impl SelectStatement {
    /// A `SELECT * FROM table` skeleton.
    pub fn scan(table: crate::schema::TableId) -> SelectStatement {
        SelectStatement {
            projection: Projection::Star,
            from: vec![table],
            joins: Vec::new(),
            predicates: Vec::new(),
            distinct: false,
            limit: None,
        }
    }

    /// Number of joined tables.
    pub fn table_count(&self) -> usize {
        self.from.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn compare_op_eval() {
        assert!(CompareOp::Eq.eval(Ordering::Equal));
        assert!(CompareOp::Ne.eval(Ordering::Less));
        assert!(CompareOp::Le.eval(Ordering::Equal));
        assert!(CompareOp::Le.eval(Ordering::Less));
        assert!(!CompareOp::Gt.eval(Ordering::Equal));
        assert!(CompareOp::Ge.eval(Ordering::Greater));
        assert!(CompareOp::Lt.eval(Ordering::Less));
    }

    #[test]
    fn predicate_attr_access() {
        let p = Predicate::Contains {
            attr: AttrId(3),
            keyword: "x".into(),
        };
        assert_eq!(p.attr(), AttrId(3));
    }
}
