//! Text tokenization for full-text indexing and keyword queries.
//!
//! The tokenizer is deliberately shared between the index side and the query
//! side so that a keyword matches the tokens produced at indexing time.
//! Pipeline: lowercase → split on non-alphanumerics → drop stopwords →
//! light suffix stemming (plural/gerund trimming, enough for English-ish
//! synthetic corpora without a full Porter stemmer).

/// English stopwords dropped by the tokenizer (kept small on purpose: keyword
/// queries are short and over-aggressive stopping hurts recall).
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "is", "it", "of", "on",
    "or", "the", "to", "with",
];

/// Whether a token is a stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

/// Light stemming: strips a few common English suffixes, then canonicalizes
/// a trailing "ie" to "y" so that singular/plural pairs of -ie words agree
/// ("movie" and "movies" both stem to "movy", "city" and "cities" to
/// "city"). Never shrinks a token below three characters.
pub fn stem(token: &str) -> String {
    let mut t = token.to_string();
    stem_in_place(&mut t);
    t
}

/// [`stem`] on an owned buffer, in place — the hot-path form: no allocation
/// beyond the buffer the caller already holds. The suffix rules operate on
/// byte lengths; every matched suffix is ASCII, so truncation always lands
/// on a character boundary.
pub fn stem_in_place(t: &mut String) {
    let n = t.len();
    if n >= 5 && t.ends_with("sses") {
        t.truncate(n - 2);
    } else if n >= 4 && t.ends_with("ies") {
        t.truncate(n - 3);
        t.push('y');
    } else if t.ends_with("ss") {
        // keep: "class", "press"
    } else if n >= 4 && t.ends_with('s') {
        t.truncate(n - 1);
    } else if n >= 6 && t.ends_with("ing") {
        t.truncate(n - 3);
    } else if n >= 5 && t.ends_with("ed") {
        t.truncate(n - 2);
    }
    let n = t.len();
    if n >= 4 && t.ends_with("ie") {
        t.truncate(n - 2);
        t.push('y');
    }
}

/// Tokenize text into normalized index tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_with(text, |t| out.push(t.to_string()));
    out
}

/// Tokenize without allocating one `String` per token: each normalized
/// token is produced in a single reused buffer and handed to `f` as a
/// borrowed slice. This is the allocation-lean core [`tokenize`] wraps; the
/// two produce identical token sequences (pinned by a property test).
///
/// ASCII characters take a branch-free lowercase fast path; anything else
/// falls back to the full Unicode lowercasing the old tokenizer used.
pub fn tokenize_with(text: &str, mut f: impl FnMut(&str)) {
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            if ch.is_ascii() {
                cur.push(ch.to_ascii_lowercase());
            } else {
                cur.extend(ch.to_lowercase());
            }
        } else if !cur.is_empty() {
            emit_token(&mut cur, &mut f);
        }
    }
    if !cur.is_empty() {
        emit_token(&mut cur, &mut f);
    }
}

fn emit_token(cur: &mut String, f: &mut impl FnMut(&str)) {
    if !is_stopword(cur) {
        stem_in_place(cur);
        f(cur);
    }
    cur.clear();
}

/// Normalize a single keyword from a user query through the same pipeline.
/// Returns `None` when the keyword normalizes away (stopword / empty).
pub fn normalize_keyword(raw: &str) -> Option<String> {
    let toks = tokenize(raw);
    if toks.len() == 1 {
        return Some(toks.into_iter().next().expect("len checked"));
    }
    // Multi-token phrase keywords are joined with a space: phrase matching
    // is handled by the index as a conjunction.
    if toks.is_empty() {
        None
    } else {
        Some(toks.join(" "))
    }
}

/// Character trigrams of a normalized token, used by similarity matching in
/// the wrapper (keyword ↔ schema-term similarity).
pub fn trigrams(token: &str) -> Vec<String> {
    let padded: Vec<char> = format!("  {token} ").chars().collect();
    padded.windows(3).map(|w| w.iter().collect()).collect()
}

/// Jaccard similarity of trigram sets; 1.0 for identical strings.
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let ta = trigrams(a);
    let tb = trigrams(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let sa: std::collections::HashSet<&String> = ta.iter().collect();
    let sb: std::collections::HashSet<&String> = tb.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Levenshtein edit distance (iterative two-row DP).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized edit similarity in [0, 1].
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_and_stems() {
        assert_eq!(tokenize("The Lord of the Rings"), vec!["lord", "ring"]);
        assert_eq!(tokenize("running dogs"), vec!["runn", "dog"]);
        assert_eq!(tokenize("  "), Vec::<String>::new());
    }

    #[test]
    fn stem_preserves_short_tokens() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("cities"), "city");
        assert_eq!(stem("class"), "class");
    }

    #[test]
    fn stopwords_dropped() {
        assert!(is_stopword("the"));
        assert!(!is_stopword("movie"));
        assert_eq!(tokenize("of and or"), Vec::<String>::new());
    }

    #[test]
    fn singular_plural_costem() {
        // The whole point of the "ie"->"y" canonicalization: both forms of
        // -ie words reach the same token.
        assert_eq!(stem("movie"), stem("movies"));
        assert_eq!(stem("city"), stem("cities"));
        assert_eq!(stem("country"), stem("countries"));
        assert_eq!(stem("actor"), stem("actors"));
    }

    #[test]
    fn keyword_normalization() {
        assert_eq!(normalize_keyword("Movies"), Some("movy".to_string()));
        assert_eq!(normalize_keyword("the"), None);
        assert_eq!(normalize_keyword("New York"), Some("new york".to_string()));
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert!(edit_similarity("director", "directors") > 0.85);
    }

    #[test]
    fn trigram_similarity_ranges() {
        assert_eq!(trigram_similarity("actor", "actor"), 1.0);
        let s = trigram_similarity("actor", "actress");
        assert!(s > 0.0 && s < 1.0);
        assert_eq!(trigram_similarity("", "abc"), 0.0);
    }

    #[test]
    fn unicode_safe() {
        // Multi-byte characters must not panic the tokenizer or distance.
        assert_eq!(edit_distance("café", "cafe"), 1);
        assert_eq!(tokenize("Änder-ung"), vec!["änder", "ung"]);
    }
}
