//! Token interning: dense `u32` ids for index tokens.
//!
//! The inverted index stores one posting table per *token id* instead of
//! hashing full `String` tokens at every probe. Ids are assigned in first-
//! appearance order, which is deterministic for a deterministic load order;
//! nothing downstream depends on the numbering — index equality compares
//! token *strings* (see `AttributeIndex`'s `PartialEq`).

use std::collections::HashMap;

/// Interns token strings to dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct TokenInterner {
    map: HashMap<String, u32>,
    tokens: Vec<String>,
}

impl TokenInterner {
    /// Empty interner.
    pub fn new() -> TokenInterner {
        TokenInterner::default()
    }

    /// Id of `token`, assigning the next dense id on first sight.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.map.get(token) {
            return id;
        }
        let id = u32::try_from(self.tokens.len()).expect("token vocabulary exceeds u32");
        self.map.insert(token.to_string(), id);
        self.tokens.push(token.to_string());
        id
    }

    /// Id of `token`, if it has ever been interned.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.map.get(token).copied()
    }

    /// The token string of an id.
    pub fn resolve(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Number of interned tokens (dense id upper bound).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether no token has been interned.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i = TokenInterner::new();
        assert!(i.is_empty());
        let a = i.intern("wind");
        let b = i.intern("gone");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(i.intern("wind"), a, "re-interning returns the same id");
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "wind");
        assert_eq!(i.get("gone"), Some(b));
        assert_eq!(i.get("missing"), None);
    }
}
