//! Per-attribute full-text inverted indexes.
//!
//! The paper's forward module computes HMM emission probabilities "for each
//! keyword and for each database attribute by applying the search function
//! over full text indexes provided by the DBMS", treating the returned score
//! as a probability after normalizing with a per-attribute coefficient
//! computed in the setup phase. This module provides exactly that search
//! function: a BM25-lite relevance score per `(keyword, attribute)` plus the
//! posting lists needed to fetch matching rows.

use std::collections::{HashMap, HashSet};

use crate::index::tokenizer::{normalize_keyword, tokenize};
use crate::row::RowId;

/// One posting: a row and the term frequency of the token within the row's
/// attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Matching row.
    pub row: RowId,
    /// Occurrences of the token in the attribute value.
    pub tf: u32,
}

/// Inverted index over a single attribute's values.
///
/// Maintained *incrementally*: [`AttributeIndex::add`] and
/// [`AttributeIndex::remove`] are exact inverses, and any interleaving of
/// them leaves the index bit-identical to one rebuilt from scratch over the
/// surviving values (posting lists are kept sorted by row id, and the
/// doc-count / total-length bookkeeping is symmetric). Equality compares
/// the full posting structure, so tests can assert that identity directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributeIndex {
    /// token -> postings sorted by row id.
    postings: HashMap<String, Vec<Posting>>,
    /// Number of indexed (non-null) values.
    doc_count: u64,
    /// Sum of token counts over all indexed values.
    total_len: u64,
}

impl AttributeIndex {
    /// Empty index.
    pub fn new() -> AttributeIndex {
        AttributeIndex::default()
    }

    /// Index one attribute value of `row`.
    pub fn add(&mut self, row: RowId, text: &str) {
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return;
        }
        self.doc_count += 1;
        self.total_len += tokens.len() as u64;
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in tokens {
            *tf.entry(t).or_insert(0) += 1;
        }
        for (tok, count) in tf {
            let list = self.postings.entry(tok).or_default();
            // Keep lists sorted by row id. Bulk loads append (ascending
            // ids); re-adds after deletes land mid-list, exactly where a
            // full rebuild would have put them.
            let at = list.partition_point(|p| p.row < row);
            list.insert(at, Posting { row, tf: count });
        }
    }

    /// Un-index one attribute value of `row`: the exact inverse of
    /// [`AttributeIndex::add`] with the same arguments. Pass the value that
    /// was indexed (the caller keeps the row, so it has it).
    pub fn remove(&mut self, row: RowId, text: &str) {
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return;
        }
        self.doc_count -= 1;
        self.total_len -= tokens.len() as u64;
        let mut seen: HashSet<&str> = HashSet::new();
        for t in &tokens {
            if !seen.insert(t.as_str()) {
                continue;
            }
            let Some(list) = self.postings.get_mut(t.as_str()) else {
                continue;
            };
            if let Ok(at) = list.binary_search_by(|p| p.row.cmp(&row)) {
                list.remove(at);
            }
            if list.is_empty() {
                self.postings.remove(t.as_str());
            }
        }
    }

    /// Number of indexed values.
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Number of distinct tokens.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Average indexed value length in tokens.
    pub fn avg_len(&self) -> f64 {
        if self.doc_count == 0 {
            0.0
        } else {
            self.total_len as f64 / self.doc_count as f64
        }
    }

    /// Posting list for a single *normalized* token.
    pub fn postings(&self, token: &str) -> &[Posting] {
        self.postings
            .get(token)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// BM25-lite score of a (possibly multi-token phrase) keyword against
    /// this attribute: the maximum per-row score, i.e. "how well does the
    /// best value of this attribute match the keyword".
    ///
    /// Phrases are scored conjunctively: a row must contain every token.
    pub fn score(&self, keyword: &str) -> f64 {
        self.search(keyword, 1)
            .first()
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// Top-`limit` rows matching the keyword, scored, best first.
    pub fn search(&self, keyword: &str, limit: usize) -> Vec<(RowId, f64)> {
        let Some(normalized) = normalize_keyword(keyword) else {
            return Vec::new();
        };
        let tokens: Vec<&str> = normalized.split(' ').collect();
        let mut acc: HashMap<RowId, (usize, f64)> = HashMap::new();
        for tok in &tokens {
            let plist = self.postings(tok);
            if plist.is_empty() {
                return Vec::new(); // conjunctive phrase semantics
            }
            let idf = self.idf(plist.len() as u64);
            for p in plist {
                let tf_part = bm25_tf(p.tf);
                let e = acc.entry(p.row).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += idf * tf_part;
            }
        }
        let need = tokens.len();
        let mut hits: Vec<(RowId, f64)> = acc
            .into_iter()
            .filter(|(_, (n, _))| *n == need)
            .map(|(r, (_, s))| (r, s))
            .collect();
        hits.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        hits.truncate(limit);
        hits
    }

    /// Document frequency of a normalized token.
    pub fn doc_freq(&self, token: &str) -> u64 {
        self.postings(token).len() as u64
    }

    fn idf(&self, df: u64) -> f64 {
        // BM25 idf with +1 smoothing so every match scores positively.
        let n = self.doc_count.max(1) as f64;
        ((n - df as f64 + 0.5) / (df as f64 + 0.5) + 1.0).ln()
    }

    /// The setup-phase normalization coefficient: the maximum achievable
    /// single-token score on this attribute. Scores divided by this fall in
    /// [0, 1] and can be treated as probabilities by the HMM emission model.
    pub fn normalization_coefficient(&self) -> f64 {
        // Max idf occurs for df=1; max tf part is the bm25 asymptote.
        let max_idf = self.idf(1);
        max_idf * bm25_tf(u32::MAX)
    }
}

/// BM25 term-frequency saturation with k1 = 1.2 (no length normalization:
/// attribute values are short and length effects washed out in testing).
fn bm25_tf(tf: u32) -> f64 {
    let tf = tf as f64;
    tf * 2.2 / (tf + 1.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(values: &[&str]) -> AttributeIndex {
        let mut ix = AttributeIndex::new();
        for (i, v) in values.iter().enumerate() {
            ix.add(RowId(i as u64), v);
        }
        ix
    }

    #[test]
    fn exact_match_scores_highest() {
        let ix = index(&["Gone with the Wind", "The Wind Rises", "Casablanca"]);
        let hits = ix.search("wind", 10);
        assert_eq!(hits.len(), 2);
        // Both contain "wind" once; scores equal, stable by row id.
        assert_eq!(hits[0].0, RowId(0));
        assert!(ix.score("casablanca") > ix.score("wind"));
    }

    #[test]
    fn phrase_is_conjunctive() {
        let ix = index(&["Gone with the Wind", "The Wind Rises"]);
        let hits = ix.search("gone wind", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, RowId(0));
        assert!(ix.search("gone rises", 10).is_empty());
    }

    #[test]
    fn missing_token_scores_zero() {
        let ix = index(&["Casablanca"]);
        assert_eq!(ix.score("wind"), 0.0);
        assert!(ix.search("", 5).is_empty());
    }

    #[test]
    fn normalization_bounds_scores() {
        let ix = index(&["alpha beta", "alpha", "gamma gamma gamma"]);
        let coeff = ix.normalization_coefficient();
        for kw in ["alpha", "beta", "gamma", "alpha beta"] {
            // Single-token scores are <= coeff; phrases may exceed single-token
            // normalization but stay within token_count * coeff.
            let toks = kw.split(' ').count() as f64;
            assert!(ix.score(kw) <= coeff * toks + 1e-12, "kw={kw}");
        }
        assert!(coeff > 0.0);
    }

    #[test]
    fn tf_saturates() {
        assert!(bm25_tf(100) > bm25_tf(2));
        assert!(bm25_tf(u32::MAX) <= 2.2);
    }

    #[test]
    fn remove_is_the_exact_inverse_of_add() {
        let values = ["Gone with the Wind", "The Wind Rises", "Casablanca"];
        let before = index(&values);
        let mut ix = before.clone();
        ix.add(RowId(9), "Wind of Change");
        ix.remove(RowId(9), "Wind of Change");
        assert_eq!(ix, before, "add then remove restores the index bitwise");
        // Removing a middle row then re-adding it matches a fresh rebuild.
        ix.remove(RowId(1), values[1]);
        ix.add(RowId(1), values[1]);
        assert_eq!(ix, before, "remove then re-add is order-stable");
        // Empty/stopword-only values were never indexed; removal is a no-op.
        ix.remove(RowId(5), "");
        ix.remove(RowId(5), "the");
        assert_eq!(ix, before);
    }

    #[test]
    fn interleaved_maintenance_matches_rebuild() {
        let mut live: Vec<(u64, &str)> = Vec::new();
        let mut ix = AttributeIndex::new();
        let script: &[(char, u64, &str)] = &[
            ('a', 0, "alpha beta"),
            ('a', 1, "beta gamma"),
            ('a', 2, "alpha alpha"),
            ('d', 1, "beta gamma"),
            ('a', 3, "delta"),
            ('d', 0, "alpha beta"),
            ('a', 4, "beta beta gamma"),
            ('d', 3, "delta"),
        ];
        for &(op, rid, text) in script {
            match op {
                'a' => {
                    ix.add(RowId(rid), text);
                    live.push((rid, text));
                }
                _ => {
                    ix.remove(RowId(rid), text);
                    live.retain(|(r, _)| *r != rid);
                }
            }
            let mut rebuilt = AttributeIndex::new();
            live.sort_by_key(|(r, _)| *r);
            for &(r, t) in &live {
                rebuilt.add(RowId(r), t);
            }
            assert_eq!(ix, rebuilt, "divergence after op {op} r{rid}");
        }
    }

    #[test]
    fn doc_stats() {
        let ix = index(&["a b c x y", "x"]);
        // "a" is a stopword, so first doc indexes fewer tokens than written.
        assert_eq!(ix.doc_count(), 2);
        assert!(ix.avg_len() > 0.0);
        assert_eq!(ix.doc_freq("x"), 2);
        assert_eq!(ix.doc_freq("zzz"), 0);
    }
}
