//! Per-attribute full-text inverted indexes.
//!
//! The paper's forward module computes HMM emission probabilities "for each
//! keyword and for each database attribute by applying the search function
//! over full text indexes provided by the DBMS", treating the returned score
//! as a probability after normalizing with a per-attribute coefficient
//! computed in the setup phase. This module provides exactly that search
//! function: a BM25-lite relevance score per `(keyword, attribute)` plus the
//! posting lists needed to fetch matching rows.
//!
//! # Hot-path layout
//!
//! Tokens are interned into dense `u32` ids (one [`TokenInterner`] per
//! attribute); posting lists live in an id-indexed contiguous table, so a
//! probe is one hash lookup on the token string and then pure array access.
//! Each list tracks the maximum term frequency it contains, which makes the
//! dominant probe — "best single-token score of this attribute" — O(1)
//! instead of a scan of the whole posting list: BM25's tf saturation is
//! monotonic, so the best row is always one with the maximal tf, and
//! `idf(df) * tf_part(max_tf)` is the *same `f64` expression* the scan
//! would have maximized (bit-identical, pinned by a property test against
//! [`AttributeIndex::score_reference`]).
//!
//! Bulk loads go through [`AttributeIndex::add_bulk`] +
//! [`AttributeIndex::finish_build`]: postings are appended and each list is
//! sorted once at the end, replacing the per-posting mid-list insert of the
//! incremental path. The two paths build bit-identical indexes.

use std::collections::HashMap;

use crate::index::interner::TokenInterner;
use crate::index::tokenizer::{tokenize, tokenize_with};
use crate::row::RowId;

/// One posting: a row and the term frequency of the token within the row's
/// attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Matching row.
    pub row: RowId,
    /// Occurrences of the token in the attribute value.
    pub tf: u32,
}

/// One token's postings plus the maximum term frequency among them (0 when
/// the list is empty). `max_tf` is maintained incrementally and lets the
/// single-token score probe skip the list scan entirely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct PostingList {
    /// Postings sorted by row id.
    rows: Vec<Posting>,
    /// `max(rows[i].tf)`, 0 when empty.
    max_tf: u32,
}

/// A keyword prepared for repeated index probes: the normalized token
/// sequence, computed **once** per keyword instead of once per
/// `(keyword, attribute)` pair. Build it with [`KeywordProbe::new`] and
/// hand it to [`AttributeIndex::score_probe`] /
/// [`AttributeIndex::search_probe`]; the result is bit-identical to the
/// string-keyed entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordProbe {
    tokens: Vec<String>,
}

impl KeywordProbe {
    /// Normalize a keyword into probe tokens through the same pipeline the
    /// index applies at query time. `None` when the keyword normalizes away
    /// (stopwords, punctuation) — exactly the inputs for which every score
    /// probe returns 0.
    pub fn new(keyword: &str) -> Option<KeywordProbe> {
        let tokens = tokenize(keyword);
        if tokens.is_empty() {
            None
        } else {
            Some(KeywordProbe { tokens })
        }
    }

    /// The normalized probe tokens.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }
}

/// Inverted index over a single attribute's values.
///
/// Maintained *incrementally*: [`AttributeIndex::add`] and
/// [`AttributeIndex::remove`] are exact inverses, and any interleaving of
/// them leaves the index bit-identical to one rebuilt from scratch over the
/// surviving values (posting lists are kept sorted by row id, and the
/// doc-count / total-length bookkeeping is symmetric). Equality compares the
/// full posting structure *by token string* — interner id assignment order
/// is an implementation detail that legitimately differs between an
/// incrementally maintained index and a rebuilt one — so tests can assert
/// that identity directly.
#[derive(Debug, Clone, Default)]
pub struct AttributeIndex {
    /// Token string → dense id.
    interner: TokenInterner,
    /// Token id → postings (indexes into this table never shrink; a fully
    /// drained token keeps its id with an empty list, which equality and
    /// the vocabulary count treat as absent).
    lists: Vec<PostingList>,
    /// Number of indexed (non-null) values.
    doc_count: u64,
    /// Sum of token counts over all indexed values.
    total_len: u64,
    /// True between [`AttributeIndex::add_bulk`] and
    /// [`AttributeIndex::finish_build`]: lists may be unsorted.
    bulk_dirty: bool,
    /// Reusable per-call buffer of the current row's token ids.
    scratch: Vec<u32>,
}

impl AttributeIndex {
    /// Empty index.
    pub fn new() -> AttributeIndex {
        AttributeIndex::default()
    }

    /// Tokenize `text` into `self.scratch` as interned ids (sorted), and
    /// return the raw token count. The scratch holds one id per token
    /// occurrence, so equal ids appear as runs after sorting.
    fn collect_ids(&mut self, text: &str) -> usize {
        let interner = &mut self.interner;
        let scratch = &mut self.scratch;
        scratch.clear();
        tokenize_with(text, |tok| scratch.push(interner.intern(tok)));
        let count = scratch.len();
        scratch.sort_unstable();
        count
    }

    fn list_mut(&mut self, id: u32) -> &mut PostingList {
        let at = id as usize;
        if at >= self.lists.len() {
            self.lists.resize_with(at + 1, PostingList::default);
        }
        &mut self.lists[at]
    }

    /// Index one attribute value of `row`.
    pub fn add(&mut self, row: RowId, text: &str) {
        debug_assert!(!self.bulk_dirty, "add during an unfinished bulk build");
        let count = self.collect_ids(text);
        if count == 0 {
            return;
        }
        self.doc_count += 1;
        self.total_len += count as u64;
        let mut i = 0;
        let ids = std::mem::take(&mut self.scratch);
        while i < ids.len() {
            let id = ids[i];
            let mut tf = 0u32;
            while i < ids.len() && ids[i] == id {
                tf += 1;
                i += 1;
            }
            let list = self.list_mut(id);
            // Keep lists sorted by row id. Re-adds after deletes land
            // mid-list, exactly where a full rebuild would have put them.
            let at = list.rows.partition_point(|p| p.row < row);
            list.rows.insert(at, Posting { row, tf });
            list.max_tf = list.max_tf.max(tf);
        }
        self.scratch = ids;
    }

    /// Index one attribute value of `row` during a bulk load: postings are
    /// *appended*, deferring the sort to one [`AttributeIndex::finish_build`]
    /// per load instead of a mid-list insert per posting. Queries are
    /// invalid until `finish_build` runs; the finished index is
    /// bit-identical to one built with [`AttributeIndex::add`].
    pub fn add_bulk(&mut self, row: RowId, text: &str) {
        let count = self.collect_ids(text);
        if count == 0 {
            return;
        }
        self.bulk_dirty = true;
        self.doc_count += 1;
        self.total_len += count as u64;
        let mut i = 0;
        let ids = std::mem::take(&mut self.scratch);
        while i < ids.len() {
            let id = ids[i];
            let mut tf = 0u32;
            while i < ids.len() && ids[i] == id {
                tf += 1;
                i += 1;
            }
            let list = self.list_mut(id);
            list.rows.push(Posting { row, tf });
            list.max_tf = list.max_tf.max(tf);
        }
        self.scratch = ids;
    }

    /// Sort every posting list by row id, closing a bulk load. Idempotent;
    /// a no-op when no [`AttributeIndex::add_bulk`] ran since the last call.
    pub fn finish_build(&mut self) {
        if !self.bulk_dirty {
            return;
        }
        for list in &mut self.lists {
            // Row ids are unique within a list (one posting per row), so
            // the sort order is total and deterministic.
            list.rows.sort_unstable_by_key(|p| p.row);
        }
        self.bulk_dirty = false;
    }

    /// Un-index one attribute value of `row`: the exact inverse of
    /// [`AttributeIndex::add`] with the same arguments. Pass the value that
    /// was indexed (the caller keeps the row, so it has it).
    pub fn remove(&mut self, row: RowId, text: &str) {
        debug_assert!(!self.bulk_dirty, "remove during an unfinished bulk build");
        // Look tokens up without interning: removing text containing a
        // never-indexed token must not grow the interner. Unknown tokens
        // still count toward the length bookkeeping (the documented
        // contract is that `text` is the value that was added, so this
        // only matters for mismatched calls — which stay symmetric with
        // the old behavior).
        let interner = &self.interner;
        let scratch = &mut self.scratch;
        scratch.clear();
        let mut count = 0usize;
        tokenize_with(text, |tok| {
            count += 1;
            if let Some(id) = interner.get(tok) {
                scratch.push(id);
            }
        });
        if count == 0 {
            return;
        }
        scratch.sort_unstable();
        self.doc_count -= 1;
        self.total_len -= count as u64;
        let ids = std::mem::take(&mut self.scratch);
        let mut prev: Option<u32> = None;
        for &id in &ids {
            if prev == Some(id) {
                continue; // distinct tokens only
            }
            prev = Some(id);
            // A known token may still have no list (drained earlier).
            let Some(list) = self.lists.get_mut(id as usize) else {
                continue;
            };
            if let Ok(at) = list.rows.binary_search_by(|p| p.row.cmp(&row)) {
                let gone = list.rows.remove(at);
                if gone.tf == list.max_tf {
                    // The maximum may have left; recompute it exactly as a
                    // rebuild over the surviving postings would.
                    list.max_tf = list.rows.iter().map(|p| p.tf).max().unwrap_or(0);
                }
            }
        }
        self.scratch = ids;
        self.maybe_compact();
    }

    /// Reclaim interner and posting-table memory once drained tokens
    /// outnumber live ones: rebuild both with only the tokens that still
    /// have postings, in (old-)id order so the result is deterministic.
    /// The old `HashMap<String, _>` index dropped a token's entry the
    /// moment its list emptied; with dense ids the reclaim is batched
    /// here instead, keeping memory proportional to *live* vocabulary
    /// under delete-heavy churn. Purely an allocation-level operation:
    /// every query answers identically before and after (equality is by
    /// token string, and empty lists are treated as absent everywhere).
    fn maybe_compact(&mut self) {
        const COMPACT_FLOOR: usize = 64;
        let live = self.lists.iter().filter(|l| !l.rows.is_empty()).count();
        let dead = self.lists.len() - live;
        if dead < COMPACT_FLOOR || dead <= live {
            return;
        }
        let mut interner = TokenInterner::new();
        let mut lists = Vec::with_capacity(live);
        for (id, list) in std::mem::take(&mut self.lists).into_iter().enumerate() {
            if list.rows.is_empty() {
                continue;
            }
            let new_id = interner.intern(self.interner.resolve(id as u32));
            debug_assert_eq!(new_id as usize, lists.len());
            lists.push(list);
        }
        self.interner = interner;
        self.lists = lists;
    }

    /// Number of indexed values.
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Number of distinct tokens with live postings.
    pub fn vocabulary_size(&self) -> usize {
        self.lists.iter().filter(|l| !l.rows.is_empty()).count()
    }

    /// Average indexed value length in tokens.
    pub fn avg_len(&self) -> f64 {
        if self.doc_count == 0 {
            0.0
        } else {
            self.total_len as f64 / self.doc_count as f64
        }
    }

    /// Posting list for a single *normalized* token.
    pub fn postings(&self, token: &str) -> &[Posting] {
        debug_assert!(!self.bulk_dirty, "query during an unfinished bulk build");
        // An interned id may have no list yet: `remove` interns the tokens
        // of text that was never indexed without allocating lists for them.
        self.interner
            .get(token)
            .and_then(|id| self.lists.get(id as usize))
            .map(|l| l.rows.as_slice())
            .unwrap_or(&[])
    }

    /// BM25-lite score of a (possibly multi-token phrase) keyword against
    /// this attribute: the maximum per-row score, i.e. "how well does the
    /// best value of this attribute match the keyword".
    ///
    /// Phrases are scored conjunctively: a row must contain every token.
    pub fn score(&self, keyword: &str) -> f64 {
        match KeywordProbe::new(keyword) {
            Some(probe) => self.score_probe(&probe),
            None => 0.0,
        }
    }

    /// [`AttributeIndex::score`] for a keyword prepared once with
    /// [`KeywordProbe::new`]. Single-token keywords — the common case — are
    /// answered in O(1) from the list's `max_tf`; phrases fall back to the
    /// conjunctive accumulation. Bit-identical to `score`.
    pub fn score_probe(&self, probe: &KeywordProbe) -> f64 {
        debug_assert!(!self.bulk_dirty, "query during an unfinished bulk build");
        if let [token] = probe.tokens.as_slice() {
            // `get` both ways: the id may exist without a list (see
            // `postings`).
            let Some(list) = self
                .interner
                .get(token)
                .and_then(|id| self.lists.get(id as usize))
            else {
                return 0.0;
            };
            if list.rows.is_empty() {
                return 0.0;
            }
            // The one scored term of the scan path, evaluated at the row
            // that maximizes it: same idf, same tf saturation, same product.
            return self.idf(list.rows.len() as u64) * bm25_tf(list.max_tf);
        }
        self.search_tokens(&probe.tokens, 1)
            .first()
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// The pre-interning scoring path: normalize, accumulate over every
    /// posting of every token, sort, take the best row. Kept callable as
    /// the *reference* the O(1) probe is verified against (property tests)
    /// and as the baseline of the committed pipeline benchmark.
    pub fn score_reference(&self, keyword: &str) -> f64 {
        self.search(keyword, 1)
            .first()
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// Top-`limit` rows matching the keyword, scored, best first.
    pub fn search(&self, keyword: &str, limit: usize) -> Vec<(RowId, f64)> {
        match KeywordProbe::new(keyword) {
            Some(probe) => self.search_tokens(&probe.tokens, limit),
            None => Vec::new(),
        }
    }

    /// [`AttributeIndex::search`] for a prepared keyword.
    pub fn search_probe(&self, probe: &KeywordProbe, limit: usize) -> Vec<(RowId, f64)> {
        self.search_tokens(&probe.tokens, limit)
    }

    fn search_tokens(&self, tokens: &[String], limit: usize) -> Vec<(RowId, f64)> {
        debug_assert!(!self.bulk_dirty, "query during an unfinished bulk build");
        let mut acc: HashMap<RowId, (usize, f64)> = HashMap::new();
        for tok in tokens {
            let plist = self.postings(tok);
            if plist.is_empty() {
                return Vec::new(); // conjunctive phrase semantics
            }
            let idf = self.idf(plist.len() as u64);
            for p in plist {
                let tf_part = bm25_tf(p.tf);
                let e = acc.entry(p.row).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += idf * tf_part;
            }
        }
        let need = tokens.len();
        let mut hits: Vec<(RowId, f64)> = acc
            .into_iter()
            .filter(|(_, (n, _))| *n == need)
            .map(|(r, (_, s))| (r, s))
            .collect();
        hits.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        hits.truncate(limit);
        hits
    }

    /// Document frequency of a normalized token.
    pub fn doc_freq(&self, token: &str) -> u64 {
        self.postings(token).len() as u64
    }

    fn idf(&self, df: u64) -> f64 {
        bm25_idf(self.doc_count, df)
    }

    /// The setup-phase normalization coefficient: the maximum achievable
    /// single-token score on this attribute. Scores divided by this fall in
    /// [0, 1] and can be treated as probabilities by the HMM emission model.
    pub fn normalization_coefficient(&self) -> f64 {
        // Max idf occurs for df=1; max tf part is the bm25 asymptote.
        let max_idf = self.idf(1);
        max_idf * bm25_tf(u32::MAX)
    }

    /// This index's summable document statistics (see [`DocPartial`]).
    pub fn doc_partial(&self) -> DocPartial {
        DocPartial {
            doc_count: self.doc_count,
            total_len: self.total_len,
        }
    }

    /// This index's mergeable per-token state for one *normalized* token
    /// (see [`TokenPartial`]). All-zero when the token is absent.
    pub fn token_partial(&self, token: &str) -> TokenPartial {
        debug_assert!(!self.bulk_dirty, "query during an unfinished bulk build");
        match self
            .interner
            .get(token)
            .and_then(|id| self.lists.get(id as usize))
        {
            Some(list) => TokenPartial {
                df: list.rows.len() as u64,
                max_tf: list.max_tf,
            },
            None => TokenPartial::default(),
        }
    }

    /// Every token with live postings, sorted. The cross-partition
    /// vocabulary of a sharded attribute is the union of these.
    pub fn live_tokens(&self) -> Vec<&str> {
        let mut toks: Vec<&str> = self
            .lists
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.rows.is_empty())
            .map(|(id, _)| self.interner.resolve(id as u32))
            .collect();
        toks.sort_unstable();
        toks
    }

    /// Best conjunctive per-row sum `Σ idfs[i] * tf_part(tf_i)` over this
    /// index's rows, with the idf of each token *injected* by the caller
    /// instead of derived from this index's own doc count.
    ///
    /// This is the scatter half of phrase scoring across partitions: each
    /// partition runs the same accumulation as [`AttributeIndex::score_probe`]
    /// but under the *merged* idfs (see [`ScoreAccumulator::idfs`]), and the
    /// gather step takes the max — bit-identical to the unpartitioned scan
    /// because per-row sums only involve that row's own postings, which live
    /// wholly in one partition. `None` when no local row contains every
    /// token (local absence is not global absence; the caller has already
    /// checked global dfs before scattering).
    pub fn best_conjunctive_score(&self, tokens: &[String], idfs: &[f64]) -> Option<f64> {
        debug_assert!(!self.bulk_dirty, "query during an unfinished bulk build");
        debug_assert_eq!(tokens.len(), idfs.len());
        let mut acc: HashMap<RowId, (usize, f64)> = HashMap::new();
        for (tok, idf) in tokens.iter().zip(idfs) {
            let plist = self.postings(tok);
            if plist.is_empty() {
                return None; // conjunctive phrase semantics
            }
            for p in plist {
                let e = acc.entry(p.row).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += idf * bm25_tf(p.tf);
            }
        }
        let need = tokens.len();
        acc.values()
            .filter(|(n, _)| *n == need)
            .map(|(_, s)| *s)
            .fold(None, |best, s| match best {
                Some(b) if b >= s => Some(b),
                _ => Some(s),
            })
    }
}

/// Summable document statistics of one attribute index: the inputs of the
/// idf and avg-length formulas. Partitions hold disjoint rows, so the
/// global statistics are exact field-wise sums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DocPartial {
    /// Number of indexed (non-null, non-empty) values.
    pub doc_count: u64,
    /// Sum of token counts over all indexed values.
    pub total_len: u64,
}

impl DocPartial {
    /// Fold another partition's statistics into this one.
    pub fn merge(&mut self, other: DocPartial) {
        self.doc_count += other.doc_count;
        self.total_len += other.total_len;
    }
}

/// Mergeable per-token state: document frequency sums across disjoint
/// partitions; the maximum term frequency is a max.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenPartial {
    /// Rows containing the token.
    pub df: u64,
    /// Maximum term frequency among them (0 when absent).
    pub max_tf: u32,
}

impl TokenPartial {
    /// Fold another partition's state into this one.
    pub fn merge(&mut self, other: TokenPartial) {
        self.df += other.df;
        self.max_tf = self.max_tf.max(other.max_tf);
    }
}

/// Mergeable BM25 state for one `(attribute, probe)` pair across disjoint
/// row partitions.
///
/// The merge law that makes sharded scoring bit-identical to the unsharded
/// engine: every score formula is a function of *integers* (doc counts,
/// dfs, tfs) plus per-row tf sums. Integers merge exactly (sums and maxes),
/// and the accumulator evaluates the **same `f64` expressions** the
/// unsharded [`AttributeIndex`] would have, once, from the merged integers
/// — floating point is never itself summed across partitions.
#[derive(Debug, Clone)]
pub struct ScoreAccumulator {
    doc: DocPartial,
    tokens: Vec<TokenPartial>,
}

impl ScoreAccumulator {
    /// Accumulator for a probe with `token_count` tokens, all partials zero.
    pub fn new(token_count: usize) -> ScoreAccumulator {
        ScoreAccumulator {
            doc: DocPartial::default(),
            tokens: vec![TokenPartial::default(); token_count],
        }
    }

    /// Fold one partition's index state for `probe` into the accumulator.
    pub fn absorb(&mut self, index: &AttributeIndex, probe: &KeywordProbe) {
        debug_assert_eq!(self.tokens.len(), probe.tokens().len());
        self.doc.merge(index.doc_partial());
        for (slot, tok) in self.tokens.iter_mut().zip(probe.tokens()) {
            slot.merge(index.token_partial(tok));
        }
    }

    /// Fold another accumulator (over a further disjoint partition set).
    pub fn merge(&mut self, other: &ScoreAccumulator) {
        debug_assert_eq!(self.tokens.len(), other.tokens.len());
        self.doc.merge(other.doc);
        for (slot, t) in self.tokens.iter_mut().zip(&other.tokens) {
            slot.merge(*t);
        }
    }

    /// Merged document statistics.
    pub fn doc(&self) -> DocPartial {
        self.doc
    }

    /// Merged per-token partials, in probe token order.
    pub fn tokens(&self) -> &[TokenPartial] {
        &self.tokens
    }

    /// True when some probe token matches no row in any partition — the
    /// conjunctive phrase score is 0 and nothing needs scattering.
    pub fn any_token_absent(&self) -> bool {
        self.tokens.iter().any(|t| t.df == 0)
    }

    /// Global idf of each probe token under the merged doc count — the
    /// values to inject into [`AttributeIndex::best_conjunctive_score`].
    pub fn idfs(&self) -> Vec<f64> {
        self.tokens
            .iter()
            .map(|t| bm25_idf(self.doc.doc_count, t.df))
            .collect()
    }

    /// The O(1) single-token score under the merged statistics: same idf,
    /// same tf saturation, same product as
    /// [`AttributeIndex::score_probe`] on the unpartitioned index. 0 when
    /// the token is absent everywhere.
    pub fn single_token_raw(&self) -> f64 {
        debug_assert_eq!(self.tokens.len(), 1);
        let t = self.tokens[0];
        if t.df == 0 {
            0.0
        } else {
            bm25_idf(self.doc.doc_count, t.df) * bm25_tf(t.max_tf)
        }
    }

    /// [`AttributeIndex::normalization_coefficient`] under the merged doc
    /// count.
    pub fn normalization_coefficient(&self) -> f64 {
        bm25_idf(self.doc.doc_count, 1) * bm25_tf(u32::MAX)
    }
}

/// Equality by *content*: document statistics plus every token's postings
/// and maintained `max_tf`, matched by token string. Interner numbering is
/// excluded on purpose: an incrementally maintained index and a rebuilt one
/// assign ids in different orders yet index the same data.
impl PartialEq for AttributeIndex {
    fn eq(&self, other: &AttributeIndex) -> bool {
        if self.doc_count != other.doc_count || self.total_len != other.total_len {
            return false;
        }
        if self.vocabulary_size() != other.vocabulary_size() {
            return false;
        }
        for (id, list) in self.lists.iter().enumerate() {
            if list.rows.is_empty() {
                continue;
            }
            let token = self.interner.resolve(id as u32);
            let theirs = other.interner.get(token).map(|o| &other.lists[o as usize]);
            match theirs {
                Some(o) if o.rows == list.rows && o.max_tf == list.max_tf => {}
                _ => return false,
            }
        }
        true
    }
}

/// BM25 term-frequency saturation with k1 = 1.2 (no length normalization:
/// attribute values are short and length effects washed out in testing).
pub fn bm25_tf(tf: u32) -> f64 {
    let tf = tf as f64;
    tf * 2.2 / (tf + 1.2)
}

/// BM25 idf with +1 smoothing so every match scores positively. The one
/// idf expression of the whole engine: [`AttributeIndex`] and the sharded
/// [`ScoreAccumulator`] both evaluate it, which is what pins their scores
/// bit-identical.
pub fn bm25_idf(doc_count: u64, df: u64) -> f64 {
    let n = doc_count.max(1) as f64;
    ((n - df as f64 + 0.5) / (df as f64 + 0.5) + 1.0).ln()
}

/// Map a raw BM25 score into the [0, 1] emission domain using the
/// setup-phase normalization coefficient. The one normalization expression
/// shared by [`crate::Database::search_score`] and the sharded scatter path.
pub fn normalize_score(raw: f64, coeff: f64) -> f64 {
    if coeff <= 0.0 {
        0.0
    } else {
        (raw / coeff).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(values: &[&str]) -> AttributeIndex {
        let mut ix = AttributeIndex::new();
        for (i, v) in values.iter().enumerate() {
            ix.add(RowId(i as u64), v);
        }
        ix
    }

    #[test]
    fn exact_match_scores_highest() {
        let ix = index(&["Gone with the Wind", "The Wind Rises", "Casablanca"]);
        let hits = ix.search("wind", 10);
        assert_eq!(hits.len(), 2);
        // Both contain "wind" once; scores equal, stable by row id.
        assert_eq!(hits[0].0, RowId(0));
        assert!(ix.score("casablanca") > ix.score("wind"));
    }

    #[test]
    fn phrase_is_conjunctive() {
        let ix = index(&["Gone with the Wind", "The Wind Rises"]);
        let hits = ix.search("gone wind", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, RowId(0));
        assert!(ix.search("gone rises", 10).is_empty());
    }

    #[test]
    fn missing_token_scores_zero() {
        let ix = index(&["Casablanca"]);
        assert_eq!(ix.score("wind"), 0.0);
        assert!(ix.search("", 5).is_empty());
    }

    #[test]
    fn normalization_bounds_scores() {
        let ix = index(&["alpha beta", "alpha", "gamma gamma gamma"]);
        let coeff = ix.normalization_coefficient();
        for kw in ["alpha", "beta", "gamma", "alpha beta"] {
            // Single-token scores are <= coeff; phrases may exceed single-token
            // normalization but stay within token_count * coeff.
            let toks = kw.split(' ').count() as f64;
            assert!(ix.score(kw) <= coeff * toks + 1e-12, "kw={kw}");
        }
        assert!(coeff > 0.0);
    }

    #[test]
    fn tf_saturates() {
        assert!(bm25_tf(100) > bm25_tf(2));
        assert!(bm25_tf(u32::MAX) <= 2.2);
    }

    #[test]
    fn fast_probe_matches_reference_bitwise() {
        let ix = index(&[
            "Gone with the Wind",
            "wind wind wind",
            "The Wind Rises",
            "Casablanca",
            "wind of change",
        ]);
        for kw in ["wind", "casablanca", "gone wind", "rises", "zzz", "the"] {
            let fast = ix.score(kw);
            let reference = ix.score_reference(kw);
            assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "score mismatch for {kw}: {fast} vs {reference}"
            );
            if let Some(p) = KeywordProbe::new(kw) {
                assert_eq!(ix.score_probe(&p).to_bits(), reference.to_bits());
                assert_eq!(ix.search_probe(&p, 3), ix.search(kw, 3));
            }
        }
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let values = [
            "Gone with the Wind",
            "The Wind Rises",
            "Casablanca",
            "wind wind wind",
            "",
            "the of and", // stopwords only: never indexed
        ];
        let incremental = index(&values);
        let mut bulk = AttributeIndex::new();
        for (i, v) in values.iter().enumerate() {
            bulk.add_bulk(RowId(i as u64), v);
        }
        bulk.finish_build();
        assert_eq!(bulk, incremental, "bulk path diverges from incremental");
        // finish_build is idempotent, and out-of-order bulk rows sort.
        bulk.finish_build();
        assert_eq!(bulk, incremental);
        let mut reversed = AttributeIndex::new();
        for (i, v) in values.iter().enumerate().rev() {
            reversed.add_bulk(RowId(i as u64), v);
        }
        reversed.finish_build();
        assert_eq!(reversed, incremental, "bulk order must not matter");
    }

    #[test]
    fn remove_is_the_exact_inverse_of_add() {
        let values = ["Gone with the Wind", "The Wind Rises", "Casablanca"];
        let before = index(&values);
        let mut ix = before.clone();
        ix.add(RowId(9), "Wind of Change");
        ix.remove(RowId(9), "Wind of Change");
        assert_eq!(ix, before, "add then remove restores the index bitwise");
        // Removing a middle row then re-adding it matches a fresh rebuild.
        ix.remove(RowId(1), values[1]);
        ix.add(RowId(1), values[1]);
        assert_eq!(ix, before, "remove then re-add is order-stable");
        // Empty/stopword-only values were never indexed; removal is a no-op.
        ix.remove(RowId(5), "");
        ix.remove(RowId(5), "the");
        assert_eq!(ix, before);
    }

    #[test]
    fn remove_of_unindexed_text_does_not_poison_probes() {
        // `remove` interns the tokens of whatever text it is handed; a
        // token that was never indexed must keep probing as absent (this
        // used to panic with an out-of-bounds list index).
        let mut ix = index(&["Gone with the Wind"]);
        ix.add(RowId(5), "storm front");
        ix.remove(RowId(5), "storm front tempest");
        for kw in ["tempest", "storm", "storm tempest"] {
            assert_eq!(ix.postings(kw).len().min(1), ix.search(kw, 1).len());
            assert_eq!(
                ix.score(kw).to_bits(),
                ix.score_reference(kw).to_bits(),
                "probe vs reference for {kw}"
            );
        }
        assert_eq!(ix.postings("tempest"), &[]);
        assert_eq!(ix.score("tempest"), 0.0);
        assert_eq!(ix.doc_freq("tempest"), 0);
        assert!(ix.score("wind") > 0.0);
    }

    #[test]
    fn max_tf_tracks_removals() {
        let mut ix = AttributeIndex::new();
        ix.add(RowId(0), "wind");
        ix.add(RowId(1), "wind wind wind");
        let high = ix.score("wind");
        assert_eq!(high.to_bits(), ix.score_reference("wind").to_bits());
        ix.remove(RowId(1), "wind wind wind");
        // The max-tf row left; the O(1) probe must fall back to tf=1 and
        // still agree with the reference scan bitwise. (The raw score can
        // move either way: losing a document also shifts idf.)
        let after = ix.score("wind");
        assert_ne!(after.to_bits(), high.to_bits());
        assert_eq!(after.to_bits(), ix.score_reference("wind").to_bits());
    }

    #[test]
    fn interleaved_maintenance_matches_rebuild() {
        let mut live: Vec<(u64, &str)> = Vec::new();
        let mut ix = AttributeIndex::new();
        let script: &[(char, u64, &str)] = &[
            ('a', 0, "alpha beta"),
            ('a', 1, "beta gamma"),
            ('a', 2, "alpha alpha"),
            ('d', 1, "beta gamma"),
            ('a', 3, "delta"),
            ('d', 0, "alpha beta"),
            ('a', 4, "beta beta gamma"),
            ('d', 3, "delta"),
        ];
        for &(op, rid, text) in script {
            match op {
                'a' => {
                    ix.add(RowId(rid), text);
                    live.push((rid, text));
                }
                _ => {
                    ix.remove(RowId(rid), text);
                    live.retain(|(r, _)| *r != rid);
                }
            }
            let mut rebuilt = AttributeIndex::new();
            live.sort_by_key(|(r, _)| *r);
            for &(r, t) in &live {
                rebuilt.add(RowId(r), t);
            }
            assert_eq!(ix, rebuilt, "divergence after op {op} r{rid}");
        }
    }

    #[test]
    fn churn_compacts_dead_tokens() {
        // Delete-heavy churn over distinct values must not grow the
        // interner without bound: once drained tokens dominate, the index
        // compacts down to the live vocabulary, and every probe still
        // answers identically (including against a fresh rebuild).
        let mut ix = AttributeIndex::new();
        ix.add(RowId(0), "keeper alpha");
        for i in 0..600u64 {
            let text = format!("churn{i} transient{i}");
            ix.add(RowId(1000 + i), &text);
            ix.remove(RowId(1000 + i), &text);
        }
        assert!(
            ix.interner.len() < 100,
            "interner retained {} tokens after churn",
            ix.interner.len()
        );
        assert_eq!(ix.vocabulary_size(), 2);
        assert!(ix.score("keeper") > 0.0);
        assert_eq!(ix.score("churn5"), 0.0);
        assert_eq!(ix.postings("transient9"), &[]);
        let mut rebuilt = AttributeIndex::new();
        rebuilt.add(RowId(0), "keeper alpha");
        assert_eq!(ix, rebuilt);
        // Removing never-indexed text does not intern its tokens. (Two
        // tokens, matching the one remaining doc's length: the documented
        // contract is that removals mirror adds, so the bookkeeping here
        // stays in range even for this deliberately mismatched call.)
        let before = ix.interner.len();
        ix.remove(RowId(77), "phantom zzz");
        assert_eq!(ix.interner.len(), before);
    }

    /// Score a probe from per-partition accumulators the way the sharded
    /// engine does: merge integer partials, evaluate once, scatter phrases
    /// under injected global idfs, gather the max.
    fn merged_score(parts: &[&AttributeIndex], probe: &KeywordProbe) -> f64 {
        let mut acc = ScoreAccumulator::new(probe.tokens().len());
        for ix in parts {
            acc.absorb(ix, probe);
        }
        let raw = if probe.tokens().len() == 1 {
            acc.single_token_raw()
        } else if acc.any_token_absent() {
            0.0
        } else {
            let idfs = acc.idfs();
            parts
                .iter()
                .filter_map(|ix| ix.best_conjunctive_score(probe.tokens(), &idfs))
                .fold(0.0, f64::max)
        };
        normalize_score(raw, acc.normalization_coefficient())
    }

    #[test]
    fn merged_partials_match_whole_index_bitwise() {
        let values = [
            "Gone with the Wind",
            "wind wind wind",
            "The Wind Rises",
            "Casablanca",
            "wind of change",
            "gone wind gone",
            "storm front",
        ];
        let whole = index(&values);
        // Three partitions, deliberately uneven, rows interleaved.
        for stride in [2usize, 3] {
            let mut parts: Vec<AttributeIndex> =
                (0..stride).map(|_| AttributeIndex::new()).collect();
            for (i, v) in values.iter().enumerate() {
                parts[i % stride].add(RowId(i as u64), v);
            }
            let refs: Vec<&AttributeIndex> = parts.iter().collect();
            for kw in [
                "wind",
                "casablanca",
                "gone wind",
                "storm front",
                "zzz",
                "wind zzz",
            ] {
                let Some(probe) = KeywordProbe::new(kw) else {
                    continue;
                };
                let whole_score =
                    normalize_score(whole.score_probe(&probe), whole.normalization_coefficient());
                let merged = merged_score(&refs, &probe);
                assert_eq!(
                    merged.to_bits(),
                    whole_score.to_bits(),
                    "kw={kw} stride={stride}: merged {merged} vs whole {whole_score}"
                );
            }
            // Vocabulary and per-token integer state also merge exactly.
            let mut union: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
            for p in &parts {
                union.extend(p.live_tokens().iter().map(|t| t.to_string()));
            }
            let whole_toks: Vec<String> =
                whole.live_tokens().iter().map(|t| t.to_string()).collect();
            assert_eq!(union.into_iter().collect::<Vec<_>>(), whole_toks);
            for tok in whole.live_tokens() {
                let mut merged = TokenPartial::default();
                for p in &parts {
                    merged.merge(p.token_partial(tok));
                }
                assert_eq!(merged.df, whole.doc_freq(tok), "df of {tok}");
                assert_eq!(merged, whole.token_partial(tok), "partial of {tok}");
            }
            let mut doc = DocPartial::default();
            for p in &parts {
                doc.merge(p.doc_partial());
            }
            assert_eq!(doc, whole.doc_partial());
        }
    }

    #[test]
    fn empty_partition_set_scores_zero() {
        let probe = KeywordProbe::new("wind").unwrap();
        assert_eq!(merged_score(&[], &probe), 0.0);
        let empty = AttributeIndex::new();
        assert_eq!(merged_score(&[&empty, &empty], &probe), 0.0);
    }

    #[test]
    fn doc_stats() {
        let ix = index(&["a b c x y", "x"]);
        // "a" is a stopword, so first doc indexes fewer tokens than written.
        assert_eq!(ix.doc_count(), 2);
        assert!(ix.avg_len() > 0.0);
        assert_eq!(ix.doc_freq("x"), 2);
        assert_eq!(ix.doc_freq("zzz"), 0);
        assert_eq!(ix.vocabulary_size(), 4);
    }
}
