//! Indexing: tokenization and per-attribute full-text inverted indexes.

pub mod inverted;
pub mod tokenizer;

pub use inverted::{AttributeIndex, Posting};
pub use tokenizer::{
    edit_distance, edit_similarity, is_stopword, normalize_keyword, stem, tokenize,
    trigram_similarity, trigrams,
};
