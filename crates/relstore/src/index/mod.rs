//! Indexing: tokenization, token interning, and per-attribute full-text
//! inverted indexes.

pub mod interner;
pub mod inverted;
pub mod tokenizer;

pub use interner::TokenInterner;
pub use inverted::{
    bm25_idf, bm25_tf, normalize_score, AttributeIndex, DocPartial, KeywordProbe, Posting,
    ScoreAccumulator, TokenPartial,
};
pub use tokenizer::{
    edit_distance, edit_similarity, is_stopword, normalize_keyword, stem, stem_in_place, tokenize,
    tokenize_with, trigram_similarity, trigrams,
};
