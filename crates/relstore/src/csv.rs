//! CSV import/export for tables.
//!
//! The reproduction generates its data synthetically, but a downstream user
//! adopting QUEST will want to load real dumps (the paper demonstrates on
//! IMDB/Mondial/DBLP exports). This module reads and writes RFC-4180-style
//! CSV: comma-separated, double-quote quoting, `""` escaping, first line
//! optionally a header.

use crate::error::StoreError;
use crate::row::Row;
use crate::schema::TableId;
use crate::table::TableData;
use crate::value::Value;
use crate::Database;

/// Parse one CSV line into fields (RFC-4180 quoting).
pub fn parse_line(line: &str) -> Result<Vec<String>, StoreError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    cur.push('"');
                    chars.next();
                }
                '"' => in_quotes = false,
                other => cur.push(other),
            }
        } else {
            match c {
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                '"' if cur.is_empty() => in_quotes = true,
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return Err(StoreError::InvalidQuery("unterminated CSV quote".into()));
    }
    fields.push(cur);
    Ok(fields)
}

/// Quote a field if needed.
pub fn quote_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Load CSV text into a table. `has_header` skips the first line. Values are
/// parsed according to the column types; empty fields become NULL. Rows are
/// inserted *unchecked* (call [`Database::validate_foreign_keys`] after a
/// bulk load). Returns the number of rows inserted.
pub fn load_csv(
    db: &mut Database,
    table: &str,
    csv: &str,
    has_header: bool,
) -> Result<usize, StoreError> {
    let tid = db.catalog().table_id(table)?;
    let schema = db.catalog().table(tid).clone();
    let types: Vec<_> = schema
        .attributes
        .iter()
        .map(|a| db.catalog().attribute(*a).data_type)
        .collect();
    let mut inserted = 0usize;
    for (i, line) in csv.lines().enumerate() {
        if i == 0 && has_header {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_line(line)?;
        if fields.len() != types.len() {
            return Err(StoreError::TypeMismatch(format!(
                "line {}: {} fields for {} columns",
                i + 1,
                fields.len(),
                types.len()
            )));
        }
        let values: Vec<Value> = fields
            .iter()
            .zip(&types)
            .map(|(f, ty)| {
                Value::parse(f, *ty).ok_or_else(|| {
                    StoreError::TypeMismatch(format!("line {}: `{f}` is not a {ty}", i + 1))
                })
            })
            .collect::<Result<_, _>>()?;
        db.insert_unchecked(table, Row::new(values))?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Export a table as CSV with a header line.
pub fn dump_csv(db: &Database, table: TableId) -> String {
    let schema = db.catalog().table(table);
    let mut out = String::new();
    let header: Vec<String> = schema
        .attributes
        .iter()
        .map(|a| quote_field(&db.catalog().attribute(*a).name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    dump_rows(db.table_data(table), &mut out);
    out
}

fn dump_rows(data: &TableData, out: &mut String) {
    for (_, row) in data.iter() {
        let cells: Vec<String> = row
            .values()
            .iter()
            .map(|v| quote_field(&v.render()))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Catalog;
    use crate::types::DataType;

    fn db() -> Database {
        let mut c = Catalog::new();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("year", DataType::Int, true, false)
            .unwrap()
            .finish();
        Database::new(c).unwrap()
    }

    #[test]
    fn parses_quoted_fields() {
        assert_eq!(parse_line("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(
            parse_line("1,\"Hello, World\",2").unwrap(),
            vec!["1", "Hello, World", "2"]
        );
        assert_eq!(
            parse_line("\"say \"\"hi\"\"\"").unwrap(),
            vec!["say \"hi\""]
        );
        assert_eq!(parse_line("a,,c").unwrap(), vec!["a", "", "c"]);
        assert!(parse_line("\"unterminated").is_err());
    }

    #[test]
    fn loads_and_round_trips() {
        let mut d = db();
        let n = load_csv(
            &mut d,
            "movie",
            "id,title,year\n1,\"Gone, with the Wind\",1939\n2,Casablanca,\n",
            true,
        )
        .unwrap();
        assert_eq!(n, 2);
        let tid = d.catalog().table_id("movie").unwrap();
        assert_eq!(d.row_count(tid), 2);
        // NULL year parsed from empty field.
        let year = d.catalog().attr_id("movie", "year").unwrap();
        assert!(d.value(tid, crate::RowId(1), year).is_null());
        // Round trip.
        let text = dump_csv(&d, tid);
        let mut d2 = db();
        let n2 = load_csv(&mut d2, "movie", &text, true).unwrap();
        assert_eq!(n2, 2);
        let t1 = d.table_data(tid);
        let t2 = d2.table_data(tid);
        for ((_, a), (_, b)) in t1.iter().zip(t2.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_shapes_and_types() {
        let mut d = db();
        assert!(load_csv(&mut d, "movie", "1,too,few,fields,here", false).is_err());
        assert!(load_csv(&mut d, "movie", "x,title,1939", false).is_err());
        assert!(load_csv(&mut d, "ghost", "1,t,1939", false).is_err());
    }

    #[test]
    fn header_skipping_is_optional() {
        let mut d = db();
        let n = load_csv(&mut d, "movie", "1,A,2000\n2,B,2001", false).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn quote_field_escapes() {
        assert_eq!(quote_field("plain"), "plain");
        assert_eq!(quote_field("a,b"), "\"a,b\"");
        assert_eq!(quote_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
