//! The `Database`: catalog + table data + full-text indexes + statistics.

use std::collections::{BTreeSet, HashMap};

use crate::error::StoreError;
use crate::index::inverted::{AttributeIndex, KeywordProbe};
use crate::row::{Row, RowId};
use crate::schema::{AttrId, Catalog, ForeignKey, TableId};
use crate::stats::{attribute_stats, join_stats, AttributeStats, JoinStats};
use crate::table::TableData;
use crate::value::Value;

/// An in-memory relational database instance.
///
/// Construction: build a [`Catalog`], call [`Database::new`], insert rows in
/// FK dependency order (or use [`Database::insert_unchecked`] followed by
/// [`Database::validate_foreign_keys`]), then call [`Database::finalize`] to
/// build full-text indexes and statistics — the paper's "setup phase".
///
/// After `finalize`, the database is *live*: [`Database::insert`],
/// [`Database::delete`] and [`Database::update`] maintain the inverted
/// indexes incrementally and recompute statistics for the mutated table
/// only, so mutations never force a full rebuild and the database stays
/// finalized. The maintained state is bit-identical to what a fresh
/// [`Database::finalize`] over the same rows would build (asserted by the
/// relstore property suite). Batch writers wrap their loop in
/// [`Database::with_stats_deferred`] to pay the per-table stats refresh
/// once per batch instead of once per record.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: Catalog,
    tables: Vec<TableData>,
    /// Full-text indexes, one per attribute with `full_text = true`.
    indexes: HashMap<AttrId, AttributeIndex>,
    /// Per-attribute statistics (built in `finalize`).
    attr_stats: HashMap<AttrId, AttributeStats>,
    /// Per-foreign-key join statistics (built in `finalize`).
    join_stats: HashMap<ForeignKey, JoinStats>,
    finalized: bool,
    /// When `Some`, statistics refresh is deferred: mutated tables are
    /// collected here and refreshed once when the batch scope closes (see
    /// [`Database::with_stats_deferred`]). Index maintenance is never
    /// deferred — it is cheap and per-row.
    stats_dirty: Option<BTreeSet<TableId>>,
}

impl Database {
    /// Create an empty database over a validated catalog.
    pub fn new(catalog: Catalog) -> Result<Database, StoreError> {
        catalog.validate()?;
        let tables = (0..catalog.table_count())
            .map(|_| TableData::new())
            .collect();
        Ok(Database {
            catalog,
            tables,
            indexes: HashMap::new(),
            attr_stats: HashMap::new(),
            join_stats: HashMap::new(),
            finalized: false,
            stats_dirty: None,
        })
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Data of one table.
    pub fn table_data(&self, id: TableId) -> &TableData {
        &self.tables[id.0 as usize]
    }

    /// Live row count of one table.
    pub fn row_count(&self, id: TableId) -> usize {
        self.tables[id.0 as usize].len()
    }

    /// Total live rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Insert with full integrity checking (types, PK uniqueness, FK targets).
    ///
    /// FK targets must already exist, so load tables in dependency order.
    /// On a finalized database the new row is folded into the full-text
    /// indexes and statistics incrementally.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<RowId, StoreError> {
        let tid = self.catalog.table_id(table)?;
        let schema = self.catalog.table(tid).clone();
        // Shape-validate before the FK check: FK columns are addressed by
        // position, so a short row must be rejected (not panic) first.
        TableData::check_row(&self.catalog, &schema, &row)?;
        self.check_foreign_keys(tid, &row)?;
        let rid = self.tables[tid.0 as usize].insert_prevalidated(&self.catalog, &schema, row)?;
        self.finish_mutation(tid, rid);
        Ok(rid)
    }

    /// Insert with type/PK checking but *without* FK target checking. Use for
    /// bulk loads with cycles, then call [`Database::validate_foreign_keys`].
    pub fn insert_unchecked(&mut self, table: &str, row: Row) -> Result<RowId, StoreError> {
        let tid = self.catalog.table_id(table)?;
        let schema = self.catalog.table(tid).clone();
        let rid = self.tables[tid.0 as usize].insert(&self.catalog, &schema, row)?;
        self.finish_mutation(tid, rid);
        Ok(rid)
    }

    /// Post-insert maintenance shared by both insert paths.
    fn finish_mutation(&mut self, tid: TableId, rid: RowId) {
        if self.finalized {
            self.reindex_row(tid, rid, None, true);
            self.refresh_stats_for(tid);
        }
    }

    /// Delete the row whose primary-key tuple is `key`, returning its old
    /// [`RowId`]. Referential integrity is *restrictive*: the delete fails
    /// while any other live row still references the victim's primary key.
    /// On a finalized database indexes and statistics are maintained
    /// incrementally; the slot is tombstoned so other row ids stay stable.
    pub fn delete(&mut self, table: &str, key: &[Value]) -> Result<RowId, StoreError> {
        let tid = self.catalog.table_id(table)?;
        let schema = self.catalog.table(tid).clone();
        let rid = self.tables[tid.0 as usize]
            .lookup_pk(key)
            .ok_or_else(|| StoreError::RowNotFound(format!("{}{}", schema.name, fmt_key(key))))?;
        self.check_pk_unreferenced(tid, rid, None)?;
        let old = self.tables[tid.0 as usize].delete(&self.catalog, &schema, rid)?;
        if self.finalized {
            self.reindex_row(tid, rid, Some(&old), false);
            self.refresh_stats_for(tid);
        }
        Ok(rid)
    }

    /// Replace the row whose primary-key tuple is `key` with `row`, in place
    /// (the [`RowId`] is preserved). Checks types, NOT NULL, FK targets of
    /// the new row, and — when the primary key changes — PK uniqueness plus
    /// the restrictive rule that no row may still reference the old key
    /// afterwards. On a finalized database, indexes and statistics follow
    /// incrementally.
    pub fn update(&mut self, table: &str, key: &[Value], row: Row) -> Result<RowId, StoreError> {
        let tid = self.catalog.table_id(table)?;
        let schema = self.catalog.table(tid).clone();
        let rid = self.tables[tid.0 as usize]
            .lookup_pk(key)
            .ok_or_else(|| StoreError::RowNotFound(format!("{}{}", schema.name, fmt_key(key))))?;
        TableData::check_row(&self.catalog, &schema, &row)?;
        self.check_foreign_keys(tid, &row)?;
        let new_key = TableData::pk_of(&self.catalog, &schema, &row);
        if new_key.as_slice() != key {
            // The old key disappears: nothing may keep referencing it. The
            // updated row itself is judged by its *new* FK values.
            self.check_pk_unreferenced(tid, rid, Some(&row))?;
        }
        let old =
            self.tables[tid.0 as usize].update_prevalidated(&self.catalog, &schema, rid, row)?;
        if self.finalized {
            self.reindex_row(tid, rid, Some(&old), true);
            self.refresh_stats_for(tid);
        }
        Ok(rid)
    }

    /// FK-target existence for every FK column of a candidate row.
    fn check_foreign_keys(&self, tid: TableId, row: &Row) -> Result<(), StoreError> {
        for fk in self.catalog.foreign_keys() {
            let from = self.catalog.attribute(fk.from);
            if from.table != tid {
                continue;
            }
            let v = row.get(from.position);
            if v.is_null() {
                continue;
            }
            let target_table = self.catalog.attribute(fk.to).table;
            if self.tables[target_table.0 as usize]
                .lookup_pk(std::slice::from_ref(v))
                .is_none()
            {
                return Err(StoreError::ForeignKeyViolation(format!(
                    "{} = {v} has no target in {}",
                    self.catalog.qualified_name(fk.from),
                    self.catalog.table(target_table).name
                )));
            }
        }
        Ok(())
    }

    /// Restrictive RI check before a delete or PK-changing update of
    /// `(tid, rid)`: no live row may reference the victim's current primary
    /// key. The victim row itself is skipped on delete (its references die
    /// with it) and judged by `replacement` on update (its references
    /// survive with the new values).
    ///
    /// Cost: a linear scan of each referencing table — O(total referencing
    /// rows) per delete. Fine at this engine's scale and for insert-heavy
    /// live workloads; a delete-heavy workload at millions of rows would
    /// want a per-FK reverse count index maintained alongside the inverted
    /// indexes.
    fn check_pk_unreferenced(
        &self,
        tid: TableId,
        rid: RowId,
        replacement: Option<&Row>,
    ) -> Result<(), StoreError> {
        let victim = self.tables[tid.0 as usize].row(rid);
        for fk in self.catalog.foreign_keys() {
            let to = self.catalog.attribute(fk.to);
            if to.table != tid {
                continue;
            }
            let pk_val = victim.get(to.position);
            let from = self.catalog.attribute(fk.from);
            for (r_rid, r_row) in self.tables[from.table.0 as usize].iter() {
                let row = if from.table == tid && r_rid == rid {
                    match replacement {
                        Some(new_row) => new_row,
                        None => continue, // delete: self-reference dies too
                    }
                } else {
                    r_row
                };
                let v = row.get(from.position);
                if !v.is_null() && v == pk_val {
                    return Err(StoreError::ForeignKeyViolation(format!(
                        "{} = {v} still references {}",
                        self.catalog.qualified_name(fk.from),
                        self.catalog.qualified_name(fk.to)
                    )));
                }
            }
        }
        Ok(())
    }

    /// Scan every FK column and verify all non-null values have targets.
    pub fn validate_foreign_keys(&self) -> Result<(), StoreError> {
        for fk in self.catalog.foreign_keys() {
            let from = self.catalog.attribute(fk.from);
            let target_table = self.catalog.attribute(fk.to).table;
            let target = &self.tables[target_table.0 as usize];
            for (_, row) in self.tables[from.table.0 as usize].iter() {
                let v = row.get(from.position);
                if !v.is_null() && target.lookup_pk(std::slice::from_ref(v)).is_none() {
                    return Err(StoreError::ForeignKeyViolation(format!(
                        "{} = {v}",
                        self.catalog.qualified_name(fk.from)
                    )));
                }
            }
        }
        Ok(())
    }

    /// Full instance integrity check: every live row satisfies its table's
    /// arity, types and NOT NULL constraints; the PK index maps each live
    /// row's key back to its slot (and nothing else); and every FK value has
    /// a target. Bulk loaders and WAL replay use this as the final gate.
    pub fn validate(&self) -> Result<(), StoreError> {
        self.validate_structure()?;
        self.validate_foreign_keys()
    }

    /// [`Database::validate`] minus the foreign-key pass: row shape, PK
    /// index consistency and live counts only. This is the whole check for
    /// a *shard* database, where FK targets may live on other shards and
    /// referential integrity is validated globally by the sharded store.
    pub fn validate_structure(&self) -> Result<(), StoreError> {
        for schema in self.catalog.tables() {
            let data = &self.tables[schema.id.0 as usize];
            let mut live = 0usize;
            for (rid, row) in data.iter() {
                TableData::check_row(&self.catalog, schema, row)?;
                let key = TableData::pk_of(&self.catalog, schema, row);
                if data.lookup_pk(&key) != Some(rid) {
                    return Err(StoreError::InvalidSchema(format!(
                        "{}: PK index does not map {} back to row {rid}",
                        schema.name,
                        fmt_key(&key)
                    )));
                }
                live += 1;
            }
            if live != data.len() {
                return Err(StoreError::InvalidSchema(format!(
                    "{}: live-row count {} disagrees with len {}",
                    schema.name,
                    live,
                    data.len()
                )));
            }
        }
        Ok(())
    }

    /// Replace one table's storage with an explicit slot layout, tombstones
    /// included (snapshot import). Leaves the database unfinalized; call
    /// [`Database::finalize`] after all tables are restored.
    pub fn restore_table(
        &mut self,
        table: TableId,
        slots: Vec<Option<Row>>,
    ) -> Result<(), StoreError> {
        let schema = self.catalog.table(table).clone();
        self.tables[table.0 as usize] = TableData::restore(&self.catalog, &schema, slots)?;
        self.finalized = false;
        Ok(())
    }

    /// The setup phase: build full-text indexes over all `full_text`
    /// attributes and compute attribute and join statistics.
    pub fn finalize(&mut self) {
        self.indexes.clear();
        self.attr_stats.clear();
        self.join_stats.clear();
        for attr in self.catalog.attributes() {
            let data = &self.tables[attr.table.0 as usize];
            if attr.full_text {
                // Bulk-build path: append postings, sort each list once at
                // the end — bit-identical to per-row sorted inserts (pinned
                // by the relstore property suite) without the mid-list
                // shifting.
                let mut ix = AttributeIndex::new();
                for (rid, row) in data.iter() {
                    let v = row.get(attr.position);
                    if !v.is_null() {
                        ix.add_bulk(rid, &v.render());
                    }
                }
                ix.finish_build();
                self.indexes.insert(attr.id, ix);
            }
            self.attr_stats
                .insert(attr.id, attribute_stats(&self.catalog, data, attr.id));
        }
        for fk in self.catalog.foreign_keys() {
            let referencing = &self.tables[self.catalog.attribute(fk.from).table.0 as usize];
            let referenced = &self.tables[self.catalog.attribute(fk.to).table.0 as usize];
            self.join_stats
                .insert(*fk, join_stats(&self.catalog, *fk, referencing, referenced));
        }
        self.finalized = true;
    }

    /// Incremental index maintenance for one mutated row: un-index the old
    /// values (if any), index the new ones (if the slot is still live).
    fn reindex_row(&mut self, tid: TableId, rid: RowId, old: Option<&Row>, live: bool) {
        let full_text: Vec<(AttrId, usize)> = self
            .catalog
            .table(tid)
            .attributes
            .iter()
            .map(|a| self.catalog.attribute(*a))
            .filter(|a| a.full_text)
            .map(|a| (a.id, a.position))
            .collect();
        for (attr, pos) in full_text {
            let old_text = old
                .map(|r| r.get(pos))
                .filter(|v| !v.is_null())
                .map(Value::render);
            let new_text = if live {
                let v = self.tables[tid.0 as usize].row(rid).get(pos);
                (!v.is_null()).then(|| v.render())
            } else {
                None
            };
            let ix = self.indexes.entry(attr).or_default();
            if let Some(text) = old_text {
                ix.remove(rid, &text);
            }
            if let Some(text) = new_text {
                ix.add(rid, &text);
            }
        }
    }

    /// Recompute the statistics a mutation of `tid` can change: the table's
    /// attribute stats and the join stats of every FK touching it. Uses the
    /// same pure functions as [`Database::finalize`], so maintained stats
    /// are bit-identical to a full rebuild.
    fn refresh_stats_for(&mut self, tid: TableId) {
        if let Some(dirty) = &mut self.stats_dirty {
            dirty.insert(tid);
            return;
        }
        for attr in self.catalog.table(tid).attributes.clone() {
            let stats = attribute_stats(&self.catalog, &self.tables[tid.0 as usize], attr);
            self.attr_stats.insert(attr, stats);
        }
        for fk in self.catalog.fks_of_table(tid) {
            let stats = join_stats(
                &self.catalog,
                fk,
                &self.tables[self.catalog.attribute(fk.from).table.0 as usize],
                &self.tables[self.catalog.attribute(fk.to).table.0 as usize],
            );
            self.join_stats.insert(fk, stats);
        }
    }

    /// Run a batch of mutations with statistics refresh deferred to the
    /// end of the batch.
    ///
    /// Per-mutation stats refresh rescans the mutated table (and both
    /// sides of its FK joins), so a k-record batch would pay k rescans for
    /// a result only the final state needs. Inside `f`, mutations maintain
    /// the inverted indexes as usual but only *mark* their tables dirty;
    /// when `f` returns, each dirty table is refreshed exactly once. The
    /// final state is bit-identical to per-mutation refresh — only reads
    /// of `attr_stats`/`fk_stats` *inside* `f` may observe pre-batch
    /// values. Nested calls coalesce into the outermost batch.
    pub fn with_stats_deferred<R>(&mut self, f: impl FnOnce(&mut Database) -> R) -> R {
        /// Drains the dirty set on scope exit — *including* an unwind out
        /// of `f` — so a panicking closure cannot leave the database with
        /// statistics refresh permanently disabled.
        struct Scope<'a> {
            db: &'a mut Database,
            outermost: bool,
        }
        impl Drop for Scope<'_> {
            fn drop(&mut self) {
                if self.outermost {
                    if let Some(dirty) = self.db.stats_dirty.take() {
                        for tid in dirty {
                            self.db.refresh_stats_for(tid);
                        }
                    }
                }
            }
        }
        let outermost = self.begin_stats_deferred();
        let scope = Scope {
            db: self,
            outermost,
        };
        f(&mut *scope.db)
    }

    /// Open a statistics-deferral scope without a closure. Returns `true`
    /// when this call opened the outermost scope; that flag must be handed
    /// back to [`Database::end_stats_deferred`]. Prefer
    /// [`Database::with_stats_deferred`] — this explicit pair exists for
    /// coordinators that batch mutations across *several* databases at once
    /// (e.g. a sharded store deferring every shard's refresh until the end
    /// of a batch), where a single closure cannot scope all of them.
    pub fn begin_stats_deferred(&mut self) -> bool {
        if self.stats_dirty.is_none() {
            self.stats_dirty = Some(BTreeSet::new());
            true
        } else {
            false
        }
    }

    /// Close a scope opened by [`Database::begin_stats_deferred`], passing
    /// the flag it returned. When `outermost` the dirty set is drained and
    /// each dirty table's statistics are refreshed exactly once; otherwise
    /// this is a no-op (the enclosing scope will refresh).
    pub fn end_stats_deferred(&mut self, outermost: bool) {
        if !outermost {
            return;
        }
        if let Some(dirty) = self.stats_dirty.take() {
            for tid in dirty {
                self.refresh_stats_for(tid);
            }
        }
    }

    /// Whether `finalize` has been run (mutations on a finalized database
    /// keep it finalized by maintaining indexes and stats incrementally).
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Full-text index of an attribute, if one was built.
    pub fn index(&self, attr: AttrId) -> Option<&AttributeIndex> {
        self.indexes.get(&attr)
    }

    /// The paper's search function: relevance score of `keyword` against the
    /// values of `attr`, already normalized to [0, 1] with the per-attribute
    /// coefficient computed at setup. Returns 0 for unindexed attributes.
    pub fn search_score(&self, attr: AttrId, keyword: &str) -> f64 {
        match self.indexes.get(&attr) {
            Some(ix) => {
                crate::index::normalize_score(ix.score(keyword), ix.normalization_coefficient())
            }
            None => 0.0,
        }
    }

    /// Normalize a keyword into a reusable probe, paying tokenization once
    /// per keyword instead of once per `(keyword, attribute)` pair. `None`
    /// when the keyword normalizes away — every score for it is 0.
    pub fn prepare_probe(&self, keyword: &str) -> Option<KeywordProbe> {
        KeywordProbe::new(keyword)
    }

    /// [`Database::search_score`] for a keyword prepared with
    /// [`Database::prepare_probe`]; bit-identical results.
    pub fn search_score_probe(&self, attr: AttrId, probe: &KeywordProbe) -> f64 {
        match self.indexes.get(&attr) {
            Some(ix) => {
                crate::index::normalize_score(ix.score_probe(probe), ix.normalization_coefficient())
            }
            None => 0.0,
        }
    }

    /// [`Database::search_score`] through the pre-interning scan path
    /// ([`AttributeIndex::score_reference`]): the reference the optimized
    /// probes are verified against, and the baseline of the committed
    /// pipeline benchmark.
    pub fn search_score_reference(&self, attr: AttrId, keyword: &str) -> f64 {
        match self.indexes.get(&attr) {
            Some(ix) => crate::index::normalize_score(
                ix.score_reference(keyword),
                ix.normalization_coefficient(),
            ),
            None => 0.0,
        }
    }

    /// Top matching rows of `attr` for `keyword`, with normalized scores.
    pub fn search_rows(&self, attr: AttrId, keyword: &str, limit: usize) -> Vec<(RowId, f64)> {
        match self.indexes.get(&attr) {
            Some(ix) => {
                let coeff = ix.normalization_coefficient().max(f64::MIN_POSITIVE);
                ix.search(keyword, limit)
                    .into_iter()
                    .map(|(r, s)| (r, (s / coeff).clamp(0.0, 1.0)))
                    .collect()
            }
            None => Vec::new(),
        }
    }

    /// Statistics of one attribute (requires `finalize`).
    pub fn attr_stats(&self, attr: AttrId) -> Option<&AttributeStats> {
        self.attr_stats.get(&attr)
    }

    /// Join statistics of one foreign key (requires `finalize`).
    pub fn fk_stats(&self, fk: ForeignKey) -> Option<&JoinStats> {
        self.join_stats.get(&fk)
    }

    /// Look up a row's value by attribute id.
    pub fn value(&self, table: TableId, row: RowId, attr: AttrId) -> &Value {
        let pos = self.catalog.attribute(attr).position;
        self.tables[table.0 as usize].row(row).get(pos)
    }
}

/// Render a PK tuple for error messages.
fn fmt_key(key: &[Value]) -> String {
    Row::new(key.to_vec()).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn movie_db() -> Database {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut db = Database::new(c).unwrap();
        db.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        db.insert("person", Row::new(vec![2.into(), "Michael Curtiz".into()]))
            .unwrap();
        db.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        db.insert(
            "movie",
            Row::new(vec![11.into(), "Casablanca".into(), 2.into()]),
        )
        .unwrap();
        db.finalize();
        db
    }

    /// Every full-text index, statistic, and row of `db` must be
    /// bit-identical to a from-scratch `finalize` over the same rows.
    fn assert_matches_rebuild(db: &Database) {
        let mut rebuilt = db.clone();
        rebuilt.finalize();
        for attr in db.catalog().attributes() {
            assert_eq!(
                db.index(attr.id),
                rebuilt.index(attr.id),
                "index of {} diverged from rebuild",
                db.catalog().qualified_name(attr.id)
            );
            assert_eq!(db.attr_stats(attr.id), rebuilt.attr_stats(attr.id));
        }
        for fk in db.catalog().foreign_keys() {
            assert_eq!(db.fk_stats(*fk), rebuilt.fk_stats(*fk));
        }
    }

    #[test]
    fn fk_enforced_on_insert() {
        let mut db = movie_db();
        let err = db
            .insert(
                "movie",
                Row::new(vec![12.into(), "Orphan".into(), 99.into()]),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::ForeignKeyViolation(_)));
        // NULL FK allowed.
        db.insert(
            "movie",
            Row::new(vec![12.into(), "Orphan".into(), Value::Null]),
        )
        .unwrap();
    }

    #[test]
    fn unchecked_then_validate() {
        let mut c = Catalog::new();
        c.define_table("b")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .finish();
        c.define_table("a")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("b_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("a", "b_id", "b").unwrap();
        let mut db = Database::new(c).unwrap();
        db.insert_unchecked("a", Row::new(vec![1.into(), 7.into()]))
            .unwrap();
        assert!(db.validate_foreign_keys().is_err());
        assert!(db.validate().is_err());
        db.insert("b", Row::new(vec![7.into()])).unwrap();
        assert!(db.validate_foreign_keys().is_ok());
        assert!(db.validate().is_ok());
    }

    #[test]
    fn search_scores_normalized() {
        let db = movie_db();
        let title = db.catalog().attr_id("movie", "title").unwrap();
        let s = db.search_score(title, "casablanca");
        assert!(s > 0.0 && s <= 1.0);
        assert_eq!(db.search_score(title, "nonexistentword"), 0.0);
        // Non-indexed attribute scores 0.
        let pk = db.catalog().attr_id("movie", "id").unwrap();
        assert_eq!(db.search_score(pk, "casablanca"), 0.0);
    }

    #[test]
    fn search_rows_returns_matches() {
        let db = movie_db();
        let title = db.catalog().attr_id("movie", "title").unwrap();
        let hits = db.search_rows(title, "wind", 10);
        assert_eq!(hits.len(), 1);
        let tid = db.catalog().table_id("movie").unwrap();
        let name_attr = db.catalog().attr_id("movie", "title").unwrap();
        assert_eq!(
            db.value(tid, hits[0].0, name_attr),
            &Value::text("Gone with the Wind")
        );
    }

    #[test]
    fn finalize_builds_stats() {
        let db = movie_db();
        assert!(db.is_finalized());
        let title = db.catalog().attr_id("movie", "title").unwrap();
        let st = db.attr_stats(title).unwrap();
        assert_eq!(st.rows, 2);
        assert_eq!(st.distinct, 2);
        let fk = db.catalog().foreign_keys()[0];
        let js = db.fk_stats(fk).unwrap();
        assert_eq!(js.pairs, 2);
        assert!(js.nmi > 0.9);
    }

    #[test]
    fn insert_maintains_indexes_incrementally() {
        let mut db = movie_db();
        assert!(db.is_finalized());
        assert_eq!(
            db.search_score(db.catalog().attr_id("movie", "title").unwrap(), "oz"),
            0.0
        );
        db.insert("person", Row::new(vec![3.into(), "Noel Langley".into()]))
            .unwrap();
        db.insert(
            "movie",
            Row::new(vec![12.into(), "The Wizard of Oz".into(), 1.into()]),
        )
        .unwrap();
        assert!(db.is_finalized(), "mutations keep the database finalized");
        let title = db.catalog().attr_id("movie", "title").unwrap();
        assert!(db.search_score(title, "oz") > 0.0);
        assert_eq!(db.attr_stats(title).unwrap().rows, 3);
        assert_matches_rebuild(&db);
    }

    #[test]
    fn delete_restricts_and_maintains() {
        let mut db = movie_db();
        // Fleming still directs a movie: restricted.
        let err = db.delete("person", &[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, StoreError::ForeignKeyViolation(_)));
        // Remove the movie first, then the person.
        db.delete("movie", &[Value::Int(10)]).unwrap();
        db.delete("person", &[Value::Int(1)]).unwrap();
        let title = db.catalog().attr_id("movie", "title").unwrap();
        assert_eq!(db.search_score(title, "wind"), 0.0);
        assert!(db.search_score(title, "casablanca") > 0.0);
        assert_eq!(db.row_count(db.catalog().table_id("movie").unwrap()), 1);
        // Unknown key.
        assert!(matches!(
            db.delete("movie", &[Value::Int(10)]).unwrap_err(),
            StoreError::RowNotFound(_)
        ));
        assert!(db.validate().is_ok());
        assert_matches_rebuild(&db);
    }

    #[test]
    fn update_maintains_indexes_and_stats() {
        let mut db = movie_db();
        let title = db.catalog().attr_id("movie", "title").unwrap();
        db.update(
            "movie",
            &[Value::Int(10)],
            Row::new(vec![10.into(), "The Wizard of Oz".into(), 1.into()]),
        )
        .unwrap();
        assert_eq!(db.search_score(title, "wind"), 0.0);
        assert!(db.search_score(title, "wizard") > 0.0);
        // FK change to a missing target rejected.
        let err = db
            .update(
                "movie",
                &[Value::Int(10)],
                Row::new(vec![10.into(), "The Wizard of Oz".into(), 99.into()]),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::ForeignKeyViolation(_)));
        // PK change of a referenced row rejected (movies point at person 1).
        let err = db
            .update(
                "person",
                &[Value::Int(1)],
                Row::new(vec![5.into(), "Victor Fleming".into()]),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::ForeignKeyViolation(_)));
        // PK change of an unreferenced row is fine and re-keys the index.
        db.delete("movie", &[Value::Int(11)]).unwrap();
        db.update(
            "person",
            &[Value::Int(2)],
            Row::new(vec![6.into(), "Mervyn LeRoy".into()]),
        )
        .unwrap();
        let name = db.catalog().attr_id("person", "name").unwrap();
        assert!(db.search_score(name, "leroy") > 0.0);
        assert_eq!(db.search_score(name, "curtiz"), 0.0);
        assert!(db.validate().is_ok());
        assert_matches_rebuild(&db);
    }

    #[test]
    fn deferred_stats_batch_matches_per_record_refresh() {
        let mut db = movie_db();
        let title = db.catalog().attr_id("movie", "title").unwrap();
        let rows_before = db.attr_stats(title).unwrap().rows;
        db.with_stats_deferred(|db| {
            db.insert("person", Row::new(vec![3.into(), "Noel Langley".into()]))
                .unwrap();
            db.insert(
                "movie",
                Row::new(vec![12.into(), "The Wizard of Oz".into(), 3.into()]),
            )
            .unwrap();
            // Indexes are exact mid-batch; stats are stale until the scope
            // closes.
            assert!(db.search_score(title, "wizard") > 0.0);
            assert_eq!(db.attr_stats(title).unwrap().rows, rows_before);
            // Nested scopes coalesce into the outermost batch.
            db.with_stats_deferred(|db| {
                db.insert(
                    "movie",
                    Row::new(vec![13.into(), "Advise and Consent".into(), Value::Null]),
                )
                .unwrap();
            });
            assert_eq!(db.attr_stats(title).unwrap().rows, rows_before);
        });
        assert_eq!(db.attr_stats(title).unwrap().rows, rows_before + 2);
        assert_matches_rebuild(&db);
        assert!(db.validate().is_ok());
    }

    #[test]
    fn mutations_before_finalize_stay_lazy() {
        let mut c = Catalog::new();
        c.define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        let mut db = Database::new(c).unwrap();
        db.insert("t", Row::new(vec![1.into(), "alpha".into()]))
            .unwrap();
        assert!(!db.is_finalized());
        let name = db.catalog().attr_id("t", "name").unwrap();
        assert!(db.index(name).is_none(), "no index work before finalize");
        db.delete("t", &[Value::Int(1)]).unwrap();
        db.insert("t", Row::new(vec![2.into(), "beta".into()]))
            .unwrap();
        db.finalize();
        assert!(db.search_score(name, "beta") > 0.0);
        assert_eq!(db.search_score(name, "alpha"), 0.0);
    }
}
