//! The `Database`: catalog + table data + full-text indexes + statistics.

use std::collections::HashMap;

use crate::error::StoreError;
use crate::index::inverted::AttributeIndex;
use crate::row::{Row, RowId};
use crate::schema::{AttrId, Catalog, ForeignKey, TableId};
use crate::stats::{attribute_stats, join_stats, AttributeStats, JoinStats};
use crate::table::TableData;
use crate::value::Value;

/// An in-memory relational database instance.
///
/// Construction: build a [`Catalog`], call [`Database::new`], insert rows in
/// FK dependency order (or use [`Database::insert_unchecked`] followed by
/// [`Database::validate_foreign_keys`]), then call [`Database::finalize`] to
/// build full-text indexes and statistics — the paper's "setup phase".
#[derive(Debug, Clone)]
pub struct Database {
    catalog: Catalog,
    tables: Vec<TableData>,
    /// Full-text indexes, one per attribute with `full_text = true`.
    indexes: HashMap<AttrId, AttributeIndex>,
    /// Per-attribute statistics (built in `finalize`).
    attr_stats: HashMap<AttrId, AttributeStats>,
    /// Per-foreign-key join statistics (built in `finalize`).
    join_stats: HashMap<ForeignKey, JoinStats>,
    finalized: bool,
}

impl Database {
    /// Create an empty database over a validated catalog.
    pub fn new(catalog: Catalog) -> Result<Database, StoreError> {
        catalog.validate()?;
        let tables = (0..catalog.table_count())
            .map(|_| TableData::new())
            .collect();
        Ok(Database {
            catalog,
            tables,
            indexes: HashMap::new(),
            attr_stats: HashMap::new(),
            join_stats: HashMap::new(),
            finalized: false,
        })
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Data of one table.
    pub fn table_data(&self, id: TableId) -> &TableData {
        &self.tables[id.0 as usize]
    }

    /// Row count of one table.
    pub fn row_count(&self, id: TableId) -> usize {
        self.tables[id.0 as usize].len()
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Insert with full integrity checking (types, PK uniqueness, FK targets).
    ///
    /// FK targets must already exist, so load tables in dependency order.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<RowId, StoreError> {
        let tid = self.catalog.table_id(table)?;
        self.check_foreign_keys(tid, &row)?;
        self.insert_validated(tid, row)
    }

    /// Insert with type/PK checking but *without* FK target checking. Use for
    /// bulk loads with cycles, then call [`Database::validate_foreign_keys`].
    pub fn insert_unchecked(&mut self, table: &str, row: Row) -> Result<RowId, StoreError> {
        let tid = self.catalog.table_id(table)?;
        self.insert_validated(tid, row)
    }

    fn insert_validated(&mut self, tid: TableId, row: Row) -> Result<RowId, StoreError> {
        self.finalized = false;
        let schema = self.catalog.table(tid).clone();
        self.tables[tid.0 as usize].insert(&self.catalog, &schema, row)
    }

    fn check_foreign_keys(&self, tid: TableId, row: &Row) -> Result<(), StoreError> {
        for fk in self.catalog.foreign_keys() {
            let from = self.catalog.attribute(fk.from);
            if from.table != tid {
                continue;
            }
            let v = row.get(from.position);
            if v.is_null() {
                continue;
            }
            let target_table = self.catalog.attribute(fk.to).table;
            if self.tables[target_table.0 as usize]
                .lookup_pk(std::slice::from_ref(v))
                .is_none()
            {
                return Err(StoreError::ForeignKeyViolation(format!(
                    "{} = {v} has no target in {}",
                    self.catalog.qualified_name(fk.from),
                    self.catalog.table(target_table).name
                )));
            }
        }
        Ok(())
    }

    /// Scan every FK column and verify all non-null values have targets.
    pub fn validate_foreign_keys(&self) -> Result<(), StoreError> {
        for fk in self.catalog.foreign_keys() {
            let from = self.catalog.attribute(fk.from);
            let target_table = self.catalog.attribute(fk.to).table;
            let target = &self.tables[target_table.0 as usize];
            for (_, row) in self.tables[from.table.0 as usize].iter() {
                let v = row.get(from.position);
                if !v.is_null() && target.lookup_pk(std::slice::from_ref(v)).is_none() {
                    return Err(StoreError::ForeignKeyViolation(format!(
                        "{} = {v}",
                        self.catalog.qualified_name(fk.from)
                    )));
                }
            }
        }
        Ok(())
    }

    /// The setup phase: build full-text indexes over all `full_text`
    /// attributes and compute attribute and join statistics.
    pub fn finalize(&mut self) {
        self.indexes.clear();
        self.attr_stats.clear();
        self.join_stats.clear();
        for attr in self.catalog.attributes() {
            let data = &self.tables[attr.table.0 as usize];
            if attr.full_text {
                let mut ix = AttributeIndex::new();
                for (rid, row) in data.iter() {
                    let v = row.get(attr.position);
                    if !v.is_null() {
                        ix.add(rid, &v.render());
                    }
                }
                self.indexes.insert(attr.id, ix);
            }
            self.attr_stats
                .insert(attr.id, attribute_stats(&self.catalog, data, attr.id));
        }
        for fk in self.catalog.foreign_keys() {
            let referencing = &self.tables[self.catalog.attribute(fk.from).table.0 as usize];
            let referenced = &self.tables[self.catalog.attribute(fk.to).table.0 as usize];
            self.join_stats
                .insert(*fk, join_stats(&self.catalog, *fk, referencing, referenced));
        }
        self.finalized = true;
    }

    /// Whether `finalize` has been run since the last mutation.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Full-text index of an attribute, if one was built.
    pub fn index(&self, attr: AttrId) -> Option<&AttributeIndex> {
        self.indexes.get(&attr)
    }

    /// The paper's search function: relevance score of `keyword` against the
    /// values of `attr`, already normalized to [0, 1] with the per-attribute
    /// coefficient computed at setup. Returns 0 for unindexed attributes.
    pub fn search_score(&self, attr: AttrId, keyword: &str) -> f64 {
        match self.indexes.get(&attr) {
            Some(ix) => {
                let coeff = ix.normalization_coefficient();
                if coeff <= 0.0 {
                    0.0
                } else {
                    (ix.score(keyword) / coeff).clamp(0.0, 1.0)
                }
            }
            None => 0.0,
        }
    }

    /// Top matching rows of `attr` for `keyword`, with normalized scores.
    pub fn search_rows(&self, attr: AttrId, keyword: &str, limit: usize) -> Vec<(RowId, f64)> {
        match self.indexes.get(&attr) {
            Some(ix) => {
                let coeff = ix.normalization_coefficient().max(f64::MIN_POSITIVE);
                ix.search(keyword, limit)
                    .into_iter()
                    .map(|(r, s)| (r, (s / coeff).clamp(0.0, 1.0)))
                    .collect()
            }
            None => Vec::new(),
        }
    }

    /// Statistics of one attribute (requires `finalize`).
    pub fn attr_stats(&self, attr: AttrId) -> Option<&AttributeStats> {
        self.attr_stats.get(&attr)
    }

    /// Join statistics of one foreign key (requires `finalize`).
    pub fn fk_stats(&self, fk: ForeignKey) -> Option<&JoinStats> {
        self.join_stats.get(&fk)
    }

    /// Look up a row's value by attribute id.
    pub fn value(&self, table: TableId, row: RowId, attr: AttrId) -> &Value {
        let pos = self.catalog.attribute(attr).position;
        self.tables[table.0 as usize].row(row).get(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn movie_db() -> Database {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut db = Database::new(c).unwrap();
        db.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        db.insert("person", Row::new(vec![2.into(), "Michael Curtiz".into()]))
            .unwrap();
        db.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        db.insert(
            "movie",
            Row::new(vec![11.into(), "Casablanca".into(), 2.into()]),
        )
        .unwrap();
        db.finalize();
        db
    }

    #[test]
    fn fk_enforced_on_insert() {
        let mut db = movie_db();
        let err = db
            .insert(
                "movie",
                Row::new(vec![12.into(), "Orphan".into(), 99.into()]),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::ForeignKeyViolation(_)));
        // NULL FK allowed.
        db.insert(
            "movie",
            Row::new(vec![12.into(), "Orphan".into(), Value::Null]),
        )
        .unwrap();
    }

    #[test]
    fn unchecked_then_validate() {
        let mut c = Catalog::new();
        c.define_table("b")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .finish();
        c.define_table("a")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("b_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("a", "b_id", "b").unwrap();
        let mut db = Database::new(c).unwrap();
        db.insert_unchecked("a", Row::new(vec![1.into(), 7.into()]))
            .unwrap();
        assert!(db.validate_foreign_keys().is_err());
        db.insert("b", Row::new(vec![7.into()])).unwrap();
        assert!(db.validate_foreign_keys().is_ok());
    }

    #[test]
    fn search_scores_normalized() {
        let db = movie_db();
        let title = db.catalog().attr_id("movie", "title").unwrap();
        let s = db.search_score(title, "casablanca");
        assert!(s > 0.0 && s <= 1.0);
        assert_eq!(db.search_score(title, "nonexistentword"), 0.0);
        // Non-indexed attribute scores 0.
        let pk = db.catalog().attr_id("movie", "id").unwrap();
        assert_eq!(db.search_score(pk, "casablanca"), 0.0);
    }

    #[test]
    fn search_rows_returns_matches() {
        let db = movie_db();
        let title = db.catalog().attr_id("movie", "title").unwrap();
        let hits = db.search_rows(title, "wind", 10);
        assert_eq!(hits.len(), 1);
        let tid = db.catalog().table_id("movie").unwrap();
        let name_attr = db.catalog().attr_id("movie", "title").unwrap();
        assert_eq!(
            db.value(tid, hits[0].0, name_attr),
            &Value::text("Gone with the Wind")
        );
    }

    #[test]
    fn finalize_builds_stats() {
        let db = movie_db();
        assert!(db.is_finalized());
        let title = db.catalog().attr_id("movie", "title").unwrap();
        let st = db.attr_stats(title).unwrap();
        assert_eq!(st.rows, 2);
        assert_eq!(st.distinct, 2);
        let fk = db.catalog().foreign_keys()[0];
        let js = db.fk_stats(fk).unwrap();
        assert_eq!(js.pairs, 2);
        assert!(js.nmi > 0.9);
    }

    #[test]
    fn mutation_invalidates_finalize() {
        let mut db = movie_db();
        assert!(db.is_finalized());
        db.insert("person", Row::new(vec![3.into(), "X".into()]))
            .unwrap();
        assert!(!db.is_finalized());
    }
}
