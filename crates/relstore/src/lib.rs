//! # relstore — the relational substrate under QUEST
//!
//! An in-memory relational storage engine providing exactly the services the
//! QUEST keyword-search system expects from "a traditional DBMS" (paper §1,
//! §3):
//!
//! * a **schema catalog** (tables, attributes, primary keys, foreign keys) —
//!   the source of database *terms* for the forward module and of the schema
//!   graph for the backward module;
//! * **full-text inverted indexes** over textual attributes with a
//!   `search(keyword, attribute) → score` function whose scores are
//!   normalized per attribute at setup time, ready to be used as HMM emission
//!   probabilities;
//! * **instance statistics**, including the mutual-information measure over
//!   PK–FK joins that weights the backward module's schema-graph edges;
//! * a **SQL fragment** (SELECT-PROJECT-JOIN ASTs, a renderer producing the
//!   SQL text shown to users, and a hash-join executor computing results).
//!
//! The engine is deliberately small — no transactions, no durability, no
//! query optimizer beyond join-order selection — because QUEST treats the
//! DBMS as a black box reached through a wrapper.

#![warn(missing_docs)]

pub mod csv;
pub mod database;
pub mod error;
pub mod index;
pub mod row;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod table;
pub mod types;
pub mod value;

pub use database::Database;
pub use error::StoreError;
pub use row::{Row, RowId};
pub use schema::{AttrId, Attribute, Catalog, ForeignKey, TableId, TableSchema};
pub use table::{TableData, TupleRef};
pub use types::DataType;
pub use value::{Date, Value};
