//! Error type for the storage engine.

use std::fmt;

/// Errors raised by the relational storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A table with the same name already exists.
    DuplicateTable(String),
    /// An attribute with the same name already exists in the table.
    DuplicateAttribute(String),
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced attribute does not exist.
    UnknownAttribute(String),
    /// Schema-level invariant violated.
    InvalidSchema(String),
    /// A row violates the table arity or a column type.
    TypeMismatch(String),
    /// Primary-key uniqueness violated.
    DuplicateKey(String),
    /// Foreign-key reference has no matching target row.
    ForeignKeyViolation(String),
    /// NULL stored into a non-nullable column.
    NullViolation(String),
    /// A mutation addressed a primary key with no live row.
    RowNotFound(String),
    /// Malformed SQL statement handed to the executor.
    InvalidQuery(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateTable(n) => write!(f, "duplicate table `{n}`"),
            StoreError::DuplicateAttribute(n) => write!(f, "duplicate attribute `{n}`"),
            StoreError::UnknownTable(n) => write!(f, "unknown table `{n}`"),
            StoreError::UnknownAttribute(n) => write!(f, "unknown attribute `{n}`"),
            StoreError::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            StoreError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            StoreError::DuplicateKey(m) => write!(f, "duplicate primary key: {m}"),
            StoreError::ForeignKeyViolation(m) => write!(f, "foreign key violation: {m}"),
            StoreError::NullViolation(m) => write!(f, "null violation: {m}"),
            StoreError::RowNotFound(m) => write!(f, "row not found: {m}"),
            StoreError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::UnknownTable("movies".into());
        assert!(e.to_string().contains("movies"));
        let e = StoreError::ForeignKeyViolation("movie.director_id=9".into());
        assert!(e.to_string().contains("foreign key"));
    }
}
