//! Instance statistics: per-attribute summaries and per-foreign-key join
//! statistics, including the mutual-information measure the backward module
//! uses to weight schema-graph edges.
//!
//! Following the paper (§3, backward module) and its citation of Yang et
//! al.'s summary graphs, each PK–FK edge is scored by the mutual information
//! carried by the join. For a foreign key `A.fk → B.pk` the join result
//! pairs each `A` row with at most one `B` row, so the mutual information of
//! the join-tuple distribution reduces to the entropy of the referenced-key
//! distribution. Normalizing by `ln |B|` yields an *informativeness* in
//! [0, 1]: 1 when the join evenly covers the referenced table, 0 when the
//! join is empty. Edges of uninformative (likely-empty) joins receive larger
//! distances, steering Steiner trees toward join paths that actually contain
//! tuples.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::schema::{AttrId, Catalog, ForeignKey};
use crate::table::TableData;
use crate::value::Value;

/// Summary statistics for one attribute.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributeStats {
    /// Total rows in the table.
    pub rows: u64,
    /// NULLs in this column.
    pub nulls: u64,
    /// Distinct non-null values.
    pub distinct: u64,
}

impl AttributeStats {
    /// Fraction of rows that are non-null; 0 for an empty table.
    pub fn fill_factor(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            (self.rows - self.nulls) as f64 / self.rows as f64
        }
    }

    /// Average number of rows sharing one value (selectivity proxy).
    pub fn avg_fanout(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            (self.rows - self.nulls) as f64 / self.distinct as f64
        }
    }
}

/// Statistics of one foreign-key join.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinStats {
    /// Number of matching (referencing, referenced) pairs.
    pub pairs: u64,
    /// Distinct referenced primary keys actually referenced.
    pub referenced_distinct: u64,
    /// Rows in the referencing table.
    pub referencing_rows: u64,
    /// Rows in the referenced table.
    pub referenced_rows: u64,
    /// Normalized mutual information of the join in [0, 1].
    pub nmi: f64,
}

impl JoinStats {
    /// Whether the join produces any tuples at all.
    pub fn is_empty_join(&self) -> bool {
        self.pairs == 0
    }
}

/// Compute stats for one attribute column.
pub fn attribute_stats(catalog: &Catalog, data: &TableData, attr: AttrId) -> AttributeStats {
    let a = catalog.attribute(attr);
    let mut distinct: HashMap<&Value, ()> = HashMap::new();
    let mut nulls = 0u64;
    let mut rows = 0u64;
    for (_, row) in data.iter() {
        rows += 1;
        let v = row.get(a.position);
        if v.is_null() {
            nulls += 1;
        } else {
            distinct.insert(v, ());
        }
    }
    AttributeStats {
        rows,
        nulls,
        distinct: distinct.len() as u64,
    }
}

/// Compute join statistics for a foreign key given both tables' data.
pub fn join_stats(
    catalog: &Catalog,
    fk: ForeignKey,
    referencing: &TableData,
    referenced: &TableData,
) -> JoinStats {
    let from_attr = catalog.attribute(fk.from);
    let to_attr = catalog.attribute(fk.to);

    // Count how many referencing rows point at each referenced key.
    let mut ref_counts: HashMap<Value, u64> = HashMap::new();
    let mut pairs = 0u64;
    for (_, row) in referencing.iter() {
        let v = row.get(from_attr.position);
        if v.is_null() {
            continue;
        }
        // The referenced side is a primary key, so matching is a PK lookup.
        if referenced.lookup_pk(std::slice::from_ref(v)).is_some() {
            pairs += 1;
            *ref_counts.entry(v.clone()).or_insert(0) += 1;
        }
    }
    let _ = to_attr; // position of the PK column is implied by the PK index

    let referenced_rows = referenced.len() as u64;
    let nmi = normalized_join_entropy(&ref_counts, pairs, referenced_rows);
    JoinStats {
        pairs,
        referenced_distinct: ref_counts.len() as u64,
        referencing_rows: referencing.len() as u64,
        referenced_rows,
        nmi,
    }
}

/// Entropy of the referenced-key distribution normalized by `ln(referenced
/// table size)`. See module docs for why this equals the join's mutual
/// information under a uniform distribution over join tuples.
fn normalized_join_entropy(
    ref_counts: &HashMap<Value, u64>,
    pairs: u64,
    referenced_rows: u64,
) -> f64 {
    let counts: Vec<u64> = ref_counts.values().copied().collect();
    normalized_entropy_of_counts(counts, pairs, referenced_rows)
}

/// The NMI core shared by [`join_stats`] and [`JoinStatsAccumulator`]: both
/// hand it the same multiset of per-key counts, so partitioned builds are
/// bit-identical to whole-table ones.
fn normalized_entropy_of_counts(mut counts: Vec<u64>, pairs: u64, referenced_rows: u64) -> f64 {
    if pairs == 0 || referenced_rows <= 1 {
        return 0.0;
    }
    let n = pairs as f64;
    // Canonical (sorted) summation order: entropy depends only on the
    // multiset of counts, and hash-order summation would make the NMI — and
    // everything downstream of the edge weights — vary between builds by
    // floating-point ulps.
    counts.sort_unstable();
    let mut h = 0.0;
    for &c in &counts {
        let p = c as f64 / n;
        h -= p * p.ln();
    }
    let hmax = (referenced_rows as f64).ln();
    if hmax <= 0.0 {
        0.0
    } else {
        (h / hmax).clamp(0.0, 1.0)
    }
}

/// Mergeable partial of [`attribute_stats`] over disjoint row partitions.
///
/// Row and null counts sum; distinct values are carried as a set so the
/// cross-partition union counts each value once, exactly as the
/// whole-table `HashMap` probe would (`Value` equality is total, and its
/// `Ord` agrees with `Eq`, so set membership and hash membership coincide).
#[derive(Debug, Clone, Default)]
pub struct AttributeStatsAccumulator {
    rows: u64,
    nulls: u64,
    distinct: BTreeSet<Value>,
}

impl AttributeStatsAccumulator {
    /// Empty accumulator.
    pub fn new() -> AttributeStatsAccumulator {
        AttributeStatsAccumulator::default()
    }

    /// Fold one partition's rows for `attr` into the accumulator.
    pub fn absorb(&mut self, catalog: &Catalog, data: &TableData, attr: AttrId) {
        let a = catalog.attribute(attr);
        for (_, row) in data.iter() {
            self.rows += 1;
            let v = row.get(a.position);
            if v.is_null() {
                self.nulls += 1;
            } else if !self.distinct.contains(v) {
                self.distinct.insert(v.clone());
            }
        }
    }

    /// Fold another accumulator (over further disjoint partitions).
    pub fn merge(&mut self, other: AttributeStatsAccumulator) {
        self.rows += other.rows;
        self.nulls += other.nulls;
        self.distinct.extend(other.distinct);
    }

    /// The merged statistics — bit-identical to [`attribute_stats`] over
    /// the union of the absorbed partitions.
    pub fn finish(self) -> AttributeStats {
        AttributeStats {
            rows: self.rows,
            nulls: self.nulls,
            distinct: self.distinct.len() as u64,
        }
    }
}

/// Mergeable partial of [`join_stats`] over disjoint row partitions of
/// *both* sides of a foreign key.
///
/// The whole-table computation filters referencing values through the
/// referenced table's PK index, but a partition cannot: the matching PK may
/// live elsewhere. So the accumulator keeps the *unfiltered* non-null value
/// counts plus the set of live referenced PK values, and performs the
/// filter once at [`JoinStatsAccumulator::finish`] — integer state merges
/// exactly, and the NMI is evaluated once from the merged counts through
/// the same canonical-order entropy the whole-table path uses.
#[derive(Debug, Clone, Default)]
pub struct JoinStatsAccumulator {
    /// Non-null referencing value → count, unfiltered.
    ref_counts: BTreeMap<Value, u64>,
    /// Live PK values of the referenced table.
    pk_values: BTreeSet<Value>,
    referencing_rows: u64,
    referenced_rows: u64,
}

impl JoinStatsAccumulator {
    /// Empty accumulator.
    pub fn new() -> JoinStatsAccumulator {
        JoinStatsAccumulator::default()
    }

    /// Fold one partition of the *referencing* table.
    pub fn absorb_referencing(&mut self, catalog: &Catalog, fk: ForeignKey, data: &TableData) {
        let from_attr = catalog.attribute(fk.from);
        self.referencing_rows += data.len() as u64;
        for (_, row) in data.iter() {
            let v = row.get(from_attr.position);
            if !v.is_null() {
                *self.ref_counts.entry(v.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Fold one partition of the *referenced* table.
    pub fn absorb_referenced(&mut self, catalog: &Catalog, fk: ForeignKey, data: &TableData) {
        let to_attr = catalog.attribute(fk.to);
        self.referenced_rows += data.len() as u64;
        for (_, row) in data.iter() {
            self.pk_values.insert(row.get(to_attr.position).clone());
        }
    }

    /// Fold another accumulator (over further disjoint partitions).
    pub fn merge(&mut self, other: JoinStatsAccumulator) {
        for (v, c) in other.ref_counts {
            *self.ref_counts.entry(v).or_insert(0) += c;
        }
        self.pk_values.extend(other.pk_values);
        self.referencing_rows += other.referencing_rows;
        self.referenced_rows += other.referenced_rows;
    }

    /// The merged statistics — bit-identical to [`join_stats`] over the
    /// union of the absorbed partitions.
    pub fn finish(self) -> JoinStats {
        let mut pairs = 0u64;
        let mut referenced_distinct = 0u64;
        let mut counts = Vec::new();
        for (v, c) in &self.ref_counts {
            if self.pk_values.contains(v) {
                pairs += c;
                referenced_distinct += 1;
                counts.push(*c);
            }
        }
        let nmi = normalized_entropy_of_counts(counts, pairs, self.referenced_rows);
        JoinStats {
            pairs,
            referenced_distinct,
            referencing_rows: self.referencing_rows,
            referenced_rows: self.referenced_rows,
            nmi,
        }
    }
}

/// Shannon entropy (nats) of an empirical count distribution.
pub fn entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::types::DataType;

    fn fixture() -> (Catalog, TableData, TableData, ForeignKey) {
        let mut c = Catalog::new();
        c.define_table("b")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .finish();
        c.define_table("a")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("b_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("a", "b_id", "b").unwrap();
        let fk = c.foreign_keys()[0];
        let bs = c.table(c.table_id("b").unwrap()).clone();
        let as_ = c.table(c.table_id("a").unwrap()).clone();
        let mut b = TableData::new();
        for i in 0..4 {
            b.insert(&c, &bs, Row::new(vec![i.into()])).unwrap();
        }
        let mut a = TableData::new();
        for (i, target) in [
            (0, Some(0)),
            (1, Some(1)),
            (2, Some(2)),
            (3, Some(3)),
            (4, None),
        ] {
            let v = target.map(|t: i64| Value::Int(t)).unwrap_or(Value::Null);
            a.insert(&c, &as_, Row::new(vec![(i as i64).into(), v]))
                .unwrap();
        }
        (c, a, b, fk)
    }

    #[test]
    fn attribute_stats_counts() {
        let (c, a, _, _) = fixture();
        let attr = c.attr_id("a", "b_id").unwrap();
        let s = attribute_stats(&c, &a, attr);
        assert_eq!(s.rows, 5);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.distinct, 4);
        assert!((s.fill_factor() - 0.8).abs() < 1e-12);
        assert!((s.avg_fanout() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn even_join_has_high_nmi() {
        let (c, a, b, fk) = fixture();
        let js = join_stats(&c, fk, &a, &b);
        assert_eq!(js.pairs, 4);
        assert_eq!(js.referenced_distinct, 4);
        // Even coverage of all 4 referenced rows => NMI = 1.
        assert!((js.nmi - 1.0).abs() < 1e-9, "nmi={}", js.nmi);
    }

    #[test]
    fn empty_join_has_zero_nmi() {
        let mut c = Catalog::new();
        c.define_table("b")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .finish();
        c.define_table("a")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("b_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("a", "b_id", "b").unwrap();
        let fk = c.foreign_keys()[0];
        let bs = c.table(c.table_id("b").unwrap()).clone();
        let as_ = c.table(c.table_id("a").unwrap()).clone();
        let mut b = TableData::new();
        b.insert(&c, &bs, Row::new(vec![1.into()])).unwrap();
        let mut a = TableData::new();
        // All fk values NULL: join empty.
        a.insert(&c, &as_, Row::new(vec![1.into(), Value::Null]))
            .unwrap();
        let js = join_stats(&c, fk, &a, &b);
        assert!(js.is_empty_join());
        assert_eq!(js.nmi, 0.0);
    }

    #[test]
    fn skewed_join_has_lower_nmi_than_even() {
        let (c, _, b, fk) = fixture();
        let as_ = c.table(c.table_id("a").unwrap()).clone();
        // All rows reference key 0: maximal skew.
        let mut a = TableData::new();
        for i in 0..4i64 {
            a.insert(&c, &as_, Row::new(vec![i.into(), 0.into()]))
                .unwrap();
        }
        let js = join_stats(&c, fk, &a, &b);
        assert_eq!(js.pairs, 4);
        assert_eq!(js.referenced_distinct, 1);
        assert_eq!(js.nmi, 0.0); // single referenced key => zero entropy
    }

    /// Split a table's rows round-robin into `n` partitions.
    fn split(
        c: &Catalog,
        schema: &crate::schema::TableSchema,
        data: &TableData,
        n: usize,
    ) -> Vec<TableData> {
        let mut parts: Vec<TableData> = (0..n).map(|_| TableData::new()).collect();
        for (i, (_, row)) in data.iter().enumerate() {
            parts[i % n]
                .insert(c, schema, Row::new(row.values().to_vec()))
                .unwrap();
        }
        parts
    }

    #[test]
    fn attribute_accumulator_matches_whole_bitwise() {
        let (c, a, _, _) = fixture();
        let schema = c.table(c.table_id("a").unwrap()).clone();
        for attr_name in ["id", "b_id"] {
            let attr = c.attr_id("a", attr_name).unwrap();
            let whole = attribute_stats(&c, &a, attr);
            for n in [1usize, 2, 3] {
                let mut acc = AttributeStatsAccumulator::new();
                for part in &split(&c, &schema, &a, n) {
                    acc.absorb(&c, part, attr);
                }
                assert_eq!(acc.finish(), whole, "attr {attr_name}, {n} partitions");
                // Merging sub-accumulators is the same as one big absorb.
                let parts = split(&c, &schema, &a, n);
                let mut merged = AttributeStatsAccumulator::new();
                for part in &parts {
                    let mut sub = AttributeStatsAccumulator::new();
                    sub.absorb(&c, part, attr);
                    merged.merge(sub);
                }
                assert_eq!(merged.finish(), whole);
            }
        }
    }

    #[test]
    fn join_accumulator_matches_whole_bitwise() {
        let (c, a, b, fk) = fixture();
        let as_ = c.table(c.table_id("a").unwrap()).clone();
        let bs = c.table(c.table_id("b").unwrap()).clone();
        let whole = join_stats(&c, fk, &a, &b);
        for n in [1usize, 2, 3] {
            let mut acc = JoinStatsAccumulator::new();
            for part in &split(&c, &as_, &a, n) {
                acc.absorb_referencing(&c, fk, part);
            }
            for part in &split(&c, &bs, &b, n) {
                acc.absorb_referenced(&c, fk, part);
            }
            let merged = acc.finish();
            assert_eq!(merged.pairs, whole.pairs);
            assert_eq!(merged.referenced_distinct, whole.referenced_distinct);
            assert_eq!(merged.referencing_rows, whole.referencing_rows);
            assert_eq!(merged.referenced_rows, whole.referenced_rows);
            assert_eq!(
                merged.nmi.to_bits(),
                whole.nmi.to_bits(),
                "nmi bits, {n} partitions"
            );
        }
    }

    #[test]
    fn join_accumulator_filters_dangling_references_at_finish() {
        // A referencing value whose PK lives in no absorbed partition must
        // not count as a pair — the filter the whole-table path applies
        // per-row happens at finish() here.
        let (c, _, b, fk) = fixture();
        let as_ = c.table(c.table_id("a").unwrap()).clone();
        let mut a = TableData::new();
        a.insert(&c, &as_, Row::new(vec![0.into(), Value::Int(99)]))
            .unwrap();
        a.insert(&c, &as_, Row::new(vec![1.into(), Value::Int(0)]))
            .unwrap();
        let mut acc = JoinStatsAccumulator::new();
        acc.absorb_referencing(&c, fk, &a);
        acc.absorb_referenced(&c, fk, &b);
        let js = acc.finish();
        assert_eq!(js.pairs, 1, "dangling 99 filtered");
        assert_eq!(js.referenced_distinct, 1);
        let whole = join_stats(&c, fk, &a, &b);
        assert_eq!(js.nmi.to_bits(), whole.nmi.to_bits());
    }

    #[test]
    fn entropy_helper() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[5]), 0.0);
        let h = entropy(&[1, 1, 1, 1]);
        assert!((h - (4f64).ln()).abs() < 1e-12);
    }
}
