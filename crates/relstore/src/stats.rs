//! Instance statistics: per-attribute summaries and per-foreign-key join
//! statistics, including the mutual-information measure the backward module
//! uses to weight schema-graph edges.
//!
//! Following the paper (§3, backward module) and its citation of Yang et
//! al.'s summary graphs, each PK–FK edge is scored by the mutual information
//! carried by the join. For a foreign key `A.fk → B.pk` the join result
//! pairs each `A` row with at most one `B` row, so the mutual information of
//! the join-tuple distribution reduces to the entropy of the referenced-key
//! distribution. Normalizing by `ln |B|` yields an *informativeness* in
//! [0, 1]: 1 when the join evenly covers the referenced table, 0 when the
//! join is empty. Edges of uninformative (likely-empty) joins receive larger
//! distances, steering Steiner trees toward join paths that actually contain
//! tuples.

use std::collections::HashMap;

use crate::schema::{AttrId, Catalog, ForeignKey};
use crate::table::TableData;
use crate::value::Value;

/// Summary statistics for one attribute.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributeStats {
    /// Total rows in the table.
    pub rows: u64,
    /// NULLs in this column.
    pub nulls: u64,
    /// Distinct non-null values.
    pub distinct: u64,
}

impl AttributeStats {
    /// Fraction of rows that are non-null; 0 for an empty table.
    pub fn fill_factor(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            (self.rows - self.nulls) as f64 / self.rows as f64
        }
    }

    /// Average number of rows sharing one value (selectivity proxy).
    pub fn avg_fanout(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            (self.rows - self.nulls) as f64 / self.distinct as f64
        }
    }
}

/// Statistics of one foreign-key join.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinStats {
    /// Number of matching (referencing, referenced) pairs.
    pub pairs: u64,
    /// Distinct referenced primary keys actually referenced.
    pub referenced_distinct: u64,
    /// Rows in the referencing table.
    pub referencing_rows: u64,
    /// Rows in the referenced table.
    pub referenced_rows: u64,
    /// Normalized mutual information of the join in [0, 1].
    pub nmi: f64,
}

impl JoinStats {
    /// Whether the join produces any tuples at all.
    pub fn is_empty_join(&self) -> bool {
        self.pairs == 0
    }
}

/// Compute stats for one attribute column.
pub fn attribute_stats(catalog: &Catalog, data: &TableData, attr: AttrId) -> AttributeStats {
    let a = catalog.attribute(attr);
    let mut distinct: HashMap<&Value, ()> = HashMap::new();
    let mut nulls = 0u64;
    let mut rows = 0u64;
    for (_, row) in data.iter() {
        rows += 1;
        let v = row.get(a.position);
        if v.is_null() {
            nulls += 1;
        } else {
            distinct.insert(v, ());
        }
    }
    AttributeStats {
        rows,
        nulls,
        distinct: distinct.len() as u64,
    }
}

/// Compute join statistics for a foreign key given both tables' data.
pub fn join_stats(
    catalog: &Catalog,
    fk: ForeignKey,
    referencing: &TableData,
    referenced: &TableData,
) -> JoinStats {
    let from_attr = catalog.attribute(fk.from);
    let to_attr = catalog.attribute(fk.to);

    // Count how many referencing rows point at each referenced key.
    let mut ref_counts: HashMap<Value, u64> = HashMap::new();
    let mut pairs = 0u64;
    for (_, row) in referencing.iter() {
        let v = row.get(from_attr.position);
        if v.is_null() {
            continue;
        }
        // The referenced side is a primary key, so matching is a PK lookup.
        if referenced.lookup_pk(std::slice::from_ref(v)).is_some() {
            pairs += 1;
            *ref_counts.entry(v.clone()).or_insert(0) += 1;
        }
    }
    let _ = to_attr; // position of the PK column is implied by the PK index

    let referenced_rows = referenced.len() as u64;
    let nmi = normalized_join_entropy(&ref_counts, pairs, referenced_rows);
    JoinStats {
        pairs,
        referenced_distinct: ref_counts.len() as u64,
        referencing_rows: referencing.len() as u64,
        referenced_rows,
        nmi,
    }
}

/// Entropy of the referenced-key distribution normalized by `ln(referenced
/// table size)`. See module docs for why this equals the join's mutual
/// information under a uniform distribution over join tuples.
fn normalized_join_entropy(
    ref_counts: &HashMap<Value, u64>,
    pairs: u64,
    referenced_rows: u64,
) -> f64 {
    if pairs == 0 || referenced_rows <= 1 {
        return 0.0;
    }
    let n = pairs as f64;
    // Canonical (sorted) summation order: entropy depends only on the
    // multiset of counts, and hash-order summation would make the NMI — and
    // everything downstream of the edge weights — vary between builds by
    // floating-point ulps.
    let mut counts: Vec<u64> = ref_counts.values().copied().collect();
    counts.sort_unstable();
    let mut h = 0.0;
    for &c in &counts {
        let p = c as f64 / n;
        h -= p * p.ln();
    }
    let hmax = (referenced_rows as f64).ln();
    if hmax <= 0.0 {
        0.0
    } else {
        (h / hmax).clamp(0.0, 1.0)
    }
}

/// Shannon entropy (nats) of an empirical count distribution.
pub fn entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::types::DataType;

    fn fixture() -> (Catalog, TableData, TableData, ForeignKey) {
        let mut c = Catalog::new();
        c.define_table("b")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .finish();
        c.define_table("a")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("b_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("a", "b_id", "b").unwrap();
        let fk = c.foreign_keys()[0];
        let bs = c.table(c.table_id("b").unwrap()).clone();
        let as_ = c.table(c.table_id("a").unwrap()).clone();
        let mut b = TableData::new();
        for i in 0..4 {
            b.insert(&c, &bs, Row::new(vec![i.into()])).unwrap();
        }
        let mut a = TableData::new();
        for (i, target) in [
            (0, Some(0)),
            (1, Some(1)),
            (2, Some(2)),
            (3, Some(3)),
            (4, None),
        ] {
            let v = target.map(|t: i64| Value::Int(t)).unwrap_or(Value::Null);
            a.insert(&c, &as_, Row::new(vec![(i as i64).into(), v]))
                .unwrap();
        }
        (c, a, b, fk)
    }

    #[test]
    fn attribute_stats_counts() {
        let (c, a, _, _) = fixture();
        let attr = c.attr_id("a", "b_id").unwrap();
        let s = attribute_stats(&c, &a, attr);
        assert_eq!(s.rows, 5);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.distinct, 4);
        assert!((s.fill_factor() - 0.8).abs() < 1e-12);
        assert!((s.avg_fanout() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn even_join_has_high_nmi() {
        let (c, a, b, fk) = fixture();
        let js = join_stats(&c, fk, &a, &b);
        assert_eq!(js.pairs, 4);
        assert_eq!(js.referenced_distinct, 4);
        // Even coverage of all 4 referenced rows => NMI = 1.
        assert!((js.nmi - 1.0).abs() < 1e-9, "nmi={}", js.nmi);
    }

    #[test]
    fn empty_join_has_zero_nmi() {
        let mut c = Catalog::new();
        c.define_table("b")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .finish();
        c.define_table("a")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("b_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("a", "b_id", "b").unwrap();
        let fk = c.foreign_keys()[0];
        let bs = c.table(c.table_id("b").unwrap()).clone();
        let as_ = c.table(c.table_id("a").unwrap()).clone();
        let mut b = TableData::new();
        b.insert(&c, &bs, Row::new(vec![1.into()])).unwrap();
        let mut a = TableData::new();
        // All fk values NULL: join empty.
        a.insert(&c, &as_, Row::new(vec![1.into(), Value::Null]))
            .unwrap();
        let js = join_stats(&c, fk, &a, &b);
        assert!(js.is_empty_join());
        assert_eq!(js.nmi, 0.0);
    }

    #[test]
    fn skewed_join_has_lower_nmi_than_even() {
        let (c, _, b, fk) = fixture();
        let as_ = c.table(c.table_id("a").unwrap()).clone();
        // All rows reference key 0: maximal skew.
        let mut a = TableData::new();
        for i in 0..4i64 {
            a.insert(&c, &as_, Row::new(vec![i.into(), 0.into()]))
                .unwrap();
        }
        let js = join_stats(&c, fk, &a, &b);
        assert_eq!(js.pairs, 4);
        assert_eq!(js.referenced_distinct, 1);
        assert_eq!(js.nmi, 0.0); // single referenced key => zero entropy
    }

    #[test]
    fn entropy_helper() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[5]), 0.0);
        let h = entropy(&[1, 1, 1, 1]);
        assert!((h - (4f64).ln()).abs() < 1e-12);
    }
}
