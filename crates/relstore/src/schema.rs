//! Relational schema catalog: tables, attributes, keys and foreign keys.
//!
//! The catalog is the single source of truth QUEST's forward and backward
//! modules read: database *terms* (table names, attribute names, attribute
//! domains) come from here, and the backward module's schema graph is built
//! from the primary-key / foreign-key structure recorded here.

use std::collections::HashMap;
use std::fmt;

use crate::error::StoreError;
use crate::types::DataType;

/// Identifier of a table within a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifier of an attribute, global across the catalog (not per-table).
///
/// Global ids make attributes directly usable as graph-node ids in the
/// backward module's schema graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}
impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A column of a table.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// Global attribute id.
    pub id: AttrId,
    /// Owning table.
    pub table: TableId,
    /// Column name (unique within the table).
    pub name: String,
    /// Static type.
    pub data_type: DataType,
    /// Position within the table, 0-based.
    pub position: usize,
    /// Whether this column is part of the table's primary key.
    pub in_primary_key: bool,
    /// Whether NULLs are allowed.
    pub nullable: bool,
    /// Whether a full-text index should be maintained for this column.
    pub full_text: bool,
}

/// A foreign-key edge from one attribute to the primary-key attribute of
/// another table. QUEST models FKs attribute-to-attribute, which is exactly
/// what the schema graph needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    /// Referencing attribute (the FK column).
    pub from: AttrId,
    /// Referenced attribute (a PK column of the target table).
    pub to: AttrId,
}

/// A table definition.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Table id.
    pub id: TableId,
    /// Table name, unique within the catalog.
    pub name: String,
    /// Attributes in declaration order.
    pub attributes: Vec<AttrId>,
    /// Primary key attributes (subset of `attributes`), in key order.
    pub primary_key: Vec<AttrId>,
}

/// The schema catalog for one database.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableSchema>,
    attributes: Vec<Attribute>,
    foreign_keys: Vec<ForeignKey>,
    table_by_name: HashMap<String, TableId>,
    attr_by_name: HashMap<(TableId, String), AttrId>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Begin defining a new table. Fails if the name is already taken.
    pub fn define_table(&mut self, name: &str) -> Result<TableBuilder<'_>, StoreError> {
        if name.trim().is_empty() {
            return Err(StoreError::InvalidSchema("empty table name".into()));
        }
        if self.table_by_name.contains_key(name) {
            return Err(StoreError::DuplicateTable(name.to_string()));
        }
        let id = TableId(self.tables.len() as u32);
        self.tables.push(TableSchema {
            id,
            name: name.to_string(),
            attributes: Vec::new(),
            primary_key: Vec::new(),
        });
        self.table_by_name.insert(name.to_string(), id);
        Ok(TableBuilder {
            catalog: self,
            table: id,
        })
    }

    /// Resume defining an existing table (used by restore tooling that
    /// reads a table name before its attribute list). The returned builder
    /// appends attributes after any already defined.
    pub fn resume_table(&mut self, id: TableId) -> Result<TableBuilder<'_>, StoreError> {
        if (id.0 as usize) >= self.tables.len() {
            return Err(StoreError::UnknownTable(id.to_string()));
        }
        Ok(TableBuilder {
            catalog: self,
            table: id,
        })
    }

    /// Register a foreign key `from_table.from_attr -> to_table's PK`.
    ///
    /// The referenced table must have a single-attribute primary key (QUEST's
    /// schema graph connects attribute pairs).
    pub fn add_foreign_key(
        &mut self,
        from_table: &str,
        from_attr: &str,
        to_table: &str,
    ) -> Result<(), StoreError> {
        let from = self.attr_id(from_table, from_attr)?;
        let to_tid = self.table_id(to_table)?;
        let pk = &self.table(to_tid).primary_key;
        if pk.len() != 1 {
            return Err(StoreError::InvalidSchema(format!(
                "foreign key target {to_table} must have a single-attribute primary key"
            )));
        }
        let to = pk[0];
        let from_ty = self.attribute(from).data_type;
        let to_ty = self.attribute(to).data_type;
        if from_ty != to_ty {
            return Err(StoreError::InvalidSchema(format!(
                "foreign key type mismatch: {from_table}.{from_attr} is {from_ty}, {to_table} pk is {to_ty}"
            )));
        }
        let fk = ForeignKey { from, to };
        if !self.foreign_keys.contains(&fk) {
            self.foreign_keys.push(fk);
        }
        Ok(())
    }

    /// All tables, in definition order.
    pub fn tables(&self) -> &[TableSchema] {
        &self.tables
    }

    /// All attributes, in global-id order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// All foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// A copy of this catalog with every foreign key dropped. Table and
    /// attribute ids are preserved, so rows, indexes and statistics keyed
    /// by them stay valid.
    ///
    /// This is the catalog a *shard* runs under: a shard holds only a
    /// partition of each table's rows, so a locally missing FK target may
    /// legitimately live on another shard — referential integrity is a
    /// global property the sharded store checks itself, before any record
    /// reaches a shard.
    pub fn without_foreign_keys(&self) -> Catalog {
        let mut c = self.clone();
        c.foreign_keys.clear();
        c
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of attributes across all tables.
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Result<TableId, StoreError> {
        self.table_by_name
            .get(name)
            .copied()
            .ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Table schema by id. Panics on a foreign id (ids are only minted here).
    pub fn table(&self, id: TableId) -> &TableSchema {
        &self.tables[id.0 as usize]
    }

    /// Look up an attribute id by `(table, column)` name.
    pub fn attr_id(&self, table: &str, attr: &str) -> Result<AttrId, StoreError> {
        let tid = self.table_id(table)?;
        self.attr_by_name
            .get(&(tid, attr.to_string()))
            .copied()
            .ok_or_else(|| StoreError::UnknownAttribute(format!("{table}.{attr}")))
    }

    /// Attribute by id.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.0 as usize]
    }

    /// Fully-qualified `table.attr` name of an attribute.
    pub fn qualified_name(&self, id: AttrId) -> String {
        let a = self.attribute(id);
        format!("{}.{}", self.table(a.table).name, a.name)
    }

    /// The single-attribute primary key of a table, if it has one.
    pub fn single_pk(&self, table: TableId) -> Option<AttrId> {
        let pk = &self.table(table).primary_key;
        if pk.len() == 1 {
            Some(pk[0])
        } else {
            None
        }
    }

    /// Foreign keys adjacent to a table (either endpoint in the table).
    pub fn fks_of_table(&self, table: TableId) -> Vec<ForeignKey> {
        self.foreign_keys
            .iter()
            .copied()
            .filter(|fk| {
                self.attribute(fk.from).table == table || self.attribute(fk.to).table == table
            })
            .collect()
    }

    /// Validate catalog-level invariants: every table has a primary key and
    /// at least one attribute. Called by `Database::new`.
    pub fn validate(&self) -> Result<(), StoreError> {
        for t in &self.tables {
            if t.attributes.is_empty() {
                return Err(StoreError::InvalidSchema(format!(
                    "table {} has no attributes",
                    t.name
                )));
            }
            if t.primary_key.is_empty() {
                return Err(StoreError::InvalidSchema(format!(
                    "table {} has no primary key",
                    t.name
                )));
            }
        }
        Ok(())
    }

    fn push_attribute(
        &mut self,
        table: TableId,
        name: &str,
        data_type: DataType,
        in_primary_key: bool,
        nullable: bool,
        full_text: bool,
    ) -> Result<AttrId, StoreError> {
        if name.trim().is_empty() {
            return Err(StoreError::InvalidSchema("empty attribute name".into()));
        }
        let key = (table, name.to_string());
        if self.attr_by_name.contains_key(&key) {
            return Err(StoreError::DuplicateAttribute(format!(
                "{}.{}",
                self.table(table).name,
                name
            )));
        }
        let id = AttrId(self.attributes.len() as u32);
        let position = self.table(table).attributes.len();
        self.attributes.push(Attribute {
            id,
            table,
            name: name.to_string(),
            data_type,
            position,
            in_primary_key,
            nullable: nullable && !in_primary_key,
            full_text,
        });
        self.attr_by_name.insert(key, id);
        let ts = &mut self.tables[table.0 as usize];
        ts.attributes.push(id);
        if in_primary_key {
            ts.primary_key.push(id);
        }
        Ok(id)
    }
}

/// Fluent builder returned by [`Catalog::define_table`].
pub struct TableBuilder<'a> {
    catalog: &'a mut Catalog,
    table: TableId,
}

impl<'a> TableBuilder<'a> {
    /// Add the primary-key column (non-null, not full-text indexed).
    pub fn pk(self, name: &str, ty: DataType) -> Result<Self, StoreError> {
        self.catalog
            .push_attribute(self.table, name, ty, true, false, false)?;
        Ok(self)
    }

    /// Add a regular column. Text columns are full-text indexed by default.
    pub fn col(self, name: &str, ty: DataType) -> Result<Self, StoreError> {
        let ft = ty.is_textual();
        self.catalog
            .push_attribute(self.table, name, ty, false, true, ft)?;
        Ok(self)
    }

    /// Add a column with explicit nullability and full-text indexing.
    pub fn col_opts(
        self,
        name: &str,
        ty: DataType,
        nullable: bool,
        full_text: bool,
    ) -> Result<Self, StoreError> {
        self.catalog
            .push_attribute(self.table, name, ty, false, nullable, full_text)?;
        Ok(self)
    }

    /// Finish, returning the new table's id.
    pub fn finish(self) -> TableId {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        c
    }

    #[test]
    fn builds_and_resolves_names() {
        let c = two_table_catalog();
        assert_eq!(c.table_count(), 2);
        assert_eq!(c.attribute_count(), 5);
        let a = c.attr_id("movie", "title").unwrap();
        assert_eq!(c.qualified_name(a), "movie.title");
        assert!(c.attribute(a).full_text);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = two_table_catalog();
        assert!(matches!(
            c.define_table("person").err(),
            Some(StoreError::DuplicateTable(_))
        ));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut c = Catalog::new();
        let b = c
            .define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap();
        assert!(b.col("id", DataType::Text).is_err());
    }

    #[test]
    fn fk_requires_single_pk_and_matching_type() {
        let mut c = Catalog::new();
        c.define_table("a")
            .unwrap()
            .pk("k1", DataType::Int)
            .unwrap()
            .pk("k2", DataType::Int)
            .unwrap()
            .finish();
        c.define_table("b")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("a_ref", DataType::Int, true, false)
            .unwrap()
            .col("txt", DataType::Text)
            .unwrap()
            .finish();
        // composite pk target rejected
        assert!(c.add_foreign_key("b", "a_ref", "a").is_err());
        // type mismatch rejected
        c.define_table("c")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .finish();
        assert!(c.add_foreign_key("b", "txt", "c").is_err());
        // happy path
        c.add_foreign_key("b", "a_ref", "c").unwrap();
        assert_eq!(c.foreign_keys().len(), 1);
        // duplicates are idempotent
        c.add_foreign_key("b", "a_ref", "c").unwrap();
        assert_eq!(c.foreign_keys().len(), 1);
    }

    #[test]
    fn validate_catches_missing_pk() {
        let mut c = Catalog::new();
        c.define_table("t")
            .unwrap()
            .col("x", DataType::Int)
            .unwrap()
            .finish();
        assert!(c.validate().is_err());
    }

    #[test]
    fn fks_of_table_sees_both_directions() {
        let c = two_table_catalog();
        let person = c.table_id("person").unwrap();
        let movie = c.table_id("movie").unwrap();
        assert_eq!(c.fks_of_table(person).len(), 1);
        assert_eq!(c.fks_of_table(movie).len(), 1);
    }

    #[test]
    fn pk_attrs_are_non_nullable() {
        let c = two_table_catalog();
        let pk = c.attr_id("person", "id").unwrap();
        assert!(!c.attribute(pk).nullable);
        assert!(c.attribute(pk).in_primary_key);
    }
}
