//! Property-based tests for the storage engine: value ordering laws, the
//! tokenizer pipeline, and hash-join correctness against a nested-loop
//! reference executor.

use proptest::prelude::*;
use relstore::index::{normalize_keyword, tokenize};
use relstore::sql::{execute, JoinCondition, Predicate, Projection, SelectStatement};
use relstore::{Catalog, DataType, Database, Row, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1e6f64..1e6).prop_map(Value::float),
        "[a-z ]{0,12}".prop_map(Value::text),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        if a.cmp(&b) == Ordering::Less {
            prop_assert_eq!(b.cmp(&a), Ordering::Greater);
        }
        // Transitivity on a triple.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Eq consistent with Ordering::Equal.
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }

    #[test]
    fn equal_values_hash_equal(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let h = |v: &Value| {
                let mut s = DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            };
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    #[test]
    fn tokenizer_is_idempotent(s in "[A-Za-z0-9 ,.'-]{0,40}") {
        let once = tokenize(&s);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    #[test]
    fn normalized_keywords_match_their_own_index(word in "[a-z]{3,10}") {
        // Any word indexed must be findable through keyword normalization.
        let mut ix = relstore::index::AttributeIndex::new();
        ix.add(relstore::RowId(0), &word);
        if let Some(kw) = normalize_keyword(&word) {
            prop_assert!(ix.score(&kw) > 0.0, "word {word} -> kw {kw} not found");
        }
    }

    #[test]
    fn hash_join_matches_nested_loop(
        left in proptest::collection::vec((0i64..20, 0i64..10), 0..30),
        right in proptest::collection::vec(0i64..10, 0..10),
    ) {
        // Schema: r(id pk), l(id pk, r_id fk-ish but unchecked values in 0..10).
        let mut c = Catalog::new();
        c.define_table("r").expect("t").pk("id", DataType::Int).expect("pk").finish();
        c.define_table("l")
            .expect("t")
            .pk("id", DataType::Int)
            .expect("pk")
            .col_opts("r_id", DataType::Int, true, false)
            .expect("col")
            .finish();
        let mut db = Database::new(c).expect("db");
        let mut right_ids = Vec::new();
        for (i, r) in right.iter().enumerate() {
            // Dedup pk values.
            if right_ids.contains(r) { continue; }
            right_ids.push(*r);
            let _ = i;
            db.insert("r", Row::new(vec![(*r).into()])).expect("insert");
        }
        let mut seen = Vec::new();
        for (id, rid) in &left {
            if seen.contains(id) { continue; }
            seen.push(*id);
            db.insert_unchecked("l", Row::new(vec![(*id).into(), (*rid).into()])).expect("insert");
        }
        db.finalize();
        let cat = db.catalog();
        let stmt = SelectStatement {
            projection: Projection::Star,
            from: vec![cat.table_id("l").expect("t"), cat.table_id("r").expect("t")],
            joins: vec![JoinCondition {
                left: cat.attr_id("l", "r_id").expect("a"),
                right: cat.attr_id("r", "id").expect("a"),
            }],
            predicates: vec![],
            distinct: false,
            limit: None,
        };
        let rs = execute(&db, &stmt).expect("executes");
        // Nested-loop reference count.
        let mut expected = 0usize;
        for id in &seen {
            let rid = left.iter().find(|(i, _)| i == id).expect("present").1;
            if right_ids.contains(&rid) {
                expected += 1;
            }
        }
        prop_assert_eq!(rs.len(), expected);
    }

    #[test]
    fn distinct_never_increases_rows(
        vals in proptest::collection::vec(0i64..5, 1..30),
    ) {
        let mut c = Catalog::new();
        c.define_table("t")
            .expect("t")
            .pk("id", DataType::Int)
            .expect("pk")
            .col_opts("v", DataType::Int, false, false)
            .expect("col")
            .finish();
        let mut db = Database::new(c).expect("db");
        for (i, v) in vals.iter().enumerate() {
            db.insert("t", Row::new(vec![(i as i64).into(), (*v).into()])).expect("insert");
        }
        db.finalize();
        let cat = db.catalog();
        let mut stmt = SelectStatement::scan(cat.table_id("t").expect("t"));
        stmt.projection = Projection::Attrs(vec![cat.attr_id("t", "v").expect("a")]);
        let plain = execute(&db, &stmt).expect("ok").len();
        stmt.distinct = true;
        let distinct = execute(&db, &stmt).expect("ok").len();
        prop_assert!(distinct <= plain);
        prop_assert_eq!(plain, vals.len());
        // Distinct equals the number of unique values.
        let mut uniq = vals.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(distinct, uniq.len());
    }

    #[test]
    fn contains_predicate_subset_of_scan(
        words in proptest::collection::vec("[a-z]{3,8}", 1..15),
        probe in "[a-z]{3,8}",
    ) {
        let mut c = Catalog::new();
        c.define_table("t")
            .expect("t")
            .pk("id", DataType::Int)
            .expect("pk")
            .col("s", DataType::Text)
            .expect("col")
            .finish();
        let mut db = Database::new(c).expect("db");
        for (i, w) in words.iter().enumerate() {
            db.insert("t", Row::new(vec![(i as i64).into(), w.clone().into()])).expect("insert");
        }
        db.finalize();
        let cat = db.catalog();
        let mut stmt = SelectStatement::scan(cat.table_id("t").expect("t"));
        stmt.predicates.push(Predicate::Contains {
            attr: cat.attr_id("t", "s").expect("a"),
            keyword: probe.clone(),
        });
        let hits = execute(&db, &stmt).expect("ok").len();
        prop_assert!(hits <= words.len());
        // The index agrees with the executor on match count.
        let ix_hits = db
            .search_rows(cat.attr_id("t", "s").expect("a"), &probe, usize::MAX)
            .len();
        prop_assert_eq!(hits, ix_hits, "executor vs index disagree for {}", probe);
    }
}

// ---------------------------------------------------------------------------
// Hot-path properties: the allocation-lean tokenizer, the bulk-build index
// path, and the O(1) prepared-probe scoring must each be bit-identical to
// the straightforward implementations they replaced.

/// The pre-optimization tokenizer — *including its stemmer* — kept
/// verbatim as the reference the allocation-lean `tokenize_with` /
/// `stem_in_place` pipeline is fuzzed against. Importing the production
/// `stem` here would compare the refactored code against itself and pin
/// nothing.
mod reference_tokenizer {
    use relstore::index::is_stopword;

    pub fn stem(token: &str) -> String {
        let mut t = token.to_string();
        let n = t.len();
        if n >= 5 && t.ends_with("sses") {
            t.truncate(n - 2);
        } else if n >= 4 && t.ends_with("ies") {
            t.truncate(n - 3);
            t.push('y');
        } else if t.ends_with("ss") {
            // keep: "class", "press"
        } else if n >= 4 && t.ends_with('s') {
            t.truncate(n - 1);
        } else if n >= 6 && t.ends_with("ing") {
            t.truncate(n - 3);
        } else if n >= 5 && t.ends_with("ed") {
            t.truncate(n - 2);
        }
        let n = t.len();
        if n >= 4 && t.ends_with("ie") {
            t.truncate(n - 2);
            t.push('y');
        }
        t
    }

    pub fn tokenize(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                cur.extend(ch.to_lowercase());
            } else if !cur.is_empty() {
                push_token(&mut out, &cur);
                cur.clear();
            }
        }
        if !cur.is_empty() {
            push_token(&mut out, &cur);
        }
        out
    }

    fn push_token(out: &mut Vec<String>, raw: &str) {
        if raw.is_empty() || is_stopword(raw) {
            return;
        }
        out.push(stem(raw));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lean_tokenizer_matches_reference(s in "[A-Za-z0-9 ,.'\u{e4}\u{d6}\u{3b1}\u{130}-]{0,48}") {
        // Mixed ASCII/Unicode, punctuation, stopwords, casing: the in-place
        // fast path must reproduce the old per-token-allocation pipeline
        // exactly, token for token.
        prop_assert_eq!(tokenize(&s), reference_tokenizer::tokenize(&s));
        let mut streamed = Vec::new();
        relstore::index::tokenize_with(&s, |t| streamed.push(t.to_string()));
        prop_assert_eq!(streamed, reference_tokenizer::tokenize(&s));
    }

    #[test]
    fn stem_in_place_matches_old_stem(s in "[a-z\u{e9}]{0,12}") {
        let mut buf = s.clone();
        relstore::index::stem_in_place(&mut buf);
        prop_assert_eq!(&buf, &reference_tokenizer::stem(&s));
        prop_assert_eq!(relstore::index::stem(&s), reference_tokenizer::stem(&s));
    }
}

/// Word pool for index property tests: token collisions, repeats (max-tf
/// churn), stopwords, phrases, empties.
const INDEX_WORDS: [&str; 8] = [
    "wind",
    "wind wind wind",
    "gone with the wind",
    "casablanca",
    "the of",
    "",
    "kane citizen kane kane",
    "wind rises",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bulk_build_matches_arbitrary_incremental_interleavings(
        ops in proptest::collection::vec((0u8..3, 0u64..10, 0usize..8), 0..50)
    ) {
        use relstore::index::AttributeIndex;
        // Drive the incremental index through adds/removes/re-adds; mirror
        // the live rows; then bulk-build over the survivors (in slot order
        // *and* reversed) and demand bitwise equality.
        let mut live: Vec<(u64, &str)> = Vec::new();
        let mut ix = AttributeIndex::new();
        for &(op, rid, w) in &ops {
            let text = INDEX_WORDS[w % INDEX_WORDS.len()];
            match op % 3 {
                0 => {
                    if !live.iter().any(|(r, _)| *r == rid) {
                        ix.add(relstore::RowId(rid), text);
                        live.push((rid, text));
                    }
                }
                _ => {
                    if let Some(at) = live.iter().position(|(r, _)| *r == rid) {
                        let (_, t) = live.remove(at);
                        ix.remove(relstore::RowId(rid), t);
                    }
                }
            }
        }
        live.sort_by_key(|(r, _)| *r);
        let mut bulk = AttributeIndex::new();
        for &(r, t) in &live {
            bulk.add_bulk(relstore::RowId(r), t);
        }
        bulk.finish_build();
        prop_assert_eq!(&bulk, &ix, "bulk build diverged after {} ops", ops.len());
        let mut reversed = AttributeIndex::new();
        for &(r, t) in live.iter().rev() {
            reversed.add_bulk(relstore::RowId(r), t);
        }
        reversed.finish_build();
        prop_assert_eq!(&reversed, &ix, "bulk load order leaked into the index");
    }

    #[test]
    fn prepared_probe_scores_match_reference_bitwise(
        values in proptest::collection::vec(0usize..8, 0..12),
        probe_word in 0usize..8,
        extra in "[a-z]{0,6}",
    ) {
        use relstore::index::{AttributeIndex, KeywordProbe};
        let mut ix = AttributeIndex::new();
        for (i, w) in values.iter().enumerate() {
            ix.add(relstore::RowId(i as u64), INDEX_WORDS[*w % INDEX_WORDS.len()]);
        }
        for kw in [INDEX_WORDS[probe_word % INDEX_WORDS.len()], extra.as_str(), "wind", "the"] {
            let fast = ix.score(kw);
            let reference = ix.score_reference(kw);
            prop_assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "probe diverged for {:?}: {} vs {}", kw, fast, reference
            );
            if let Some(p) = KeywordProbe::new(kw) {
                prop_assert_eq!(ix.score_probe(&p).to_bits(), reference.to_bits());
                prop_assert_eq!(ix.search_probe(&p, 5), ix.search(kw, 5));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Live-mutation properties: any interleaving of insert / delete / update
// must leave every inverted index and all statistics bit-identical to a
// database rebuilt from scratch over the final rows, and the instance must
// pass full integrity validation after every accepted operation.

/// Small word pool so random texts collide on tokens (shared postings,
/// multi-token values, stopwords, and empty strings all get exercised).
const WORDS: [&str; 8] = [
    "wind",
    "gone with the wind",
    "casablanca",
    "the",
    "",
    "wind rises",
    "kane citizen kane",
    "vertigo",
];

fn mutation_db() -> Database {
    let mut c = Catalog::new();
    c.define_table("author")
        .expect("t")
        .pk("id", DataType::Int)
        .expect("pk")
        .col("name", DataType::Text)
        .expect("col")
        .finish();
    c.define_table("book")
        .expect("t")
        .pk("id", DataType::Int)
        .expect("pk")
        .col("title", DataType::Text)
        .expect("col")
        .col_opts("author_id", DataType::Int, true, false)
        .expect("col")
        .finish();
    c.add_foreign_key("book", "author_id", "author")
        .expect("fk");
    let mut db = Database::new(c).expect("db");
    db.finalize();
    db
}

/// One scripted operation: `(op, id, word, ref_id)`. Interpreted against
/// whatever state the database happens to be in — constraint violations
/// (duplicate keys, RI restricts, missing rows) are expected outcomes, not
/// failures; the property is that *whatever* the checked API accepted, the
/// maintained state equals a rebuild.
fn apply_mutation(db: &mut Database, op: &(u8, i64, usize, i64)) {
    let (kind, id, word, ref_id) = *op;
    let text = Value::text(WORDS[word % WORDS.len()]);
    let author_ref = if ref_id % 3 == 0 {
        Value::Null
    } else {
        Value::Int(ref_id)
    };
    let _ = match kind % 6 {
        0 => db.insert("author", Row::new(vec![id.into(), text])),
        1 => db.insert("book", Row::new(vec![id.into(), text, author_ref])),
        2 => db.delete("author", &[Value::Int(id)]),
        3 => db.delete("book", &[Value::Int(id)]),
        4 => db.update("author", &[Value::Int(id)], Row::new(vec![id.into(), text])),
        _ => db.update(
            "book",
            &[Value::Int(id)],
            Row::new(vec![id.into(), text, author_ref]),
        ),
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interleaved_mutations_match_rebuild(
        ops in proptest::collection::vec((0u8..6, 0i64..8, 0usize..8, 0i64..8), 0..60)
    ) {
        let mut db = mutation_db();
        for op in &ops {
            apply_mutation(&mut db, op);
        }
        prop_assert!(db.is_finalized(), "mutations keep the database finalized");
        db.validate().expect("maintained instance passes integrity validation");

        // Rebuild from scratch over the exact same final rows.
        let mut rebuilt = db.clone();
        rebuilt.finalize();
        for attr in db.catalog().attributes() {
            prop_assert_eq!(
                db.index(attr.id),
                rebuilt.index(attr.id),
                "inverted index of {} diverged from rebuild after {} ops",
                db.catalog().qualified_name(attr.id),
                ops.len()
            );
            prop_assert_eq!(db.attr_stats(attr.id), rebuilt.attr_stats(attr.id));
        }
        for fk in db.catalog().foreign_keys() {
            prop_assert_eq!(db.fk_stats(*fk), rebuilt.fk_stats(*fk));
        }
    }

    #[test]
    fn accepted_mutations_preserve_referential_integrity(
        ops in proptest::collection::vec((0u8..6, 0i64..8, 0usize..8, 0i64..8), 0..40)
    ) {
        let mut db = mutation_db();
        for op in &ops {
            apply_mutation(&mut db, op);
            // The checked API must never let the instance go inconsistent,
            // not even transiently between operations.
            db.validate().expect("instance stays consistent after every op");
        }
    }
}
