//! # quest-graph — weighted graphs and top-k Steiner trees for QUEST
//!
//! The backward module builds a weighted graph over the *database schema*
//! (one node per attribute; edges between a table's primary key and its
//! other attributes, and between primary/foreign key pairs) and finds the
//! top-k minimum-cost Steiner trees connecting the schema elements selected
//! by a configuration (paper §2–3). This crate provides:
//!
//! * [`Graph`] — a compact undirected weighted graph;
//! * [`top_k_steiner`] — DPBF-based top-k Steiner tree enumeration (Ding et
//!   al.) with duplicate and super-tree suppression;
//! * [`top_k_steiner_with`] — the same enumeration through reusable
//!   [`SteinerScratch`] buffers with an admissible dominance prune,
//!   bit-identical to the reference and certified in debug builds against
//!   [`steiner_lower_bound`] (the exact 1-best tree cost);
//! * [`mst_approximation`] — the classic metric-closure 2-approximation,
//!   kept as a baseline/ablation;
//! * [`dijkstra()`](dijkstra::dijkstra) — shortest paths.
//!
//! ```
//! use quest_graph::{top_k_steiner, Graph, NodeId, SteinerConfig};
//!
//! // A path 0—1—2—3 of unit edges, plus a direct 0—3 shortcut of cost 2.
//! let mut g = Graph::with_nodes(4);
//! g.add_edge(NodeId(0), NodeId(1), 1.0)?;
//! g.add_edge(NodeId(1), NodeId(2), 1.0)?;
//! g.add_edge(NodeId(2), NodeId(3), 1.0)?;
//! g.add_edge(NodeId(0), NodeId(3), 2.0)?;
//!
//! // Best two trees connecting the terminals {0, 3}: the shortcut wins.
//! let trees = top_k_steiner(&g, &[NodeId(0), NodeId(3)], &SteinerConfig::top_k(2))?;
//! assert_eq!(trees[0].cost(), 2.0);
//! assert!(trees[1].cost() >= trees[0].cost());
//! # Ok::<(), quest_graph::GraphError>(())
//! ```

#![warn(missing_docs)]

pub mod dijkstra;
pub mod error;
pub mod graph;
pub mod mst;
pub mod steiner;
pub mod tree;

pub use dijkstra::{dijkstra, ShortestPaths};
pub use error::GraphError;
pub use graph::{Edge, Graph, NodeId};
pub use mst::mst_approximation;
pub use steiner::{
    steiner_lower_bound, steiner_lower_bound_with, top_k_steiner, top_k_steiner_with,
    SteinerConfig, SteinerScratch, MAX_TERMINALS,
};
pub use tree::SteinerTree;
