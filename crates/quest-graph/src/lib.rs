//! # quest-graph — weighted graphs and top-k Steiner trees for QUEST
//!
//! The backward module builds a weighted graph over the *database schema*
//! (one node per attribute; edges between a table's primary key and its
//! other attributes, and between primary/foreign key pairs) and finds the
//! top-k minimum-cost Steiner trees connecting the schema elements selected
//! by a configuration (paper §2–3). This crate provides:
//!
//! * [`Graph`] — a compact undirected weighted graph;
//! * [`top_k_steiner`] — DPBF-based top-k Steiner tree enumeration (Ding et
//!   al.) with duplicate and super-tree suppression;
//! * [`mst_approximation`] — the classic metric-closure 2-approximation,
//!   kept as a baseline/ablation;
//! * [`dijkstra`] — shortest paths.

#![warn(missing_docs)]

pub mod dijkstra;
pub mod error;
pub mod graph;
pub mod mst;
pub mod steiner;
pub mod tree;

pub use dijkstra::{dijkstra, ShortestPaths};
pub use error::GraphError;
pub use graph::{Edge, Graph, NodeId};
pub use mst::mst_approximation;
pub use steiner::{top_k_steiner, SteinerConfig, MAX_TERMINALS};
pub use tree::SteinerTree;
