//! Compact undirected weighted graph.

use crate::error::GraphError;

/// Node identifier (index into the graph's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Non-negative weight (a *distance*: lower is better).
    pub weight: f64,
}

impl Edge {
    /// Canonical `(min, max)` endpoint pair, used as the edge's identity.
    pub fn key(&self) -> (NodeId, NodeId) {
        if self.a <= self.b {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        }
    }
}

/// An undirected graph with weighted edges and adjacency lists.
///
/// Parallel edges are collapsed to the minimum weight; self-loops are
/// rejected (they can never appear in a tree).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// adjacency[v] = list of (neighbor, edge index)
    adjacency: Vec<Vec<(NodeId, usize)>>,
}

impl Graph {
    /// Graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Graph {
        Graph {
            n,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Add one more node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.n as u32);
        self.n += 1;
        self.adjacency.push(Vec::new());
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge by index.
    pub fn edge(&self, i: usize) -> &Edge {
        &self.edges[i]
    }

    /// Add an undirected edge. Duplicate `(a, b)` pairs keep the smaller
    /// weight. Returns the edge index.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: f64) -> Result<usize, GraphError> {
        if a.0 as usize >= self.n || b.0 as usize >= self.n {
            return Err(GraphError::UnknownNode(a.0.max(b.0)));
        }
        if a == b {
            return Err(GraphError::SelfLoop(a.0));
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::BadWeight(weight));
        }
        // Collapse parallel edges.
        if let Some(&(_, idx)) = self.adjacency[a.0 as usize].iter().find(|(nb, _)| *nb == b) {
            if weight < self.edges[idx].weight {
                self.edges[idx].weight = weight;
            }
            return Ok(idx);
        }
        let idx = self.edges.len();
        self.edges.push(Edge { a, b, weight });
        self.adjacency[a.0 as usize].push((b, idx));
        self.adjacency[b.0 as usize].push((a, idx));
        Ok(idx)
    }

    /// Neighbors of `v` as `(neighbor, edge index)` pairs.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, usize)] {
        &self.adjacency[v.0 as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.0 as usize].len()
    }

    /// Whether all of `nodes` lie in one connected component.
    pub fn connects(&self, nodes: &[NodeId]) -> bool {
        let Some(&start) = nodes.first() else {
            return true;
        };
        let mut seen = vec![false; self.n];
        let mut stack = vec![start];
        seen[start.0 as usize] = true;
        while let Some(v) = stack.pop() {
            for &(u, _) in self.neighbors(v) {
                if !seen[u.0 as usize] {
                    seen[u.0 as usize] = true;
                    stack.push(u);
                }
            }
        }
        nodes.iter().all(|v| seen[v.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::with_nodes(3);
        let e = g.add_edge(NodeId(0), NodeId(1), 1.5).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.edge(e).weight, 1.5);
        assert_eq!(g.edge(e).key(), (NodeId(0), NodeId(1)));
    }

    #[test]
    fn parallel_edges_keep_min_weight() {
        let mut g = Graph::with_nodes(2);
        let e1 = g.add_edge(NodeId(0), NodeId(1), 5.0).unwrap();
        let e2 = g.add_edge(NodeId(1), NodeId(0), 2.0).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(e1).weight, 2.0);
        // A worse duplicate does not raise the weight back.
        g.add_edge(NodeId(0), NodeId(1), 9.0).unwrap();
        assert_eq!(g.edge(e1).weight, 2.0);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::with_nodes(2);
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(0), 1.0),
            Err(GraphError::SelfLoop(_))
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(9), 1.0),
            Err(GraphError::UnknownNode(_))
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), -1.0),
            Err(GraphError::BadWeight(_))
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), f64::NAN),
            Err(GraphError::BadWeight(_))
        ));
    }

    #[test]
    fn connectivity() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        assert!(g.connects(&[NodeId(0), NodeId(1)]));
        assert!(!g.connects(&[NodeId(0), NodeId(2)]));
        assert!(g.connects(&[]));
        let n = g.add_node();
        assert!(!g.connects(&[NodeId(0), n]));
    }
}
