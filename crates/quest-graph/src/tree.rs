//! Steiner tree values: edge sets with cost, canonical identity and the
//! sub-tree test used for suppression.

use crate::graph::{Graph, NodeId};

/// A tree in a graph, identified by its (canonically sorted) edge key set.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    /// Canonical sorted list of edge keys `(min endpoint, max endpoint)`.
    edges: Vec<(NodeId, NodeId)>,
    /// Total edge weight.
    cost: f64,
    /// The terminal nodes this tree was grown for.
    terminals: Vec<NodeId>,
}

impl SteinerTree {
    /// Build from edge keys; sorts and deduplicates them.
    pub fn new(mut edges: Vec<(NodeId, NodeId)>, cost: f64, mut terminals: Vec<NodeId>) -> Self {
        for e in edges.iter_mut() {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort();
        edges.dedup();
        terminals.sort();
        terminals.dedup();
        SteinerTree {
            edges,
            cost,
            terminals,
        }
    }

    /// Canonical edge list.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Total weight.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Terminals the tree connects.
    pub fn terminals(&self) -> &[NodeId] {
        &self.terminals
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the tree has no edges (single-terminal case).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// All nodes touched by the tree (terminals plus Steiner points).
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut ns: Vec<NodeId> = self
            .edges
            .iter()
            .flat_map(|(a, b)| [*a, *b])
            .chain(self.terminals.iter().copied())
            .collect();
        ns.sort();
        ns.dedup();
        ns
    }

    /// Steiner points: tree nodes that are not terminals.
    pub fn steiner_points(&self) -> Vec<NodeId> {
        self.nodes()
            .into_iter()
            .filter(|n| !self.terminals.contains(n))
            .collect()
    }

    /// Whether `self`'s edges are a subset of `other`'s (then `other` is a
    /// redundant super-tree of `self`).
    pub fn is_subtree_of(&self, other: &SteinerTree) -> bool {
        if self.edges.len() > other.edges.len() {
            return false;
        }
        // Both sorted: subset check by merge.
        let mut it = other.edges.iter();
        'outer: for e in &self.edges {
            for o in it.by_ref() {
                match o.cmp(e) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Verify against a graph: edges exist, structure is acyclic and
    /// connected, and every terminal is covered. Used by tests and by the
    /// backward module's debug assertions.
    pub fn validate(&self, graph: &Graph) -> bool {
        // All edges exist.
        for &(a, b) in &self.edges {
            let ok = graph.neighbors(a).iter().any(|(nb, _)| *nb == b);
            if !ok {
                return false;
            }
        }
        let nodes = self.nodes();
        if nodes.is_empty() {
            return self.terminals.len() <= 1;
        }
        // A connected graph with |E| = |V| - 1 is a tree.
        if self.edges.len() + 1 != nodes.len() {
            return false;
        }
        // Connectivity over tree edges only.
        let mut adj: std::collections::HashMap<NodeId, Vec<NodeId>> = Default::default();
        for &(a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![nodes[0]];
        seen.insert(nodes[0]);
        while let Some(v) = stack.pop() {
            if let Some(ns) = adj.get(&v) {
                for &u in ns {
                    if seen.insert(u) {
                        stack.push(u);
                    }
                }
            }
        }
        nodes.iter().all(|n| seen.contains(n)) && self.terminals.iter().all(|t| seen.contains(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(edges: &[(u32, u32)], cost: f64, terms: &[u32]) -> SteinerTree {
        SteinerTree::new(
            edges.iter().map(|&(a, b)| (NodeId(a), NodeId(b))).collect(),
            cost,
            terms.iter().map(|&x| NodeId(x)).collect(),
        )
    }

    #[test]
    fn canonicalizes_edges() {
        let a = t(&[(1, 0), (2, 1)], 2.0, &[0, 2]);
        let b = t(&[(1, 2), (0, 1)], 2.0, &[2, 0]);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.terminals(), b.terminals());
    }

    #[test]
    fn subtree_detection() {
        let small = t(&[(0, 1)], 1.0, &[0, 1]);
        let big = t(&[(0, 1), (1, 2)], 2.0, &[0, 2]);
        assert!(small.is_subtree_of(&big));
        assert!(!big.is_subtree_of(&small));
        assert!(small.is_subtree_of(&small));
        let other = t(&[(0, 2)], 1.0, &[0, 2]);
        assert!(!other.is_subtree_of(&big));
    }

    #[test]
    fn nodes_and_steiner_points() {
        let tree = t(&[(0, 1), (1, 2)], 2.0, &[0, 2]);
        assert_eq!(tree.nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(tree.steiner_points(), vec![NodeId(1)]);
    }

    #[test]
    fn validate_accepts_trees_and_rejects_cycles() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(0), 1.0).unwrap();
        let tree = t(&[(0, 1), (1, 2)], 2.0, &[0, 2]);
        assert!(tree.validate(&g));
        let cycle = t(&[(0, 1), (1, 2), (0, 2)], 3.0, &[0, 2]);
        assert!(!cycle.validate(&g));
        let ghost = t(&[(0, 3)], 1.0, &[0, 3]);
        assert!(!ghost.validate(&g)); // edge not in graph
        let singleton = t(&[], 0.0, &[1]);
        assert!(singleton.validate(&g));
    }
}
