//! Error type for the graph crate.

use std::fmt;

/// Errors raised by graph construction and Steiner tree search.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Node id out of range.
    UnknownNode(u32),
    /// Self loops are not representable in trees.
    SelfLoop(u32),
    /// Negative, NaN or infinite edge weight.
    BadWeight(f64),
    /// No terminals given to the Steiner search.
    NoTerminals,
    /// More terminals than the bitmask supports.
    TooManyTerminals {
        /// Maximum supported.
        max: usize,
        /// Requested.
        got: usize,
    },
    /// Terminals are not in a single connected component.
    Disconnected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(v) => write!(f, "unknown node {v}"),
            GraphError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            GraphError::BadWeight(w) => write!(f, "bad edge weight {w}"),
            GraphError::NoTerminals => write!(f, "no terminals given"),
            GraphError::TooManyTerminals { max, got } => {
                write!(f, "too many terminals: {got} (max {max})")
            }
            GraphError::Disconnected => write!(f, "terminals are disconnected"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(GraphError::TooManyTerminals { max: 16, got: 20 }
            .to_string()
            .contains("20"));
    }
}
