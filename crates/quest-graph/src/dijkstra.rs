//! Single-source shortest paths (Dijkstra) — used for metric closure in the
//! MST approximation baseline and for reachability pruning.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{Graph, NodeId};

/// Heap entry ordered by smallest distance first.
#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties by node for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest-path result from one source.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Distance per node (`f64::INFINITY` if unreachable).
    pub dist: Vec<f64>,
    /// Predecessor edge index per node (`usize::MAX` at source/unreachable).
    pub pred_edge: Vec<usize>,
}

impl ShortestPaths {
    /// Reconstruct the path to `target` as a list of edge indexes, or `None`
    /// if unreachable.
    pub fn path_edges(&self, graph: &Graph, target: NodeId) -> Option<Vec<usize>> {
        if self.dist[target.0 as usize].is_infinite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut v = target;
        while self.pred_edge[v.0 as usize] != usize::MAX {
            let ei = self.pred_edge[v.0 as usize];
            edges.push(ei);
            let e = graph.edge(ei);
            v = if e.a == v { e.b } else { e.a };
        }
        edges.reverse();
        Some(edges)
    }
}

/// Dijkstra from `source`.
pub fn dijkstra(graph: &Graph, source: NodeId) -> ShortestPaths {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred_edge = vec![usize::MAX; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.0 as usize] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapItem { dist: d, node: v }) = heap.pop() {
        let vi = v.0 as usize;
        if done[vi] {
            continue;
        }
        done[vi] = true;
        for &(u, ei) in graph.neighbors(v) {
            let ui = u.0 as usize;
            let nd = d + graph.edge(ei).weight;
            if nd < dist[ui] {
                dist[ui] = nd;
                pred_edge[ui] = ei;
                heap.push(HeapItem { dist: nd, node: u });
            }
        }
    }
    ShortestPaths { dist, pred_edge }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -5- 2 -1- 3
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 5.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g
    }

    #[test]
    fn finds_shortest_distances() {
        let g = diamond();
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist[0], 0.0);
        assert_eq!(sp.dist[1], 1.0);
        assert_eq!(sp.dist[3], 2.0);
        assert_eq!(sp.dist[2], 3.0); // via 0-1-3-2, not the direct 5.0 edge
    }

    #[test]
    fn reconstructs_path() {
        let g = diamond();
        let sp = dijkstra(&g, NodeId(0));
        let path = sp.path_edges(&g, NodeId(3)).unwrap();
        assert_eq!(path.len(), 2);
        let cost: f64 = path.iter().map(|&e| g.edge(e).weight).sum();
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = diamond();
        let lone = g.add_node();
        let sp = dijkstra(&g, NodeId(0));
        assert!(sp.dist[lone.0 as usize].is_infinite());
        assert!(sp.path_edges(&g, lone).is_none());
    }
}
