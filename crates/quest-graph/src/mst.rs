//! Metric-closure MST 2-approximation for Steiner trees.
//!
//! The classic Kou–Markowsky–Berman construction: build the complete graph
//! over the terminals weighted by shortest-path distances, take its minimum
//! spanning tree, expand each MST edge back into its underlying shortest
//! path, and prune non-terminal leaves. Used as a baseline/ablation against
//! the exact DPBF enumeration (a 2-approximation of the optimum).

use crate::dijkstra::dijkstra;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::tree::SteinerTree;

/// Compute a 2-approximate Steiner tree over `terminals`.
pub fn mst_approximation(graph: &Graph, terminals: &[NodeId]) -> Result<SteinerTree, GraphError> {
    let mut terms: Vec<NodeId> = terminals.to_vec();
    terms.sort();
    terms.dedup();
    if terms.is_empty() {
        return Err(GraphError::NoTerminals);
    }
    for t in &terms {
        if t.0 as usize >= graph.node_count() {
            return Err(GraphError::UnknownNode(t.0));
        }
    }
    if terms.len() == 1 {
        return Ok(SteinerTree::new(Vec::new(), 0.0, terms));
    }

    // Shortest paths from every terminal.
    let sps: Vec<_> = terms.iter().map(|t| dijkstra(graph, *t)).collect();
    for (i, sp) in sps.iter().enumerate() {
        for t in &terms {
            if sp.dist[t.0 as usize].is_infinite() {
                let _ = i;
                return Err(GraphError::Disconnected);
            }
        }
    }

    // Prim's MST over the metric closure of the terminals.
    let m = terms.len();
    let mut in_tree = vec![false; m];
    let mut best = vec![f64::INFINITY; m];
    let mut parent = vec![usize::MAX; m];
    best[0] = 0.0;
    let mut mst_edges: Vec<(usize, usize)> = Vec::new();
    for _ in 0..m {
        let mut u = usize::MAX;
        let mut ub = f64::INFINITY;
        for i in 0..m {
            if !in_tree[i] && best[i] < ub {
                ub = best[i];
                u = i;
            }
        }
        if u == usize::MAX {
            return Err(GraphError::Disconnected);
        }
        in_tree[u] = true;
        if parent[u] != usize::MAX {
            mst_edges.push((parent[u], u));
        }
        for v in 0..m {
            if !in_tree[v] {
                let d = sps[u].dist[terms[v].0 as usize];
                if d < best[v] {
                    best[v] = d;
                    parent[v] = u;
                }
            }
        }
    }

    // Expand MST edges into underlying graph edges (union).
    let mut edge_set: Vec<usize> = Vec::new();
    for (a, b) in mst_edges {
        let path = sps[a]
            .path_edges(graph, terms[b])
            .expect("distance finite implies path exists");
        for e in path {
            if !edge_set.contains(&e) {
                edge_set.push(e);
            }
        }
    }

    // Prune non-terminal leaves repeatedly (the union can contain detours).
    prune_leaves(graph, &mut edge_set, &terms);

    let cost: f64 = edge_set.iter().map(|&e| graph.edge(e).weight).sum();
    let keys = edge_set.iter().map(|&e| graph.edge(e).key()).collect();
    Ok(SteinerTree::new(keys, cost, terms))
}

fn prune_leaves(graph: &Graph, edges: &mut Vec<usize>, terminals: &[NodeId]) {
    loop {
        let mut degree: std::collections::HashMap<NodeId, usize> = Default::default();
        for &ei in edges.iter() {
            let e = graph.edge(ei);
            *degree.entry(e.a).or_insert(0) += 1;
            *degree.entry(e.b).or_insert(0) += 1;
        }
        let before = edges.len();
        edges.retain(|&ei| {
            let e = graph.edge(ei);
            let leaf_a = degree[&e.a] == 1 && !terminals.contains(&e.a);
            let leaf_b = degree[&e.b] == 1 && !terminals.contains(&e.b);
            !(leaf_a || leaf_b)
        });
        if edges.len() == before {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner::{top_k_steiner, SteinerConfig};

    fn star_with_ring() -> Graph {
        let mut g = Graph::with_nodes(4);
        for i in 1..4u32 {
            g.add_edge(NodeId(0), NodeId(i), 1.0).unwrap();
        }
        g.add_edge(NodeId(1), NodeId(2), 10.0).unwrap();
        g
    }

    #[test]
    fn approximation_connects_terminals() {
        let g = star_with_ring();
        let terms = [NodeId(1), NodeId(2), NodeId(3)];
        let t = mst_approximation(&g, &terms).unwrap();
        assert!(t.validate(&g));
        assert_eq!(t.cost(), 3.0); // optimal here
    }

    #[test]
    fn within_factor_two_of_optimal() {
        let mut g = Graph::with_nodes(6);
        let es = [
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
            (4, 5, 1.0),
            (5, 0, 1.0),
            (0, 3, 1.4),
        ];
        for (a, b, w) in es {
            g.add_edge(NodeId(a), NodeId(b), w).unwrap();
        }
        let terms = [NodeId(0), NodeId(2), NodeId(4)];
        let approx = mst_approximation(&g, &terms).unwrap();
        let opt = top_k_steiner(&g, &terms, &SteinerConfig::top_k(1)).unwrap();
        assert!(approx.cost() <= 2.0 * opt[0].cost() + 1e-9);
        assert!(approx.cost() >= opt[0].cost() - 1e-9);
    }

    #[test]
    fn disconnected_errors() {
        let mut g = star_with_ring();
        let lone = g.add_node();
        assert_eq!(
            mst_approximation(&g, &[NodeId(0), lone]).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn single_terminal_trivial() {
        let g = star_with_ring();
        let t = mst_approximation(&g, &[NodeId(2)]).unwrap();
        assert!(t.is_empty());
    }
}
