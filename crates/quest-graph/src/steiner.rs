//! Top-k minimum-cost Steiner tree enumeration.
//!
//! The backward module "adopts a Steiner Tree-based technique to select, for
//! each configuration, the top-k paths joining the involved database schema
//! elements", using "an extension of a previous algorithm [Ding et al., ICDE
//! 2007] that works at the schema level ... and that has in place a mechanism
//! for efficiently discarding Steiner Trees that are sub-trees of others that
//! have been previously computed" (paper §1, §3).
//!
//! The implementation is DPBF (dynamic programming, best first): states are
//! `(vertex, terminal-subset)` pairs explored in cost order, with *grow*
//! (extend by one edge) and *merge* (join two subtrees rooted at the same
//! vertex with disjoint terminal sets) transitions. For top-k enumeration,
//! up to `k` entries are retained per state (Ding et al.'s generalization),
//! and emitted trees that merely extend an already-emitted tree with extra
//! edges (redundant super-trees: same join path plus gratuitous joins) are
//! suppressed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::tree::SteinerTree;

/// Maximum number of terminals (bitmask width).
pub const MAX_TERMINALS: usize = 16;

/// Tuning knobs for the enumeration.
#[derive(Debug, Clone)]
pub struct SteinerConfig {
    /// How many trees to return.
    pub k: usize,
    /// Hard cap on heap pops (guards pathological graphs). 0 = default.
    pub max_expansions: usize,
    /// Drop emitted trees that are super-trees of earlier emitted trees.
    pub suppress_supertrees: bool,
}

impl Default for SteinerConfig {
    fn default() -> Self {
        SteinerConfig {
            k: 5,
            max_expansions: 2_000_000,
            suppress_supertrees: true,
        }
    }
}

impl SteinerConfig {
    /// Config returning `k` trees with default limits.
    pub fn top_k(k: usize) -> SteinerConfig {
        SteinerConfig {
            k,
            ..Default::default()
        }
    }
}

#[derive(Debug, Clone)]
struct QueueEntry {
    cost: f64,
    node: NodeId,
    mask: u32,
    /// Edge indexes of the partial tree.
    edges: Vec<usize>,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node && self.mask == other.mask
    }
}
impl Eq for QueueEntry {}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost; deterministic tie-breaks.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.edges.len().cmp(&self.edges.len()))
            .then_with(|| other.node.cmp(&self.node))
            .then_with(|| other.mask.cmp(&self.mask))
    }
}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Enumerate up to `cfg.k` minimum-cost Steiner trees connecting `terminals`,
/// in non-decreasing cost order.
///
/// Duplicate terminals are collapsed. A single terminal yields one empty
/// tree. Returns [`GraphError::Disconnected`] when the terminals do not share
/// a component.
pub fn top_k_steiner(
    graph: &Graph,
    terminals: &[NodeId],
    cfg: &SteinerConfig,
) -> Result<Vec<SteinerTree>, GraphError> {
    let mut terms: Vec<NodeId> = terminals.to_vec();
    terms.sort();
    terms.dedup();
    if terms.is_empty() {
        return Err(GraphError::NoTerminals);
    }
    for t in &terms {
        if t.0 as usize >= graph.node_count() {
            return Err(GraphError::UnknownNode(t.0));
        }
    }
    if terms.len() > MAX_TERMINALS {
        return Err(GraphError::TooManyTerminals {
            max: MAX_TERMINALS,
            got: terms.len(),
        });
    }
    if cfg.k == 0 {
        return Ok(Vec::new());
    }
    if terms.len() == 1 {
        return Ok(vec![SteinerTree::new(Vec::new(), 0.0, terms)]);
    }
    if !graph.connects(&terms) {
        return Err(GraphError::Disconnected);
    }

    let full: u32 = (1u32 << terms.len()) - 1;
    let term_bit: HashMap<NodeId, u32> = terms
        .iter()
        .enumerate()
        .map(|(i, t)| (*t, 1u32 << i))
        .collect();

    let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
    for t in &terms {
        heap.push(QueueEntry {
            cost: 0.0,
            node: *t,
            mask: term_bit[t],
            edges: Vec::new(),
        });
    }

    // Popped entries per (node, mask), capped at k each.
    let mut popped: HashMap<(NodeId, u32), Vec<QueueEntry>> = HashMap::new();
    let mut results: Vec<SteinerTree> = Vec::new();
    let max_expansions = if cfg.max_expansions == 0 {
        SteinerConfig::default().max_expansions
    } else {
        cfg.max_expansions
    };
    let mut pops = 0usize;

    while let Some(entry) = heap.pop() {
        pops += 1;
        if pops > max_expansions {
            break;
        }
        let state = (entry.node, entry.mask);
        let bucket = popped.entry(state).or_default();
        if bucket.len() >= cfg.k {
            continue;
        }
        // Skip exact duplicates (same edge set reached twice).
        if bucket.iter().any(|e| e.edges == entry.edges) {
            continue;
        }
        bucket.push(entry.clone());

        if entry.mask == full {
            let tree = to_tree(graph, &entry, &terms);
            if is_valid_tree(&tree) {
                let dup = results.iter().any(|r| r.edges() == tree.edges());
                let redundant =
                    cfg.suppress_supertrees && results.iter().any(|r| r.is_subtree_of(&tree));
                if !dup && !redundant {
                    results.push(tree);
                    if results.len() >= cfg.k {
                        break;
                    }
                }
            }
            continue; // growing a complete tree only adds dead weight
        }

        // Grow transitions.
        for &(u, ei) in graph.neighbors(entry.node) {
            if entry.edges.contains(&ei) {
                continue;
            }
            let mut edges = entry.edges.clone();
            edges.push(ei);
            let mask = entry.mask | term_bit.get(&u).copied().unwrap_or(0);
            heap.push(QueueEntry {
                cost: entry.cost + graph.edge(ei).weight,
                node: u,
                mask,
                edges,
            });
        }

        // Merge transitions with previously popped entries at the same node
        // whose terminal sets are disjoint.
        let merge_partners: Vec<QueueEntry> = popped
            .iter()
            .filter(|((n, m), _)| *n == entry.node && m & entry.mask == 0)
            .flat_map(|(_, es)| es.iter().cloned())
            .collect();
        for other in merge_partners {
            if let Some(edges) = union_if_tree(graph, &entry.edges, &other.edges, entry.node) {
                heap.push(QueueEntry {
                    cost: entry.cost + other.cost,
                    node: entry.node,
                    mask: entry.mask | other.mask,
                    edges,
                });
            }
        }
    }

    Ok(results)
}

/// Union two partial-tree edge sets rooted at `root`; `None` when the union
/// would contain a cycle (shared edge, or node shared anywhere but the root).
fn union_if_tree(graph: &Graph, a: &[usize], b: &[usize], root: NodeId) -> Option<Vec<usize>> {
    let mut edges: Vec<usize> = a.to_vec();
    for e in b {
        if edges.contains(e) {
            return None; // shared edge => cycle
        }
        edges.push(*e);
    }
    // Tree check: |nodes| must equal |edges| + 1.
    let mut nodes: Vec<NodeId> = edges
        .iter()
        .flat_map(|&ei| {
            let e = graph.edge(ei);
            [e.a, e.b]
        })
        .collect();
    nodes.push(root);
    nodes.sort();
    nodes.dedup();
    if nodes.len() == edges.len() + 1 {
        Some(edges)
    } else {
        None
    }
}

fn to_tree(graph: &Graph, entry: &QueueEntry, terms: &[NodeId]) -> SteinerTree {
    let keys: Vec<(NodeId, NodeId)> = entry.edges.iter().map(|&ei| graph.edge(ei).key()).collect();
    SteinerTree::new(keys, entry.cost, terms.to_vec())
}

fn is_valid_tree(tree: &SteinerTree) -> bool {
    // nodes() includes terminals; a tree over its nodes has |E| = |V| - 1.
    let n = tree.nodes().len();
    n == tree.len() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3-4 with unit weights.
    fn path5() -> Graph {
        let mut g = Graph::with_nodes(5);
        for i in 0..4u32 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        g
    }

    /// A graph with two distinct routes between terminals.
    ///     0 --1-- 1 --1-- 2
    ///     0 --1.5-------- 2
    fn two_routes() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 1.5).unwrap();
        g
    }

    #[test]
    fn single_terminal_is_empty_tree() {
        let g = path5();
        let ts = top_k_steiner(&g, &[NodeId(2)], &SteinerConfig::top_k(3)).unwrap();
        assert_eq!(ts.len(), 1);
        assert!(ts[0].is_empty());
        assert_eq!(ts[0].cost(), 0.0);
    }

    #[test]
    fn two_terminals_on_path() {
        let g = path5();
        let ts = top_k_steiner(&g, &[NodeId(0), NodeId(4)], &SteinerConfig::top_k(2)).unwrap();
        assert_eq!(ts.len(), 1); // only one simple tree exists
        assert_eq!(ts[0].cost(), 4.0);
        assert_eq!(ts[0].len(), 4);
        assert!(ts[0].validate(&g));
    }

    #[test]
    fn top2_ranks_alternative_routes() {
        let g = two_routes();
        let ts = top_k_steiner(&g, &[NodeId(0), NodeId(2)], &SteinerConfig::top_k(5)).unwrap();
        assert!(ts.len() >= 2);
        assert_eq!(ts[0].cost(), 1.5); // direct edge
        assert_eq!(ts[1].cost(), 2.0); // via node 1
        assert!(ts[0].cost() <= ts[1].cost());
        for t in &ts {
            assert!(t.validate(&g));
        }
    }

    #[test]
    fn three_terminals_star() {
        // Star: center 0, leaves 1,2,3 (weight 1 each); ring of weight 10.
        let mut g = Graph::with_nodes(4);
        for i in 1..4u32 {
            g.add_edge(NodeId(0), NodeId(i), 1.0).unwrap();
        }
        g.add_edge(NodeId(1), NodeId(2), 10.0).unwrap();
        let ts = top_k_steiner(
            &g,
            &[NodeId(1), NodeId(2), NodeId(3)],
            &SteinerConfig::top_k(1),
        )
        .unwrap();
        assert_eq!(ts[0].cost(), 3.0);
        assert_eq!(ts[0].steiner_points(), vec![NodeId(0)]);
        assert!(ts[0].validate(&g));
    }

    #[test]
    fn disconnected_terminals_error() {
        let mut g = path5();
        let lone = g.add_node();
        let err = top_k_steiner(&g, &[NodeId(0), lone], &SteinerConfig::top_k(1)).unwrap_err();
        assert_eq!(err, GraphError::Disconnected);
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = path5();
        assert!(matches!(
            top_k_steiner(&g, &[], &SteinerConfig::top_k(1)),
            Err(GraphError::NoTerminals)
        ));
        assert!(matches!(
            top_k_steiner(&g, &[NodeId(99)], &SteinerConfig::top_k(1)),
            Err(GraphError::UnknownNode(99))
        ));
        let mut big = Graph::with_nodes(20);
        for i in 0..19u32 {
            big.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let many: Vec<NodeId> = (0..20).map(NodeId).collect();
        assert!(matches!(
            top_k_steiner(&big, &many, &SteinerConfig::top_k(1)),
            Err(GraphError::TooManyTerminals { .. })
        ));
    }

    #[test]
    fn duplicate_terminals_collapsed() {
        let g = path5();
        let ts = top_k_steiner(
            &g,
            &[NodeId(0), NodeId(0), NodeId(1)],
            &SteinerConfig::top_k(1),
        )
        .unwrap();
        assert_eq!(ts[0].cost(), 1.0);
        assert_eq!(ts[0].terminals().len(), 2);
    }

    #[test]
    fn costs_non_decreasing() {
        // 4-cycle with a chord: several alternative trees.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(3), NodeId(0), 2.5).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 2.2).unwrap();
        let ts = top_k_steiner(&g, &[NodeId(0), NodeId(2)], &SteinerConfig::top_k(4)).unwrap();
        assert!(ts.len() >= 2);
        for w in ts.windows(2) {
            assert!(w[0].cost() <= w[1].cost() + 1e-12);
        }
        for t in &ts {
            assert!(t.validate(&g));
        }
    }

    #[test]
    fn top1_matches_brute_force_on_random_graphs() {
        // Exhaustive check on small graphs: enumerate all edge subsets.
        let mut g = Graph::with_nodes(5);
        let ws = [1.0, 2.0, 1.5, 0.5, 2.5, 1.2, 0.8];
        let es = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)];
        for (&(a, b), &w) in es.iter().zip(ws.iter()) {
            g.add_edge(NodeId(a), NodeId(b), w).unwrap();
        }
        let terms = [NodeId(0), NodeId(3), NodeId(4)];
        let best = top_k_steiner(&g, &terms, &SteinerConfig::top_k(1)).unwrap();
        // Brute force over all 2^7 edge subsets.
        let mut best_bf = f64::INFINITY;
        for subset in 0u32..(1 << es.len()) {
            let keys: Vec<(NodeId, NodeId)> = (0..es.len())
                .filter(|i| subset & (1 << i) != 0)
                .map(|i| (NodeId(es[i].0), NodeId(es[i].1)))
                .collect();
            let cost: f64 = (0..es.len())
                .filter(|i| subset & (1 << i) != 0)
                .map(|i| ws[i])
                .sum();
            let tree = SteinerTree::new(keys, cost, terms.to_vec());
            if tree.validate(&g) && cost < best_bf {
                best_bf = cost;
            }
        }
        assert!((best[0].cost() - best_bf).abs() < 1e-9);
    }

    #[test]
    fn supertree_suppression() {
        // With suppression on, a returned tree never contains another
        // returned tree.
        let g = two_routes();
        let ts = top_k_steiner(&g, &[NodeId(0), NodeId(2)], &SteinerConfig::top_k(5)).unwrap();
        for (i, a) in ts.iter().enumerate() {
            for (j, b) in ts.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subtree_of(b), "tree {i} is subtree of {j}");
                }
            }
        }
    }
}
