//! Top-k minimum-cost Steiner tree enumeration.
//!
//! The backward module "adopts a Steiner Tree-based technique to select, for
//! each configuration, the top-k paths joining the involved database schema
//! elements", using "an extension of a previous algorithm [Ding et al., ICDE
//! 2007] that works at the schema level ... and that has in place a mechanism
//! for efficiently discarding Steiner Trees that are sub-trees of others that
//! have been previously computed" (paper §1, §3).
//!
//! The implementation is DPBF (dynamic programming, best first): states are
//! `(vertex, terminal-subset)` pairs explored in cost order, with *grow*
//! (extend by one edge) and *merge* (join two subtrees rooted at the same
//! vertex with disjoint terminal sets) transitions. For top-k enumeration,
//! up to `k` entries are retained per state (Ding et al.'s generalization),
//! and emitted trees that merely extend an already-emitted tree with extra
//! edges (redundant super-trees: same join path plus gratuitous joins) are
//! suppressed.
//!
//! Two entry points implement the same enumeration:
//!
//! - [`top_k_steiner`] is the retained reference: heap of owned entries,
//!   hash-mapped state buckets, no pruning beyond the per-state cap.
//! - [`top_k_steiner_with`] is the hot path: flat state tables, an index
//!   heap over an entry arena with pooled edge lists (all reused via
//!   [`SteinerScratch`]), plus a bound-based truncation of dominated
//!   partial trees — entries headed for an already-closed state bucket
//!   are never pushed. Its output is pinned **bitwise** to the reference
//!   (same tree edges, same cost bits, same tie order) by
//!   `tests/steiner_properties.rs`, and in debug builds each call is
//!   additionally certified against the 1-best lower bound from
//!   [`steiner_lower_bound`].

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::tree::SteinerTree;

/// Maximum number of terminals (bitmask width).
pub const MAX_TERMINALS: usize = 16;

/// Tuning knobs for the enumeration.
#[derive(Debug, Clone)]
pub struct SteinerConfig {
    /// How many trees to return.
    pub k: usize,
    /// Hard cap on heap pops (guards pathological graphs). 0 = default.
    pub max_expansions: usize,
    /// Drop emitted trees that are super-trees of earlier emitted trees.
    pub suppress_supertrees: bool,
}

impl Default for SteinerConfig {
    fn default() -> Self {
        SteinerConfig {
            k: 5,
            max_expansions: 2_000_000,
            suppress_supertrees: true,
        }
    }
}

impl SteinerConfig {
    /// Config returning `k` trees with default limits.
    pub fn top_k(k: usize) -> SteinerConfig {
        SteinerConfig {
            k,
            ..Default::default()
        }
    }
}

#[derive(Debug, Clone)]
struct QueueEntry {
    cost: f64,
    node: NodeId,
    mask: u32,
    /// Edge indexes of the partial tree.
    edges: Vec<usize>,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueueEntry {}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost; the tie-breaks make this a *total* order (down
        // to the edge lists), so the pop sequence is independent of push
        // order and the scratch-based fast path can reproduce it exactly.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.edges.len().cmp(&self.edges.len()))
            .then_with(|| other.node.cmp(&self.node))
            .then_with(|| other.mask.cmp(&self.mask))
            .then_with(|| other.edges.cmp(&self.edges))
    }
}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Enumerate up to `cfg.k` minimum-cost Steiner trees connecting `terminals`,
/// in non-decreasing cost order.
///
/// Duplicate terminals are collapsed. A single terminal yields one empty
/// tree. Returns [`GraphError::Disconnected`] when the terminals do not share
/// a component.
pub fn top_k_steiner(
    graph: &Graph,
    terminals: &[NodeId],
    cfg: &SteinerConfig,
) -> Result<Vec<SteinerTree>, GraphError> {
    let terms = canonical_terminals(graph, terminals)?;
    if cfg.k == 0 {
        return Ok(Vec::new());
    }
    if terms.len() == 1 {
        return Ok(vec![SteinerTree::new(Vec::new(), 0.0, terms)]);
    }
    if !graph.connects(&terms) {
        return Err(GraphError::Disconnected);
    }

    let full: u32 = (1u32 << terms.len()) - 1;
    let term_bit: HashMap<NodeId, u32> = terms
        .iter()
        .enumerate()
        .map(|(i, t)| (*t, 1u32 << i))
        .collect();

    let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
    for t in &terms {
        heap.push(QueueEntry {
            cost: 0.0,
            node: *t,
            mask: term_bit[t],
            edges: Vec::new(),
        });
    }

    // Popped entries per (node, mask), capped at k each.
    let mut popped: HashMap<(NodeId, u32), Vec<QueueEntry>> = HashMap::new();
    let mut results: Vec<SteinerTree> = Vec::new();
    let max_expansions = if cfg.max_expansions == 0 {
        SteinerConfig::default().max_expansions
    } else {
        cfg.max_expansions
    };
    let mut pops = 0usize;

    while let Some(entry) = heap.pop() {
        pops += 1;
        if pops > max_expansions {
            break;
        }
        let state = (entry.node, entry.mask);
        let bucket = popped.entry(state).or_default();
        if bucket.len() >= cfg.k {
            continue;
        }
        // Skip exact duplicates (same edge set reached twice).
        if bucket.iter().any(|e| e.edges == entry.edges) {
            continue;
        }
        bucket.push(entry.clone());

        if entry.mask == full {
            let tree = to_tree(graph, &entry, &terms);
            if is_valid_tree(&tree) {
                let dup = results.iter().any(|r| r.edges() == tree.edges());
                let redundant =
                    cfg.suppress_supertrees && results.iter().any(|r| r.is_subtree_of(&tree));
                if !dup && !redundant {
                    results.push(tree);
                    if results.len() >= cfg.k {
                        break;
                    }
                }
            }
            continue; // growing a complete tree only adds dead weight
        }

        // Grow transitions.
        for &(u, ei) in graph.neighbors(entry.node) {
            if entry.edges.contains(&ei) {
                continue;
            }
            let mut edges = entry.edges.clone();
            edges.push(ei);
            let mask = entry.mask | term_bit.get(&u).copied().unwrap_or(0);
            heap.push(QueueEntry {
                cost: entry.cost + graph.edge(ei).weight,
                node: u,
                mask,
                edges,
            });
        }

        // Merge transitions with previously popped entries at the same node
        // whose terminal sets are disjoint.
        let merge_partners: Vec<QueueEntry> = popped
            .iter()
            .filter(|((n, m), _)| *n == entry.node && m & entry.mask == 0)
            .flat_map(|(_, es)| es.iter().cloned())
            .collect();
        for other in merge_partners {
            if let Some(edges) = union_if_tree(graph, &entry.edges, &other.edges, entry.node) {
                heap.push(QueueEntry {
                    cost: entry.cost + other.cost,
                    node: entry.node,
                    mask: entry.mask | other.mask,
                    edges,
                });
            }
        }
    }

    Ok(results)
}

/// Sort, dedup, and validate a terminal list; both enumeration entry points
/// and the lower bound share this so error precedence cannot drift.
fn canonical_terminals(graph: &Graph, terminals: &[NodeId]) -> Result<Vec<NodeId>, GraphError> {
    let mut terms: Vec<NodeId> = terminals.to_vec();
    terms.sort();
    terms.dedup();
    if terms.is_empty() {
        return Err(GraphError::NoTerminals);
    }
    for t in &terms {
        if t.0 as usize >= graph.node_count() {
            return Err(GraphError::UnknownNode(t.0));
        }
    }
    if terms.len() > MAX_TERMINALS {
        return Err(GraphError::TooManyTerminals {
            max: MAX_TERMINALS,
            got: terms.len(),
        });
    }
    Ok(terms)
}

/// Union two partial-tree edge sets rooted at `root`; `None` when the union
/// would contain a cycle (shared edge, or node shared anywhere but the root).
fn union_if_tree(graph: &Graph, a: &[usize], b: &[usize], root: NodeId) -> Option<Vec<usize>> {
    let mut edges: Vec<usize> = a.to_vec();
    for e in b {
        if edges.contains(e) {
            return None; // shared edge => cycle
        }
        edges.push(*e);
    }
    // Tree check: |nodes| must equal |edges| + 1.
    let mut nodes: Vec<NodeId> = edges
        .iter()
        .flat_map(|&ei| {
            let e = graph.edge(ei);
            [e.a, e.b]
        })
        .collect();
    nodes.push(root);
    nodes.sort();
    nodes.dedup();
    if nodes.len() == edges.len() + 1 {
        Some(edges)
    } else {
        None
    }
}

fn to_tree(graph: &Graph, entry: &QueueEntry, terms: &[NodeId]) -> SteinerTree {
    let keys: Vec<(NodeId, NodeId)> = entry.edges.iter().map(|&ei| graph.edge(ei).key()).collect();
    SteinerTree::new(keys, entry.cost, terms.to_vec())
}

fn is_valid_tree(tree: &SteinerTree) -> bool {
    // nodes() includes terminals; a tree over its nodes has |E| = |V| - 1.
    let n = tree.nodes().len();
    n == tree.len() + 1
}

/// Sentinel index for "no entry" in the scratch's arena-index vectors.
const NONE: u32 = u32::MAX;

/// Largest flat `node x terminal-subset` state table the scratch path will
/// allocate; beyond this [`top_k_steiner_with`] falls back to the reference
/// (hash-mapped states) rather than zero-fill megabytes per call.
const MAX_FLAT_STATES: usize = 1 << 18;

/// One partial tree in the scratch arena. Edge lists live as
/// `[estart, estart + elen)` slices of the shared edge pool; `next` chains
/// popped entries of the same state into a singly linked list.
#[derive(Debug, Clone, Copy)]
struct ArenaEntry {
    cost: f64,
    node: u32,
    mask: u32,
    estart: u32,
    elen: u32,
    next: u32,
}

/// Reusable flat buffers for [`top_k_steiner_with`] and
/// [`steiner_lower_bound_with`]: the entry arena and pooled edge lists, the
/// frontier index heap, per-state popped lists, the per-node merge index,
/// terminal bitmasks, epoch-stamped visited marks for the cycle check, and
/// the 1-best pass's distance/settled tables.
///
/// One scratch serves any number of sequential enumerations; buffers are
/// sized on entry and never shrunk, so a warm scratch allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct SteinerScratch {
    entries: Vec<ArenaEntry>,
    edge_pool: Vec<u32>,
    heap: Vec<u32>,
    popped_head: Vec<u32>,
    popped_len: Vec<u32>,
    node_masks: Vec<Vec<u32>>,
    term_bit: Vec<u32>,
    union_mark: Vec<u32>,
    union_epoch: u32,
    lb_dist: Vec<f64>,
    lb_settled: Vec<bool>,
    lb_node_masks: Vec<Vec<u32>>,
    lb_heap: Vec<(f64, u32)>,
}

impl SteinerScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> SteinerScratch {
        SteinerScratch::default()
    }

    /// Size and clear every buffer for a graph of `n` nodes and `slots`
    /// flat states, and load the terminal bitmask table.
    fn prepare(&mut self, n: usize, slots: usize, terms: &[NodeId]) {
        self.entries.clear();
        self.edge_pool.clear();
        self.heap.clear();
        self.popped_head.clear();
        self.popped_head.resize(slots, NONE);
        self.popped_len.clear();
        self.popped_len.resize(slots, 0);
        if self.node_masks.len() < n {
            self.node_masks.resize_with(n, Vec::new);
        }
        for masks in &mut self.node_masks[..n] {
            masks.clear();
        }
        self.term_bit.clear();
        self.term_bit.resize(n, 0);
        for (i, t) in terms.iter().enumerate() {
            self.term_bit[t.0 as usize] = 1u32 << i;
        }
        if self.union_mark.len() < n {
            self.union_mark.resize(n, 0);
        }
    }

    fn push_entry(&mut self, cost: f64, node: u32, mask: u32, estart: u32, elen: u32) -> u32 {
        let idx = self.entries.len() as u32;
        self.entries.push(ArenaEntry {
            cost,
            node,
            mask,
            estart,
            elen,
            next: NONE,
        });
        idx
    }

    /// Allocate a grow child: parent's edge slice copied within the pool,
    /// plus one new edge.
    fn alloc_child(
        &mut self,
        estart: u32,
        elen: u32,
        edge: u32,
        cost: f64,
        node: u32,
        mask: u32,
    ) -> u32 {
        let start = self.edge_pool.len() as u32;
        self.edge_pool
            .extend_from_within(estart as usize..(estart + elen) as usize);
        self.edge_pool.push(edge);
        self.push_entry(cost, node, mask, start, elen + 1)
    }

    fn pool_slice(&self, estart: u32, elen: u32) -> &[u32] {
        &self.edge_pool[estart as usize..(estart + elen) as usize]
    }

    /// "`a` pops before `b`": mirrors [`QueueEntry`]'s total order exactly
    /// (cost, then edge count, node, mask, and lexicographic edge list).
    fn pops_before(&self, a: u32, b: u32) -> bool {
        let x = &self.entries[a as usize];
        let y = &self.entries[b as usize];
        match x.cost.partial_cmp(&y.cost) {
            Some(Ordering::Less) => return true,
            Some(Ordering::Greater) => return false,
            _ => {}
        }
        if x.elen != y.elen {
            return x.elen < y.elen;
        }
        if x.node != y.node {
            return x.node < y.node;
        }
        if x.mask != y.mask {
            return x.mask < y.mask;
        }
        self.pool_slice(x.estart, x.elen) < self.pool_slice(y.estart, y.elen)
    }

    fn heap_push(&mut self, idx: u32) {
        self.heap.push(idx);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.pops_before(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_pop(&mut self) -> Option<u32> {
        let len = self.heap.len();
        if len == 0 {
            return None;
        }
        self.heap.swap(0, len - 1);
        let top = self.heap.pop();
        let len = self.heap.len();
        let mut i = 0;
        loop {
            let left = 2 * i + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < len && self.pops_before(self.heap[right], self.heap[left]) {
                best = right;
            }
            if self.pops_before(self.heap[best], self.heap[i]) {
                self.heap.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
        top
    }

    /// Does the state's popped list already hold this exact edge list?
    fn state_has_duplicate(&self, state: usize, estart: u32, elen: u32) -> bool {
        let needle = self.pool_slice(estart, elen);
        let mut p = self.popped_head[state];
        while p != NONE {
            let e = &self.entries[p as usize];
            if e.elen == elen && self.pool_slice(e.estart, e.elen) == needle {
                return true;
            }
            p = e.next;
        }
        false
    }

    /// Next epoch for the visited-mark table, resetting on wraparound.
    fn next_union_epoch(&mut self) -> u32 {
        if self.union_epoch == u32::MAX {
            for m in &mut self.union_mark {
                *m = 0;
            }
            self.union_epoch = 0;
        }
        self.union_epoch += 1;
        self.union_epoch
    }

    /// Pool-allocating twin of [`union_if_tree`]: append `a ++ b` to the
    /// edge pool if the union is acyclic and spans `|edges| + 1` nodes
    /// (counted with epoch-stamped marks instead of a sort/dedup pass).
    /// Truncates the pool back and returns `None` on failure.
    fn union_into_pool(
        &mut self,
        graph: &Graph,
        a: (u32, u32),
        b: (u32, u32),
        root: u32,
    ) -> Option<(u32, u32)> {
        let start = self.edge_pool.len();
        self.edge_pool
            .extend_from_within(a.0 as usize..(a.0 + a.1) as usize);
        // `b`'s edges are internally distinct, so checking each against
        // `a`'s half alone matches the reference's growing-list check.
        for i in b.0..b.0 + b.1 {
            let e = self.edge_pool[i as usize];
            if self.edge_pool[start..start + a.1 as usize].contains(&e) {
                self.edge_pool.truncate(start);
                return None; // shared edge => cycle
            }
            self.edge_pool.push(e);
        }
        let len = self.edge_pool.len() - start;
        let epoch = self.next_union_epoch();
        let mut nodes = 0usize;
        for i in start..start + len {
            let edge = graph.edge(self.edge_pool[i] as usize);
            for v in [edge.a.0, edge.b.0] {
                if self.union_mark[v as usize] != epoch {
                    self.union_mark[v as usize] = epoch;
                    nodes += 1;
                }
            }
        }
        if self.union_mark[root as usize] != epoch {
            nodes += 1;
        }
        if nodes == len + 1 {
            Some((start as u32, len as u32))
        } else {
            self.edge_pool.truncate(start);
            None
        }
    }

    /// 1-best DPBF (Ding et al.): plain Dijkstra over the flat
    /// `(node, mask)` state space, returning the cost of the first settled
    /// full-mask state — the exact optimal Steiner tree cost. Requires
    /// [`SteinerScratch::prepare`] to have loaded `term_bit`.
    fn one_best_full_cost(
        &mut self,
        graph: &Graph,
        terms: &[NodeId],
        slots: usize,
        stride: u32,
    ) -> Option<f64> {
        self.lb_dist.clear();
        self.lb_dist.resize(slots, f64::INFINITY);
        self.lb_settled.clear();
        self.lb_settled.resize(slots, false);
        let n = graph.node_count();
        if self.lb_node_masks.len() < n {
            self.lb_node_masks.resize_with(n, Vec::new);
        }
        for masks in &mut self.lb_node_masks[..n] {
            masks.clear();
        }
        self.lb_heap.clear();
        let full = stride - 1;
        for (i, t) in terms.iter().enumerate() {
            let state = t.0 * stride + (1u32 << i);
            self.lb_dist[state as usize] = 0.0;
            lb_push(&mut self.lb_heap, (0.0, state));
        }
        while let Some((cost, state)) = lb_pop(&mut self.lb_heap) {
            if self.lb_settled[state as usize] {
                continue;
            }
            self.lb_settled[state as usize] = true;
            let node = state / stride;
            let mask = state % stride;
            if mask == full {
                return Some(cost);
            }
            self.lb_node_masks[node as usize].push(mask);
            for &(u, ei) in graph.neighbors(NodeId(node)) {
                let nm = mask | self.term_bit[u.0 as usize];
                let ns = u.0 * stride + nm;
                let nc = cost + graph.edge(ei).weight;
                if nc < self.lb_dist[ns as usize] {
                    self.lb_dist[ns as usize] = nc;
                    lb_push(&mut self.lb_heap, (nc, ns));
                }
            }
            let settled_here = self.lb_node_masks[node as usize].len();
            for mi in 0..settled_here {
                let m2 = self.lb_node_masks[node as usize][mi];
                if m2 & mask != 0 {
                    continue;
                }
                let ns = node * stride + (mask | m2);
                let nc = cost + self.lb_dist[(node * stride + m2) as usize];
                if nc < self.lb_dist[ns as usize] {
                    self.lb_dist[ns as usize] = nc;
                    lb_push(&mut self.lb_heap, (nc, ns));
                }
            }
        }
        None
    }
}

/// Min-order for the 1-best pass's `(cost, state)` heap.
fn lb_before(a: (f64, u32), b: (f64, u32)) -> bool {
    match a.0.partial_cmp(&b.0) {
        Some(Ordering::Less) => true,
        Some(Ordering::Greater) => false,
        _ => a.1 < b.1,
    }
}

fn lb_push(heap: &mut Vec<(f64, u32)>, item: (f64, u32)) {
    heap.push(item);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if lb_before(heap[i], heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn lb_pop(heap: &mut Vec<(f64, u32)>) -> Option<(f64, u32)> {
    let len = heap.len();
    if len == 0 {
        return None;
    }
    heap.swap(0, len - 1);
    let top = heap.pop();
    let len = heap.len();
    let mut i = 0;
    loop {
        let left = 2 * i + 1;
        if left >= len {
            break;
        }
        let right = left + 1;
        let mut best = left;
        if right < len && lb_before(heap[right], heap[left]) {
            best = right;
        }
        if lb_before(heap[best], heap[i]) {
            heap.swap(i, best);
            i = best;
        } else {
            break;
        }
    }
    top
}

/// Exact minimum Steiner tree cost for `terminals`, computed by the classic
/// 1-best DPBF pass (Ding et al.) — the certified lower bound used to
/// validate [`top_k_steiner_with`]'s pruning: every tree the enumeration
/// emits must cost at least this much.
///
/// Accepts the same inputs and returns the same errors as
/// [`top_k_steiner`]; a single terminal costs `0.0`.
pub fn steiner_lower_bound(graph: &Graph, terminals: &[NodeId]) -> Result<f64, GraphError> {
    steiner_lower_bound_with(graph, terminals, &mut SteinerScratch::new())
}

/// [`steiner_lower_bound`] with caller-provided scratch buffers.
pub fn steiner_lower_bound_with(
    graph: &Graph,
    terminals: &[NodeId],
    scratch: &mut SteinerScratch,
) -> Result<f64, GraphError> {
    let terms = canonical_terminals(graph, terminals)?;
    if terms.len() == 1 {
        return Ok(0.0);
    }
    if !graph.connects(&terms) {
        return Err(GraphError::Disconnected);
    }
    let stride = 1u32 << terms.len();
    let slots = graph.node_count() * stride as usize;
    if slots > MAX_FLAT_STATES {
        // State table too large for the flat pass; the reference's 1-best
        // enumeration computes the same optimum.
        let trees = top_k_steiner(graph, &terms, &SteinerConfig::top_k(1))?;
        return Ok(trees.first().map(|t| t.cost()).unwrap_or(f64::INFINITY));
    }
    scratch.prepare(graph.node_count(), slots, &terms);
    Ok(scratch
        .one_best_full_cost(graph, &terms, slots, stride)
        .unwrap_or(f64::INFINITY))
}

/// [`top_k_steiner`] through reusable scratch buffers and an admissible
/// prune — the backward pass's hot path, bit-identical to the reference.
///
/// Same enumeration, two mechanical differences:
///
/// - **Flat scratch**: states live in `node x subset` tables, partial-tree
///   edge lists in a shared pool, and the frontier in an index heap — all
///   reused across calls through `scratch` (see [`SteinerScratch`]).
/// - **Dominance truncation**: a state bucket that has already popped `k`
///   entries is *closed* — the best-first order certifies every later
///   arrival costs at least the bucket's k-th pop, so grow/merge children
///   headed for a closed bucket are dominated and never pushed. The
///   reference pushes them and discards them at pop with no other effect,
///   so results, ties, and score bits are untouched; only the pop count
///   compared against `cfg.max_expansions` differs (the pruned path skips
///   the no-op pops, so it can only explore *further* within the cap).
///
/// In debug builds the result is certified against
/// [`steiner_lower_bound`]: no emitted tree may undercut the exact 1-best
/// optimum.
///
/// Graphs whose flat state table would exceed an internal cap delegate to
/// the reference wholesale (identical output, no scratch reuse).
pub fn top_k_steiner_with(
    graph: &Graph,
    terminals: &[NodeId],
    cfg: &SteinerConfig,
    scratch: &mut SteinerScratch,
) -> Result<Vec<SteinerTree>, GraphError> {
    let terms = canonical_terminals(graph, terminals)?;
    if cfg.k == 0 {
        return Ok(Vec::new());
    }
    if terms.len() == 1 {
        return Ok(vec![SteinerTree::new(Vec::new(), 0.0, terms)]);
    }
    if !graph.connects(&terms) {
        return Err(GraphError::Disconnected);
    }

    let n = graph.node_count();
    let stride = 1u32 << terms.len();
    let slots = n * stride as usize;
    if slots > MAX_FLAT_STATES {
        return top_k_steiner(graph, &terms, cfg);
    }
    let full: u32 = stride - 1;
    scratch.prepare(n, slots, &terms);

    #[cfg(debug_assertions)]
    let certified_bound = scratch.one_best_full_cost(graph, &terms, slots, stride);

    for (i, t) in terms.iter().enumerate() {
        let estart = scratch.edge_pool.len() as u32;
        let idx = scratch.push_entry(0.0, t.0, 1u32 << i, estart, 0);
        scratch.heap_push(idx);
    }

    let max_expansions = if cfg.max_expansions == 0 {
        SteinerConfig::default().max_expansions
    } else {
        cfg.max_expansions
    };
    let k = cfg.k.min(u32::MAX as usize) as u32;
    let mut results: Vec<SteinerTree> = Vec::new();
    let mut pops = 0usize;

    while let Some(idx) = scratch.heap_pop() {
        pops += 1;
        if pops > max_expansions {
            break;
        }
        let entry = scratch.entries[idx as usize];
        let state = entry.node as usize * stride as usize + entry.mask as usize;
        if scratch.popped_len[state] >= k {
            continue;
        }
        if scratch.state_has_duplicate(state, entry.estart, entry.elen) {
            continue;
        }
        scratch.entries[idx as usize].next = scratch.popped_head[state];
        scratch.popped_head[state] = idx;
        scratch.popped_len[state] += 1;
        if scratch.popped_len[state] == 1 && entry.mask != full {
            // First pop of this state: index it for merge scans. Full-mask
            // states are never merge partners (no disjoint mask exists).
            scratch.node_masks[entry.node as usize].push(entry.mask);
        }

        if entry.mask == full {
            let keys: Vec<(NodeId, NodeId)> = scratch
                .pool_slice(entry.estart, entry.elen)
                .iter()
                .map(|&ei| graph.edge(ei as usize).key())
                .collect();
            let tree = SteinerTree::new(keys, entry.cost, terms.clone());
            if is_valid_tree(&tree) {
                let dup = results.iter().any(|r| r.edges() == tree.edges());
                let redundant =
                    cfg.suppress_supertrees && results.iter().any(|r| r.is_subtree_of(&tree));
                if !dup && !redundant {
                    results.push(tree);
                    if results.len() >= cfg.k {
                        break;
                    }
                }
            }
            continue; // growing a complete tree only adds dead weight
        }

        // Grow transitions.
        for &(u, ei) in graph.neighbors(NodeId(entry.node)) {
            let ei = ei as u32;
            if scratch.pool_slice(entry.estart, entry.elen).contains(&ei) {
                continue;
            }
            let mask = entry.mask | scratch.term_bit[u.0 as usize];
            let target = u.0 as usize * stride as usize + mask as usize;
            if scratch.popped_len[target] >= k {
                continue; // dominated: the reference would pop-skip it
            }
            let cost = entry.cost + graph.edge(ei as usize).weight;
            let child = scratch.alloc_child(entry.estart, entry.elen, ei, cost, u.0, mask);
            scratch.heap_push(child);
        }

        // Merge transitions with previously popped entries at the same node
        // whose terminal sets are disjoint.
        let partner_masks = scratch.node_masks[entry.node as usize].len();
        for mi in 0..partner_masks {
            let m2 = scratch.node_masks[entry.node as usize][mi];
            if m2 & entry.mask != 0 {
                continue;
            }
            let merged_mask = entry.mask | m2;
            let target = entry.node as usize * stride as usize + merged_mask as usize;
            if scratch.popped_len[target] >= k {
                continue; // dominated, as above
            }
            let partner_state = entry.node as usize * stride as usize + m2 as usize;
            let mut p = scratch.popped_head[partner_state];
            while p != NONE {
                let other = scratch.entries[p as usize];
                p = other.next;
                if let Some((estart, elen)) = scratch.union_into_pool(
                    graph,
                    (entry.estart, entry.elen),
                    (other.estart, other.elen),
                    entry.node,
                ) {
                    let child = scratch.push_entry(
                        entry.cost + other.cost,
                        entry.node,
                        merged_mask,
                        estart,
                        elen,
                    );
                    scratch.heap_push(child);
                }
            }
        }
    }

    #[cfg(debug_assertions)]
    if let Some(bound) = certified_bound {
        // Admissibility certificate: every emitted tree is a real Steiner
        // tree, so none may cost less than the exact 1-best optimum. (The
        // first tree need not *attain* the bound: the per-state k-cap and
        // the edge-disjoint merge rule make the enumeration a best-effort
        // top-k, and on adversarial graphs the optimal decomposition's
        // subtree can be evicted from a crowded bucket.)
        let tol = 1e-9 * (1.0 + bound.abs());
        debug_assert!(
            results.iter().all(|t| t.cost() >= bound - tol),
            "a pruned result undercut the certified lower bound {bound}"
        );
    }

    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3-4 with unit weights.
    fn path5() -> Graph {
        let mut g = Graph::with_nodes(5);
        for i in 0..4u32 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        g
    }

    /// A graph with two distinct routes between terminals.
    ///     0 --1-- 1 --1-- 2
    ///     0 --1.5-------- 2
    fn two_routes() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 1.5).unwrap();
        g
    }

    #[test]
    fn single_terminal_is_empty_tree() {
        let g = path5();
        let ts = top_k_steiner(&g, &[NodeId(2)], &SteinerConfig::top_k(3)).unwrap();
        assert_eq!(ts.len(), 1);
        assert!(ts[0].is_empty());
        assert_eq!(ts[0].cost(), 0.0);
    }

    #[test]
    fn two_terminals_on_path() {
        let g = path5();
        let ts = top_k_steiner(&g, &[NodeId(0), NodeId(4)], &SteinerConfig::top_k(2)).unwrap();
        assert_eq!(ts.len(), 1); // only one simple tree exists
        assert_eq!(ts[0].cost(), 4.0);
        assert_eq!(ts[0].len(), 4);
        assert!(ts[0].validate(&g));
    }

    #[test]
    fn top2_ranks_alternative_routes() {
        let g = two_routes();
        let ts = top_k_steiner(&g, &[NodeId(0), NodeId(2)], &SteinerConfig::top_k(5)).unwrap();
        assert!(ts.len() >= 2);
        assert_eq!(ts[0].cost(), 1.5); // direct edge
        assert_eq!(ts[1].cost(), 2.0); // via node 1
        assert!(ts[0].cost() <= ts[1].cost());
        for t in &ts {
            assert!(t.validate(&g));
        }
    }

    #[test]
    fn three_terminals_star() {
        // Star: center 0, leaves 1,2,3 (weight 1 each); ring of weight 10.
        let mut g = Graph::with_nodes(4);
        for i in 1..4u32 {
            g.add_edge(NodeId(0), NodeId(i), 1.0).unwrap();
        }
        g.add_edge(NodeId(1), NodeId(2), 10.0).unwrap();
        let ts = top_k_steiner(
            &g,
            &[NodeId(1), NodeId(2), NodeId(3)],
            &SteinerConfig::top_k(1),
        )
        .unwrap();
        assert_eq!(ts[0].cost(), 3.0);
        assert_eq!(ts[0].steiner_points(), vec![NodeId(0)]);
        assert!(ts[0].validate(&g));
    }

    #[test]
    fn disconnected_terminals_error() {
        let mut g = path5();
        let lone = g.add_node();
        let err = top_k_steiner(&g, &[NodeId(0), lone], &SteinerConfig::top_k(1)).unwrap_err();
        assert_eq!(err, GraphError::Disconnected);
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = path5();
        assert!(matches!(
            top_k_steiner(&g, &[], &SteinerConfig::top_k(1)),
            Err(GraphError::NoTerminals)
        ));
        assert!(matches!(
            top_k_steiner(&g, &[NodeId(99)], &SteinerConfig::top_k(1)),
            Err(GraphError::UnknownNode(99))
        ));
        let mut big = Graph::with_nodes(20);
        for i in 0..19u32 {
            big.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let many: Vec<NodeId> = (0..20).map(NodeId).collect();
        assert!(matches!(
            top_k_steiner(&big, &many, &SteinerConfig::top_k(1)),
            Err(GraphError::TooManyTerminals { .. })
        ));
    }

    #[test]
    fn duplicate_terminals_collapsed() {
        let g = path5();
        let ts = top_k_steiner(
            &g,
            &[NodeId(0), NodeId(0), NodeId(1)],
            &SteinerConfig::top_k(1),
        )
        .unwrap();
        assert_eq!(ts[0].cost(), 1.0);
        assert_eq!(ts[0].terminals().len(), 2);
    }

    #[test]
    fn costs_non_decreasing() {
        // 4-cycle with a chord: several alternative trees.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(3), NodeId(0), 2.5).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 2.2).unwrap();
        let ts = top_k_steiner(&g, &[NodeId(0), NodeId(2)], &SteinerConfig::top_k(4)).unwrap();
        assert!(ts.len() >= 2);
        for w in ts.windows(2) {
            assert!(w[0].cost() <= w[1].cost() + 1e-12);
        }
        for t in &ts {
            assert!(t.validate(&g));
        }
    }

    #[test]
    fn top1_matches_brute_force_on_random_graphs() {
        // Exhaustive check on small graphs: enumerate all edge subsets.
        let mut g = Graph::with_nodes(5);
        let ws = [1.0, 2.0, 1.5, 0.5, 2.5, 1.2, 0.8];
        let es = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)];
        for (&(a, b), &w) in es.iter().zip(ws.iter()) {
            g.add_edge(NodeId(a), NodeId(b), w).unwrap();
        }
        let terms = [NodeId(0), NodeId(3), NodeId(4)];
        let best = top_k_steiner(&g, &terms, &SteinerConfig::top_k(1)).unwrap();
        // Brute force over all 2^7 edge subsets.
        let mut best_bf = f64::INFINITY;
        for subset in 0u32..(1 << es.len()) {
            let keys: Vec<(NodeId, NodeId)> = (0..es.len())
                .filter(|i| subset & (1 << i) != 0)
                .map(|i| (NodeId(es[i].0), NodeId(es[i].1)))
                .collect();
            let cost: f64 = (0..es.len())
                .filter(|i| subset & (1 << i) != 0)
                .map(|i| ws[i])
                .sum();
            let tree = SteinerTree::new(keys, cost, terms.to_vec());
            if tree.validate(&g) && cost < best_bf {
                best_bf = cost;
            }
        }
        assert!((best[0].cost() - best_bf).abs() < 1e-9);
    }

    /// Bitwise comparison of the two enumeration entry points.
    fn assert_twins_identical(g: &Graph, terms: &[NodeId], cfg: &SteinerConfig) {
        let reference = top_k_steiner(g, terms, cfg);
        let fast = top_k_steiner_with(g, terms, cfg, &mut SteinerScratch::new());
        match (reference, fast) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len(), "tree count");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.edges(), y.edges(), "tree edges");
                    assert_eq!(x.cost().to_bits(), y.cost().to_bits(), "cost bits");
                    assert_eq!(x.terminals(), y.terminals(), "terminals");
                }
            }
            (a, b) => assert_eq!(format!("{a:?}"), format!("{b:?}"), "error mismatch"),
        }
    }

    #[test]
    fn scratch_path_matches_reference_on_fixtures() {
        let cases: Vec<(Graph, Vec<NodeId>)> = vec![
            (path5(), vec![NodeId(0), NodeId(4)]),
            (path5(), vec![NodeId(2)]),
            (two_routes(), vec![NodeId(0), NodeId(2)]),
            (two_routes(), vec![NodeId(0), NodeId(1), NodeId(2)]),
        ];
        for (g, terms) in &cases {
            for k in 0..6 {
                assert_twins_identical(g, terms, &SteinerConfig::top_k(k));
                let mut cfg = SteinerConfig::top_k(k);
                cfg.suppress_supertrees = false;
                assert_twins_identical(g, terms, &cfg);
            }
        }
    }

    #[test]
    fn scratch_path_reports_identical_errors() {
        let g = path5();
        let scratch = &mut SteinerScratch::new();
        assert!(matches!(
            top_k_steiner_with(&g, &[], &SteinerConfig::top_k(1), scratch),
            Err(GraphError::NoTerminals)
        ));
        assert!(matches!(
            top_k_steiner_with(&g, &[NodeId(99)], &SteinerConfig::top_k(1), scratch),
            Err(GraphError::UnknownNode(99))
        ));
        let mut g = path5();
        let lone = g.add_node();
        assert!(matches!(
            top_k_steiner_with(&g, &[NodeId(0), lone], &SteinerConfig::top_k(1), scratch),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn scratch_reuse_across_calls_changes_nothing() {
        let g = two_routes();
        let mut scratch = SteinerScratch::new();
        let cfg = SteinerConfig::top_k(4);
        let cold = top_k_steiner_with(&g, &[NodeId(0), NodeId(2)], &cfg, &mut scratch).unwrap();
        // Interleave a different query, then repeat the first with the same
        // (now dirty) scratch.
        let _ = top_k_steiner_with(&g, &[NodeId(1), NodeId(2)], &cfg, &mut scratch).unwrap();
        let warm = top_k_steiner_with(&g, &[NodeId(0), NodeId(2)], &cfg, &mut scratch).unwrap();
        assert_eq!(cold.len(), warm.len());
        for (x, y) in cold.iter().zip(&warm) {
            assert_eq!(x.edges(), y.edges());
            assert_eq!(x.cost().to_bits(), y.cost().to_bits());
        }
    }

    #[test]
    fn lower_bound_is_the_first_tree_cost() {
        for (g, terms) in [
            (path5(), vec![NodeId(0), NodeId(4)]),
            (two_routes(), vec![NodeId(0), NodeId(2)]),
        ] {
            let best = top_k_steiner(&g, &terms, &SteinerConfig::top_k(1)).unwrap();
            let bound = steiner_lower_bound(&g, &terms).unwrap();
            assert!((best[0].cost() - bound).abs() < 1e-9, "bound {bound}");
        }
        assert_eq!(steiner_lower_bound(&path5(), &[NodeId(3)]).unwrap(), 0.0);
        let mut g = path5();
        let lone = g.add_node();
        assert_eq!(
            steiner_lower_bound(&g, &[NodeId(0), lone]).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn supertree_suppression() {
        // With suppression on, a returned tree never contains another
        // returned tree.
        let g = two_routes();
        let ts = top_k_steiner(&g, &[NodeId(0), NodeId(2)], &SteinerConfig::top_k(5)).unwrap();
        for (i, a) in ts.iter().enumerate() {
            for (j, b) in ts.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subtree_of(b), "tree {i} is subtree of {j}");
                }
            }
        }
    }
}
