//! Property-based tests for the graph substrate: Steiner invariants against
//! brute force on random small graphs.

use proptest::prelude::*;
use quest_graph::{
    dijkstra, mst_approximation, top_k_steiner, Graph, GraphError, NodeId, SteinerConfig,
    SteinerTree,
};

/// A random connected graph: a spanning path plus random extra edges.
fn arb_graph(n: usize) -> impl Strategy<Value = Graph> {
    let extra = proptest::collection::vec((0..n, 0..n, 0.1f64..5.0), 0..(n * 2));
    let path = proptest::collection::vec(0.1f64..5.0, n.saturating_sub(1));
    (path, extra).prop_map(move |(path_ws, extras)| {
        let mut g = Graph::with_nodes(n);
        for (i, w) in path_ws.iter().enumerate() {
            g.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), *w)
                .expect("valid edge");
        }
        for (a, b, w) in extras {
            if a != b {
                let _ = g.add_edge(NodeId(a as u32), NodeId(b as u32), w);
            }
        }
        g
    })
}

/// Brute-force optimal Steiner cost by trying every edge subset.
fn brute_force_opt(g: &Graph, terminals: &[NodeId]) -> f64 {
    let m = g.edge_count();
    assert!(m <= 16, "brute force only for tiny graphs");
    let mut best = f64::INFINITY;
    for subset in 0u32..(1 << m) {
        let keys: Vec<(NodeId, NodeId)> = (0..m)
            .filter(|i| subset & (1 << i) != 0)
            .map(|i| g.edge(i).key())
            .collect();
        let cost: f64 = (0..m)
            .filter(|i| subset & (1 << i) != 0)
            .map(|i| g.edge(i).weight)
            .sum();
        if cost >= best {
            continue;
        }
        let tree = SteinerTree::new(keys, cost, terminals.to_vec());
        if tree.validate(g) {
            best = cost;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn top1_is_optimal_on_small_graphs(g in arb_graph(5), t1 in 0u32..5, t2 in 0u32..5) {
        prop_assume!(g.edge_count() <= 12);
        prop_assume!(t1 != t2);
        let terminals = [NodeId(t1), NodeId(t2)];
        let got = top_k_steiner(&g, &terminals, &SteinerConfig::top_k(1)).expect("connected");
        let opt = brute_force_opt(&g, &terminals);
        prop_assert!((got[0].cost() - opt).abs() < 1e-9, "got {} want {}", got[0].cost(), opt);
    }

    #[test]
    fn three_terminal_top1_is_optimal(g in arb_graph(5)) {
        prop_assume!(g.edge_count() <= 10);
        let terminals = [NodeId(0), NodeId(2), NodeId(4)];
        let got = top_k_steiner(&g, &terminals, &SteinerConfig::top_k(1)).expect("connected");
        let opt = brute_force_opt(&g, &terminals);
        prop_assert!((got[0].cost() - opt).abs() < 1e-9);
    }

    #[test]
    fn all_results_are_valid_trees_spanning_terminals(
        g in arb_graph(6),
        k in 1usize..6,
    ) {
        let terminals = [NodeId(0), NodeId(3), NodeId(5)];
        let ts = top_k_steiner(&g, &terminals, &SteinerConfig::top_k(k)).expect("connected");
        prop_assert!(!ts.is_empty());
        prop_assert!(ts.len() <= k);
        for t in &ts {
            prop_assert!(t.validate(&g));
            let nodes = t.nodes();
            for term in &terminals {
                prop_assert!(nodes.contains(term));
            }
        }
        for w in ts.windows(2) {
            prop_assert!(w[0].cost() <= w[1].cost() + 1e-9);
        }
        // Pairwise distinct and no tree contains another (suppression).
        for (i, a) in ts.iter().enumerate() {
            for (j, b) in ts.iter().enumerate() {
                if i != j {
                    prop_assert!(a.edges() != b.edges());
                    prop_assert!(!a.is_subtree_of(b));
                }
            }
        }
    }

    #[test]
    fn mst_approx_within_factor_two(g in arb_graph(6)) {
        let terminals = [NodeId(0), NodeId(2), NodeId(5)];
        let approx = mst_approximation(&g, &terminals).expect("connected");
        let opt = top_k_steiner(&g, &terminals, &SteinerConfig::top_k(1)).expect("connected");
        prop_assert!(approx.validate(&g));
        prop_assert!(approx.cost() >= opt[0].cost() - 1e-9);
        prop_assert!(approx.cost() <= 2.0 * opt[0].cost() + 1e-9);
    }

    #[test]
    fn dijkstra_triangle_inequality(g in arb_graph(7), s in 0u32..7) {
        let sp = dijkstra(&g, NodeId(s));
        for e in g.edges() {
            let (a, b) = (e.a.0 as usize, e.b.0 as usize);
            if sp.dist[a].is_finite() {
                prop_assert!(sp.dist[b] <= sp.dist[a] + e.weight + 1e-9);
            }
            if sp.dist[b].is_finite() {
                prop_assert!(sp.dist[a] <= sp.dist[b] + e.weight + 1e-9);
            }
        }
    }

    #[test]
    fn steiner_cost_monotone_in_terminal_set(g in arb_graph(6)) {
        // Adding a terminal can never make the optimal tree cheaper.
        let two = [NodeId(0), NodeId(3)];
        let three = [NodeId(0), NodeId(3), NodeId(5)];
        let t2 = top_k_steiner(&g, &two, &SteinerConfig::top_k(1)).expect("connected");
        let t3 = top_k_steiner(&g, &three, &SteinerConfig::top_k(1)).expect("connected");
        prop_assert!(t3[0].cost() >= t2[0].cost() - 1e-9);
    }
}

#[test]
fn disconnected_graph_reported() {
    let mut g = Graph::with_nodes(4);
    g.add_edge(NodeId(0), NodeId(1), 1.0).expect("edge");
    g.add_edge(NodeId(2), NodeId(3), 1.0).expect("edge");
    assert_eq!(
        top_k_steiner(&g, &[NodeId(0), NodeId(2)], &SteinerConfig::top_k(1)).unwrap_err(),
        GraphError::Disconnected
    );
}
