//! The backward hot path's contract at the graph layer: the scratch-reused,
//! dominance-pruned Steiner enumeration ([`top_k_steiner_with`]) is
//! **bit-identical** to the retained reference ([`top_k_steiner`]) — same
//! tree edges, same cost bits, same tie order, same errors — over randomized
//! schema-shaped graphs, terminal sets, and weight distributions (including
//! exact zero-weight edges and tie-heavy discrete weights), plus the
//! degenerate cases. Every emitted tree is additionally certified against
//! the exact 1-best lower bound.

use proptest::prelude::*;
use quest_graph::{
    steiner_lower_bound, top_k_steiner, top_k_steiner_with, Graph, GraphError, NodeId,
    SteinerConfig, SteinerScratch,
};

/// A random connected graph: a spanning path plus random extra edges, with
/// weights drawn from `weight()` (shared by both edge kinds).
fn arb_graph_with<W, F>(n: usize, weight: F) -> impl Strategy<Value = Graph>
where
    W: Strategy<Value = f64>,
    F: Fn() -> W,
{
    let extra = proptest::collection::vec((0..n, 0..n, weight()), 0..(n * 2));
    let path = proptest::collection::vec(weight(), n.saturating_sub(1));
    (path, extra).prop_map(move |(path_ws, extras)| {
        let mut g = Graph::with_nodes(n);
        for (i, w) in path_ws.iter().enumerate() {
            g.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), *w)
                .expect("valid edge");
        }
        for (a, b, w) in extras {
            if a != b {
                let _ = g.add_edge(NodeId(a as u32), NodeId(b as u32), w);
            }
        }
        g
    })
}

/// Smooth weights, like real schema graphs.
fn arb_graph(n: usize) -> impl Strategy<Value = Graph> {
    arb_graph_with(n, || 0.1f64..5.0)
}

/// Discrete weights with repeats and exact zeros: maximizes cost ties and
/// zero-weight edges, the places where tie order could drift.
fn arb_tie_graph(n: usize) -> impl Strategy<Value = Graph> {
    arb_graph_with(n, || {
        prop_oneof![Just(0.0f64), Just(0.5), Just(1.0), Just(1.0), Just(2.0)]
    })
}

/// Run both entry points and demand bitwise equality: tree count, edge
/// lists (which fixes tie order), cost bits, terminals — or identical
/// errors.
fn assert_twins_identical(
    g: &Graph,
    terms: &[NodeId],
    cfg: &SteinerConfig,
    scratch: &mut SteinerScratch,
) -> Result<(), TestCaseError> {
    let reference = top_k_steiner(g, terms, cfg);
    let fast = top_k_steiner_with(g, terms, cfg, scratch);
    match (reference, fast) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a.len(), b.len(), "tree count");
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert_eq!(x.edges(), y.edges(), "tree {} edges (tie order)", i);
                prop_assert_eq!(
                    x.cost().to_bits(),
                    y.cost().to_bits(),
                    "tree {} cost bits: {} vs {}",
                    i,
                    x.cost(),
                    y.cost()
                );
                prop_assert_eq!(x.terminals(), y.terminals(), "tree {} terminals", i);
            }
        }
        (a, b) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "error mismatch"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pruned_enumeration_is_bit_identical(
        g in arb_graph(8),
        raw_terms in proptest::collection::vec(0u32..8, 1..5),
        k in 0usize..6,
        suppress in any::<bool>(),
    ) {
        let terms: Vec<NodeId> = raw_terms.into_iter().map(NodeId).collect();
        let mut cfg = SteinerConfig::top_k(k);
        cfg.suppress_supertrees = suppress;
        assert_twins_identical(&g, &terms, &cfg, &mut SteinerScratch::new())?;
    }

    #[test]
    fn tie_heavy_and_zero_weight_graphs_are_bit_identical(
        g in arb_tie_graph(7),
        raw_terms in proptest::collection::vec(0u32..7, 2..5),
        k in 1usize..6,
    ) {
        let terms: Vec<NodeId> = raw_terms.into_iter().map(NodeId).collect();
        let cfg = SteinerConfig::top_k(k);
        assert_twins_identical(&g, &terms, &cfg, &mut SteinerScratch::new())?;
    }

    #[test]
    fn one_dirty_scratch_serves_a_whole_query_sequence(
        g in arb_graph(7),
        queries in proptest::collection::vec(
            (proptest::collection::vec(0u32..7, 1..4), 1usize..5),
            1..6,
        ),
    ) {
        // A single scratch carried across a randomized query sequence must
        // match a fresh scratch per call — warm buffers change nothing.
        let mut scratch = SteinerScratch::new();
        for (raw_terms, k) in queries {
            let terms: Vec<NodeId> = raw_terms.into_iter().map(NodeId).collect();
            let cfg = SteinerConfig::top_k(k);
            assert_twins_identical(&g, &terms, &cfg, &mut scratch)?;
        }
    }

    #[test]
    fn no_emitted_tree_undercuts_the_certified_lower_bound(
        g in arb_graph(7),
        raw_terms in proptest::collection::vec(0u32..7, 1..5),
    ) {
        // The 1-best DPBF pass computes the exact optimal Steiner cost, so
        // it is an admissible floor for every tree the pruned enumeration
        // emits. (The first tree need not attain it: the per-state k-cap
        // makes the enumeration best-effort on adversarial graphs.)
        let terms: Vec<NodeId> = raw_terms.into_iter().map(NodeId).collect();
        let mut scratch = SteinerScratch::new();
        let bound = steiner_lower_bound(&g, &terms).expect("connected");
        let trees = top_k_steiner_with(&g, &terms, &SteinerConfig::top_k(4), &mut scratch)
            .expect("connected");
        let tol = 1e-9 * (1.0 + bound.abs());
        prop_assert!(!trees.is_empty());
        for t in &trees {
            prop_assert!(t.cost() >= bound - tol, "tree {} undercuts bound {}", t.cost(), bound);
        }
    }
}

#[test]
fn single_terminal_yields_one_empty_tree_on_both_paths() {
    let mut g = Graph::with_nodes(3);
    g.add_edge(NodeId(0), NodeId(1), 1.0).expect("edge");
    g.add_edge(NodeId(1), NodeId(2), 1.0).expect("edge");
    let cfg = SteinerConfig::top_k(3);
    for terms in [vec![NodeId(1)], vec![NodeId(2), NodeId(2), NodeId(2)]] {
        let a = top_k_steiner(&g, &terms, &cfg).expect("single terminal");
        let b = top_k_steiner_with(&g, &terms, &cfg, &mut SteinerScratch::new())
            .expect("single terminal");
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(b[0].is_empty());
        assert_eq!(a[0].cost().to_bits(), b[0].cost().to_bits());
        assert_eq!(a[0].terminals(), b[0].terminals());
    }
    assert_eq!(steiner_lower_bound(&g, &[NodeId(1)]).expect("bound"), 0.0);
}

#[test]
fn disconnected_terminals_error_identically() {
    let mut g = Graph::with_nodes(5);
    g.add_edge(NodeId(0), NodeId(1), 1.0).expect("edge");
    g.add_edge(NodeId(2), NodeId(3), 0.0).expect("edge");
    let terms = [NodeId(0), NodeId(2)];
    let cfg = SteinerConfig::top_k(2);
    let a = top_k_steiner(&g, &terms, &cfg).unwrap_err();
    let b = top_k_steiner_with(&g, &terms, &cfg, &mut SteinerScratch::new()).unwrap_err();
    assert_eq!(a, GraphError::Disconnected);
    assert_eq!(a, b);
    assert_eq!(
        steiner_lower_bound(&g, &terms).unwrap_err(),
        GraphError::Disconnected
    );
}

#[test]
fn invalid_inputs_error_identically() {
    let mut g = Graph::with_nodes(4);
    for i in 0..3u32 {
        g.add_edge(NodeId(i), NodeId(i + 1), 1.0).expect("edge");
    }
    let cfg = SteinerConfig::top_k(1);
    let cases: Vec<Vec<NodeId>> = vec![vec![], vec![NodeId(7)], vec![NodeId(0), NodeId(9)]];
    for terms in &cases {
        let a = top_k_steiner(&g, terms, &cfg);
        let b = top_k_steiner_with(&g, terms, &cfg, &mut SteinerScratch::new());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "terms {terms:?}");
        assert!(a.is_err());
    }
    // 17 distinct terminals exceed the bitmask width on every path.
    let mut big = Graph::with_nodes(20);
    for i in 0..19u32 {
        big.add_edge(NodeId(i), NodeId(i + 1), 1.0).expect("edge");
    }
    let many: Vec<NodeId> = (0..17).map(NodeId).collect();
    assert!(matches!(
        top_k_steiner_with(&big, &many, &cfg, &mut SteinerScratch::new()),
        Err(GraphError::TooManyTerminals { max: 16, got: 17 })
    ));
    assert!(matches!(
        steiner_lower_bound(&big, &many),
        Err(GraphError::TooManyTerminals { max: 16, got: 17 })
    ));
}

#[test]
fn oversized_state_tables_fall_back_to_the_reference() {
    // 70k nodes x 2^2 masks overflows the flat-table cap; the scratch path
    // must delegate to the reference and still agree bitwise.
    let n = 70_000u32;
    let mut g = Graph::with_nodes(n as usize);
    for i in 0..n - 1 {
        g.add_edge(NodeId(i), NodeId(i + 1), 1.0).expect("edge");
    }
    let terms = [NodeId(0), NodeId(3)];
    // k = 1 so both paths stop at the first tree; a path graph has exactly
    // one tree for these terminals, and asking for more would force the
    // reference to drain the entire 70k-node frontier.
    let cfg = SteinerConfig::top_k(1);
    let a = top_k_steiner(&g, &terms, &cfg).expect("connected");
    let b = top_k_steiner_with(&g, &terms, &cfg, &mut SteinerScratch::new()).expect("connected");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.edges(), y.edges());
        assert_eq!(x.cost().to_bits(), y.cost().to_bits());
    }
    let bound = steiner_lower_bound(&g, &terms).expect("connected");
    assert!((bound - 3.0).abs() < 1e-9);
}
