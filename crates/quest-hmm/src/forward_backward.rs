//! Scaled forward-backward recursions.
//!
//! Used by the Baum-Welch trainer (feedback-based mode). Scaling keeps the
//! recursions numerically stable on long observation sequences.

// Index-based loops below intentionally mirror the textbook DP
// recurrences (Rabiner's notation); iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

use crate::error::HmmError;
use crate::model::Hmm;

/// Output of one forward-backward pass.
#[derive(Debug, Clone)]
pub struct ForwardBackward {
    /// Scaled forward variables, `alpha[t][s]`.
    pub alpha: Vec<Vec<f64>>,
    /// Scaled backward variables, `beta[t][s]`.
    pub beta: Vec<Vec<f64>>,
    /// Per-step scaling factors `c[t]` (inverse of the step's alpha sum).
    pub scale: Vec<f64>,
    /// Log-likelihood of the observation sequence under the model.
    pub log_likelihood: f64,
}

impl ForwardBackward {
    /// Posterior state probability `gamma[t][s] = P(q_t = s | O)`.
    ///
    /// With Rabiner scaling, `sum_s alpha[t][s] * beta[t][s] = c[t]`, so the
    /// posterior is recovered by dividing out the step's scale factor.
    pub fn gamma(&self, t: usize, s: usize) -> f64 {
        self.alpha[t][s] * self.beta[t][s] / self.scale[t]
    }
}

/// Run scaled forward-backward. Returns `Err` on malformed emissions and
/// `Ok(None)` when the sequence has zero probability under the model.
pub fn forward_backward(
    model: &Hmm,
    emissions: &[Vec<f64>],
) -> Result<Option<ForwardBackward>, HmmError> {
    model.check_emissions(emissions)?;
    let n = model.n_states();
    let t_len = emissions.len();

    let mut alpha = vec![vec![0.0; n]; t_len];
    let mut scale = vec![0.0; t_len];

    // Forward, with per-step normalization.
    let mut sum = 0.0;
    for s in 0..n {
        alpha[0][s] = model.initial(s) * emissions[0][s];
        sum += alpha[0][s];
    }
    if sum <= 0.0 {
        return Ok(None);
    }
    scale[0] = 1.0 / sum;
    alpha[0].iter_mut().for_each(|v| *v *= scale[0]);

    for t in 1..t_len {
        let mut step_sum = 0.0;
        for s in 0..n {
            let mut a = 0.0;
            for p in 0..n {
                a += alpha[t - 1][p] * model.transition(p, s);
            }
            let v = a * emissions[t][s];
            alpha[t][s] = v;
            step_sum += v;
        }
        if step_sum <= 0.0 {
            return Ok(None);
        }
        scale[t] = 1.0 / step_sum;
        alpha[t].iter_mut().for_each(|v| *v *= scale[t]);
    }

    // Backward with the same scaling factors.
    let mut beta = vec![vec![0.0; n]; t_len];
    beta[t_len - 1]
        .iter_mut()
        .for_each(|v| *v = scale[t_len - 1]);
    for t in (0..t_len - 1).rev() {
        for s in 0..n {
            let mut b = 0.0;
            for q in 0..n {
                b += model.transition(s, q) * emissions[t + 1][q] * beta[t + 1][q];
            }
            beta[t][s] = b * scale[t];
        }
    }

    let log_likelihood = -scale.iter().map(|c| c.ln()).sum::<f64>();
    Ok(Some(ForwardBackward {
        alpha,
        beta,
        scale,
        log_likelihood,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Hmm {
        Hmm::from_distributions(vec![0.6, 0.4], vec![0.7, 0.3, 0.4, 0.6]).unwrap()
    }

    #[test]
    fn likelihood_matches_brute_force() {
        let m = model();
        let e = vec![vec![0.1, 0.6], vec![0.4, 0.3], vec![0.5, 0.1]];
        let fb = forward_backward(&m, &e).unwrap().unwrap();
        // Brute-force total probability.
        let mut total = 0.0;
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    total += m.initial(a)
                        * e[0][a]
                        * m.transition(a, b)
                        * e[1][b]
                        * m.transition(b, c)
                        * e[2][c];
                }
            }
        }
        assert!((fb.log_likelihood - total.ln()).abs() < 1e-9);
    }

    #[test]
    fn gamma_is_a_distribution_per_step() {
        let m = model();
        let e = vec![vec![0.1, 0.6], vec![0.4, 0.3], vec![0.5, 0.1]];
        let fb = forward_backward(&m, &e).unwrap().unwrap();
        for t in 0..3 {
            let g: f64 = (0..2).map(|s| fb.gamma(t, s)).sum();
            assert!((g - 1.0).abs() < 1e-9, "t={t} g={g}");
        }
    }

    #[test]
    fn impossible_sequence_returns_none() {
        let m = model();
        let e = vec![vec![0.0, 0.0]];
        assert!(forward_backward(&m, &e).unwrap().is_none());
    }

    #[test]
    fn long_sequence_is_stable() {
        let m = model();
        let e: Vec<Vec<f64>> = (0..500)
            .map(|i| {
                if i % 2 == 0 {
                    vec![1e-3, 2e-3]
                } else {
                    vec![2e-3, 1e-3]
                }
            })
            .collect();
        let fb = forward_backward(&m, &e).unwrap().unwrap();
        assert!(fb.log_likelihood.is_finite());
        assert!(fb.log_likelihood < 0.0);
    }
}
