//! [`ListDecoder`]: the hot-path list Viterbi — scratch-reusing and
//! top-k-pruned, bit-identical to [`list_viterbi()`](crate::list_viterbi::list_viterbi).
//!
//! The textbook parallel LVA in `list_viterbi.rs` allocates a fresh lattice
//! (`Vec<Vec<Vec<Entry>>>`) per decode and scores every state at every
//! step. This decoder keeps all DP state in flat reusable buffers (zero
//! allocation in steady state beyond the returned paths) and adds an
//! **admissible prune** that skips partial paths provably outside the
//! global top-k:
//!
//! 1. A standard 1-best Viterbi forward pass computes, per final state, the
//!    best full-path score — using *exactly* the same floating-point
//!    operation sequence as the list DP, so each value is bitwise equal to
//!    that state's rank-0 final score. The k-th largest of these, `L`, is a
//!    score actually achieved by k distinct state sequences: a certified
//!    lower bound on the true k-th best score.
//! 2. A backward max-product pass computes `bound[t][s]`: an upper bound on
//!    the score any partial path ending in `(t, s)` can still gain.
//! 3. During the list DP, a candidate with `score + bound[t][s] < L - ε`
//!    can never appear in the global top-k and is skipped. Within one
//!    predecessor's rank list, scores descend, so the first failing rank
//!    ends that predecessor — this is where the work disappears.
//!
//! **Why the output is bit-identical, ties included.** All candidates at
//! one `(t, s)` share the same `bound[t][s]`, so the prune threshold is a
//! pure score cutoff per cell: it removes a *suffix* of the sorted
//! candidate list, never reorders survivors. Every prefix of a true top-k
//! path satisfies `score + bound ≥ final score ≥ L`, so it survives and
//! keeps the per-cell rank it has in the unpruned run; everything removed
//! has every completion strictly below `L` and thus below the k-th best,
//! ties notwithstanding. The margin `ε` (1e-6 in log space) exists only to
//! dominate worst-case floating-point drift between the backward bound's
//! association order and the forward DP's — many orders of magnitude
//! larger than the attainable rounding error, and far smaller than any
//! score gap that could matter. The equivalence is pinned bitwise by the
//! quest-hmm property suite across random models, floor-tied emissions,
//! and degenerate uniform cases.

use crate::error::HmmError;
use crate::model::Hmm;
use crate::viterbi::{ln, DecodedPath};

/// Slack subtracted from the pruning bound, in log-probability units. See
/// the module docs: it dominates floating-point drift without ever pruning
/// a candidate that could reach the top-k.
const PRUNE_MARGIN: f64 = 1e-6;

/// Candidate-work floor (`states × k` per step) below which the prune's two
/// auxiliary passes cost more than the candidate generation they can skip,
/// so the decoder runs the plain flat DP instead. Pruning is lossless, so
/// the switch is invisible in the output — it only decides whether the
/// bound passes are worth their n² per step.
const PRUNE_ENGAGE_WORK: usize = 4096;

/// One k-best lattice entry: score plus backpointer `(prev_state,
/// prev_rank)`.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    score: f64,
    prev_state: u32,
    prev_rank: u32,
}

/// Reusable list-Viterbi decoder. Create once (per worker thread, engine,
/// or query scratch) and call [`ListDecoder::decode`] repeatedly; all DP
/// buffers are retained between calls and grow to the high-water mark of
/// `steps × states × k`.
#[derive(Debug, Clone, Default)]
pub struct ListDecoder {
    /// `ln(initial)` distribution.
    ln_init: Vec<f64>,
    /// `ln(emission)` matrix, row-major `t × n`.
    ln_emis: Vec<f64>,
    /// 1-best forward scores, two rolling rows.
    delta: Vec<f64>,
    delta_next: Vec<f64>,
    /// Backward completion bounds, row-major `t × n`.
    bounds: Vec<f64>,
    /// Lattice entries, `k` slots per `(t, s)` cell.
    entries: Vec<Entry>,
    /// Live entry count per `(t, s)` cell.
    lens: Vec<u32>,
    /// Candidate buffer for one cell.
    cands: Vec<Entry>,
    /// Final-merge buffer: `(state, rank, score)`.
    finals: Vec<(usize, usize, f64)>,
    /// Scratch for the k-th-largest final-delta selection.
    tops: Vec<f64>,
}

impl ListDecoder {
    /// A decoder with empty buffers.
    pub fn new() -> ListDecoder {
        ListDecoder::default()
    }

    /// Top-`k` most probable state sequences, best first — bit-identical to
    /// [`list_viterbi()`](crate::list_viterbi::list_viterbi) on the same inputs (scores, sequences, and
    /// order, ties included).
    pub fn decode(
        &mut self,
        model: &Hmm,
        emissions: &[Vec<f64>],
        k: usize,
    ) -> Result<Vec<DecodedPath>, HmmError> {
        // Engage the prune only when the per-step candidate work is large
        // enough to pay for the 1-best and bound passes; below that the
        // plain flat DP (still allocation-free) is faster. Output is
        // identical either way — pruning is lossless.
        let engage = emissions.len() > 1 && model.n_states() * k >= PRUNE_ENGAGE_WORK;
        self.decode_inner(model, emissions, k, engage)
    }

    /// [`ListDecoder::decode`] with the prune forced on regardless of
    /// lattice size. Same output, by construction; the property suite uses
    /// this to pin prune losslessness on models small enough to brute-force.
    pub fn decode_pruned(
        &mut self,
        model: &Hmm,
        emissions: &[Vec<f64>],
        k: usize,
    ) -> Result<Vec<DecodedPath>, HmmError> {
        self.decode_inner(model, emissions, k, emissions.len() > 1)
    }

    fn decode_inner(
        &mut self,
        model: &Hmm,
        emissions: &[Vec<f64>],
        k: usize,
        engage: bool,
    ) -> Result<Vec<DecodedPath>, HmmError> {
        model.check_emissions(emissions)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        let n = model.n_states();
        let t_len = emissions.len();
        self.prepare(model, emissions, n, t_len);
        let lower = if engage {
            let l = self.one_best_lower_bound(model, n, t_len, k);
            self.backward_bounds(model, n, t_len);
            l
        } else {
            self.bounds.clear();
            self.bounds.resize(t_len * n, 0.0);
            f64::NEG_INFINITY
        };
        self.list_pass(model, n, t_len, k, lower);
        Ok(self.merge_and_backtrack(n, t_len, k))
    }

    /// Fill the log caches and reset the lattice.
    ///
    /// Transition logs are deliberately *not* cached eagerly: emissions are
    /// sparse in this pipeline (a keyword scores 0 against most states), so
    /// every pass below evaluates `ln(transition)` lazily and only for
    /// states whose emission is live — the same trick the reference
    /// decoder's skip gives for free. An eager n² fill costs more than the
    /// whole decode at realistic sparsity.
    fn prepare(&mut self, model: &Hmm, emissions: &[Vec<f64>], n: usize, t_len: usize) {
        self.ln_emis.clear();
        self.ln_emis
            .extend(emissions.iter().flat_map(|row| row.iter().map(|&e| ln(e))));
        self.ln_init.clear();
        self.ln_init.extend((0..n).map(|s| ln(model.initial(s))));
        self.delta.clear();
        self.delta
            .extend((0..n).map(|s| self.ln_init[s] + self.ln_emis[s]));
        self.delta_next.resize(n, f64::NEG_INFINITY);
        self.lens.clear();
        self.lens.resize(t_len * n, 0);
    }

    /// 1-best forward pass; returns the certified lower bound `L` on the
    /// k-th best final score (`-inf` when fewer than `k` final states are
    /// reachable — no pruning then).
    fn one_best_lower_bound(&mut self, model: &Hmm, n: usize, t_len: usize, k: usize) -> f64 {
        // self.delta already holds step 0 (filled in `prepare`).
        for t in 1..t_len {
            for s in 0..n {
                let e = self.ln_emis[t * n + s];
                if e == f64::NEG_INFINITY {
                    self.delta_next[s] = f64::NEG_INFINITY;
                    continue;
                }
                let mut best = f64::NEG_INFINITY;
                for p in 0..n {
                    let d = self.delta[p];
                    if d == f64::NEG_INFINITY {
                        continue;
                    }
                    let tp = ln(model.transition(p, s));
                    if tp == f64::NEG_INFINITY {
                        continue;
                    }
                    // Same association as the list DP: (score + tp) + e.
                    let cand = (d + tp) + e;
                    if cand > best {
                        best = cand;
                    }
                }
                self.delta_next[s] = best;
            }
            std::mem::swap(&mut self.delta, &mut self.delta_next);
        }
        self.tops.clear();
        self.tops
            .extend(self.delta.iter().copied().filter(|d| d.is_finite()));
        if self.tops.len() < k {
            return f64::NEG_INFINITY;
        }
        self.tops
            .sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        self.tops[k - 1]
    }

    /// Backward max-product completion bounds: `bounds[t][s]` ≥ anything a
    /// partial path at `(t, s)` can still add before the final step.
    fn backward_bounds(&mut self, model: &Hmm, n: usize, t_len: usize) {
        self.bounds.clear();
        self.bounds.resize(t_len * n, 0.0);
        for t in (0..t_len.saturating_sub(1)).rev() {
            for p in 0..n {
                let mut best = f64::NEG_INFINITY;
                for s in 0..n {
                    let e = self.ln_emis[(t + 1) * n + s];
                    if e == f64::NEG_INFINITY {
                        continue; // dead state: skip the transition log too
                    }
                    let tp = ln(model.transition(p, s));
                    if tp == f64::NEG_INFINITY {
                        continue;
                    }
                    let via = (tp + e) + self.bounds[(t + 1) * n + s];
                    if via > best {
                        best = via;
                    }
                }
                self.bounds[t * n + p] = best;
            }
        }
    }

    /// The pruned parallel-LVA pass over the flat lattice.
    fn list_pass(&mut self, model: &Hmm, n: usize, t_len: usize, k: usize, lower: f64) {
        let prune = lower != f64::NEG_INFINITY;
        self.entries.resize(t_len * n * k, Entry::default());
        // Step 0: one entry per reachable state, scored exactly as the
        // reference decoder does: ln(init) + ln(e_0).
        for s in 0..n {
            let init_score = self.ln_init[s] + self.ln_emis[s];
            if init_score == f64::NEG_INFINITY {
                continue;
            }
            if prune && init_score + self.bounds[s] < lower - PRUNE_MARGIN {
                continue;
            }
            self.entries[s * k] = Entry {
                score: init_score,
                prev_state: u32::MAX,
                prev_rank: 0,
            };
            self.lens[s] = 1;
        }
        for t in 1..t_len {
            for s in 0..n {
                let e = self.ln_emis[t * n + s];
                if e == f64::NEG_INFINITY {
                    continue;
                }
                let threshold = if prune {
                    (lower - PRUNE_MARGIN) - self.bounds[t * n + s]
                } else {
                    f64::NEG_INFINITY
                };
                self.cands.clear();
                for p in 0..n {
                    let prev_live = self.lens[(t - 1) * n + p];
                    if prev_live == 0 {
                        continue; // no surviving prefixes: skip the ln
                    }
                    let tp = ln(model.transition(p, s));
                    if tp == f64::NEG_INFINITY {
                        continue;
                    }
                    let prev_len = prev_live as usize;
                    let prev_base = ((t - 1) * n + p) * k;
                    for rank in 0..prev_len {
                        let pe = self.entries[prev_base + rank];
                        let score = (pe.score + tp) + e;
                        if score < threshold {
                            // Ranks descend in score: every later rank of
                            // this predecessor fails too.
                            break;
                        }
                        self.cands.push(Entry {
                            score,
                            prev_state: p as u32,
                            prev_rank: rank as u32,
                        });
                    }
                }
                // Stable sort: ties keep (p, rank) enumeration order, same
                // as the reference decoder.
                self.cands.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let keep = self.cands.len().min(k);
                let base = (t * n + s) * k;
                self.entries[base..base + keep].copy_from_slice(&self.cands[..keep]);
                self.lens[t * n + s] = keep as u32;
            }
        }
    }

    /// Merge the final step's per-state lists, take the global top-k, and
    /// backtrack each path — identical ordering to the reference decoder.
    fn merge_and_backtrack(&mut self, n: usize, t_len: usize, k: usize) -> Vec<DecodedPath> {
        self.finals.clear();
        for s in 0..n {
            let base = ((t_len - 1) * n + s) * k;
            for rank in 0..self.lens[(t_len - 1) * n + s] as usize {
                self.finals.push((s, rank, self.entries[base + rank].score));
            }
        }
        self.finals
            .sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        self.finals.truncate(k);
        let mut out = Vec::with_capacity(self.finals.len());
        for &(state, rank, score) in &self.finals {
            let mut states = vec![0usize; t_len];
            let (mut s, mut r) = (state, rank);
            for t in (0..t_len).rev() {
                states[t] = s;
                let e = self.entries[(t * n + s) * k + r];
                s = e.prev_state as usize;
                r = e.prev_rank as usize;
            }
            out.push(DecodedPath {
                states,
                log_prob: score,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_viterbi::list_viterbi;

    fn model() -> Hmm {
        Hmm::from_distributions(vec![0.6, 0.4], vec![0.7, 0.3, 0.4, 0.6]).unwrap()
    }

    fn assert_bitwise_equal(model: &Hmm, emissions: &[Vec<f64>], k: usize) {
        let reference = list_viterbi(model, emissions, k).unwrap();
        let mut decoder = ListDecoder::new();
        for forced in [false, true] {
            let got = if forced {
                decoder.decode_pruned(model, emissions, k).unwrap()
            } else {
                decoder.decode(model, emissions, k).unwrap()
            };
            assert_eq!(got.len(), reference.len(), "path count (k={k})");
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.states, b.states, "state sequence (k={k} forced={forced})");
                assert_eq!(
                    a.log_prob.to_bits(),
                    b.log_prob.to_bits(),
                    "score bits (k={k} forced={forced}): {} vs {}",
                    a.log_prob,
                    b.log_prob
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_textbook_example() {
        let m = model();
        let e = vec![vec![0.1, 0.6], vec![0.4, 0.3], vec![0.5, 0.1]];
        for k in [1, 2, 4, 8, 16] {
            assert_bitwise_equal(&m, &e, k);
        }
    }

    #[test]
    fn matches_reference_under_floor_ties() {
        // Uniform "emission floor" rows create massive exact score ties —
        // the case where a sloppy prune would reorder the output.
        let m = Hmm::uniform(4).unwrap();
        let e = vec![vec![1e-6; 4], vec![1e-6; 4], vec![1e-6; 4]];
        for k in [1, 3, 5, 64] {
            assert_bitwise_equal(&m, &e, k);
        }
    }

    #[test]
    fn matches_reference_with_blocked_states() {
        let m = model();
        let e = vec![vec![0.5, 0.0], vec![0.0, 0.9], vec![0.5, 0.5]];
        for k in [1, 2, 8] {
            assert_bitwise_equal(&m, &e, k);
        }
    }

    #[test]
    fn infeasible_and_k0() {
        let m = model();
        let mut d = ListDecoder::new();
        assert!(d.decode(&m, &[vec![0.0, 0.0]], 3).unwrap().is_empty());
        assert!(d
            .decode(&m, &[vec![0.5, 0.5], vec![0.4, 0.4]], 0)
            .unwrap()
            .is_empty());
        assert!(d.decode(&m, &[], 3).is_err(), "empty emissions rejected");
    }

    #[test]
    fn scratch_reuse_across_varied_shapes() {
        // Same decoder instance across different n, t, k: buffers must not
        // leak state between decodes.
        let mut d = ListDecoder::new();
        let small = model();
        let big = Hmm::uniform(7).unwrap();
        for round in 0..3 {
            let e2 = vec![vec![0.3, 0.7], vec![0.6, 0.2]];
            let e7 = vec![vec![0.2; 7], vec![0.9; 7], vec![0.1; 7], vec![0.5; 7]];
            let k = 1 + round * 3;
            let a = d.decode(&small, &e2, k).unwrap();
            let ra = list_viterbi(&small, &e2, k).unwrap();
            assert_eq!(a.len(), ra.len());
            let b = d.decode(&big, &e7, k).unwrap();
            let rb = list_viterbi(&big, &e7, k).unwrap();
            for (x, y) in b.iter().zip(&rb) {
                assert_eq!(x.states, y.states);
                assert_eq!(x.log_prob.to_bits(), y.log_prob.to_bits());
            }
            assert_eq!(a.len(), ra.len());
        }
    }
}
