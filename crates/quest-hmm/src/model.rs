//! The Hidden Markov Model type.
//!
//! QUEST models the keyword-to-schema mapping problem as an HMM whose hidden
//! states are database elements (tables, attributes, attribute domains) and
//! whose observations are the user's keywords (paper §2, §3). Emission
//! probabilities are *not* a fixed symbol table: they are computed per
//! keyword by the wrapper's search function. The model therefore stores only
//! the initial distribution and the transition matrix; every inference
//! routine takes the per-step emission likelihoods as input.

use crate::error::HmmError;

/// Dense emission likelihoods for one observation sequence: for each time
/// step `t`, `emissions[t][s]` is `P(observation_t | state = s)`. Values must
/// be non-negative; they need not sum to one across states (they are
/// likelihoods, not a distribution over states).
pub type Emissions = Vec<Vec<f64>>;

/// A discrete-state HMM with externally supplied emissions.
#[derive(Debug, Clone, PartialEq)]
pub struct Hmm {
    n: usize,
    /// Initial state distribution, linear space, sums to 1.
    initial: Vec<f64>,
    /// Row-major transition matrix `trans[from * n + to]`, rows sum to 1.
    trans: Vec<f64>,
}

impl Hmm {
    /// Uniform model over `n` states.
    pub fn uniform(n: usize) -> Result<Hmm, HmmError> {
        if n == 0 {
            return Err(HmmError::Empty);
        }
        let p = 1.0 / n as f64;
        Ok(Hmm {
            n,
            initial: vec![p; n],
            trans: vec![p; n * n],
        })
    }

    /// Build from explicit distributions. `initial` must have length `n` and
    /// sum to 1; `trans` must be `n*n` row-major with each row summing to 1
    /// (tolerance 1e-6). Rows summing to zero are rejected.
    pub fn from_distributions(initial: Vec<f64>, trans: Vec<f64>) -> Result<Hmm, HmmError> {
        let n = initial.len();
        if n == 0 {
            return Err(HmmError::Empty);
        }
        if trans.len() != n * n {
            return Err(HmmError::Dimension {
                expected: n * n,
                got: trans.len(),
            });
        }
        check_distribution(&initial, "initial")?;
        for r in 0..n {
            check_distribution(&trans[r * n..(r + 1) * n], "transition row")?;
        }
        Ok(Hmm { n, initial, trans })
    }

    /// Build from non-negative *weights*, normalizing each distribution.
    /// Zero rows become uniform.
    pub fn from_weights(initial: Vec<f64>, trans: Vec<f64>) -> Result<Hmm, HmmError> {
        let n = initial.len();
        if n == 0 {
            return Err(HmmError::Empty);
        }
        if trans.len() != n * n {
            return Err(HmmError::Dimension {
                expected: n * n,
                got: trans.len(),
            });
        }
        let mut initial = initial;
        normalize_or_uniform(&mut initial)?;
        let mut trans = trans;
        for r in 0..n {
            normalize_or_uniform(&mut trans[r * n..(r + 1) * n])?;
        }
        Ok(Hmm { n, initial, trans })
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Initial probability of a state.
    pub fn initial(&self, s: usize) -> f64 {
        self.initial[s]
    }

    /// Transition probability `from -> to`.
    pub fn transition(&self, from: usize, to: usize) -> f64 {
        self.trans[from * self.n + to]
    }

    /// The full initial distribution.
    pub fn initial_dist(&self) -> &[f64] {
        &self.initial
    }

    /// One row of the transition matrix.
    pub fn transition_row(&self, from: usize) -> &[f64] {
        &self.trans[from * self.n..(from + 1) * self.n]
    }

    /// Replace the distributions (used by training). Same validation as
    /// [`Hmm::from_distributions`].
    pub fn set_distributions(
        &mut self,
        initial: Vec<f64>,
        trans: Vec<f64>,
    ) -> Result<(), HmmError> {
        let updated = Hmm::from_distributions(initial, trans)?;
        if updated.n != self.n {
            return Err(HmmError::Dimension {
                expected: self.n,
                got: updated.n,
            });
        }
        *self = updated;
        Ok(())
    }

    /// Validate an emission matrix against this model: at least one step,
    /// every step dense over `n` states, all values finite and non-negative.
    pub fn check_emissions(&self, emissions: &[Vec<f64>]) -> Result<(), HmmError> {
        if emissions.is_empty() {
            return Err(HmmError::Empty);
        }
        for (t, row) in emissions.iter().enumerate() {
            if row.len() != self.n {
                return Err(HmmError::Dimension {
                    expected: self.n,
                    got: row.len(),
                });
            }
            for &v in row {
                if !v.is_finite() || v < 0.0 {
                    return Err(HmmError::InvalidEmission { step: t, value: v });
                }
            }
        }
        Ok(())
    }
}

fn check_distribution(p: &[f64], what: &'static str) -> Result<(), HmmError> {
    let mut sum = 0.0;
    for &v in p {
        if !v.is_finite() || v < 0.0 {
            return Err(HmmError::InvalidProbability { what, value: v });
        }
        sum += v;
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(HmmError::NotNormalized { what, sum });
    }
    Ok(())
}

fn normalize_or_uniform(p: &mut [f64]) -> Result<(), HmmError> {
    let mut sum = 0.0;
    for &v in p.iter() {
        if !v.is_finite() || v < 0.0 {
            return Err(HmmError::InvalidProbability {
                what: "weight",
                value: v,
            });
        }
        sum += v;
    }
    if sum <= 0.0 {
        let u = 1.0 / p.len() as f64;
        p.iter_mut().for_each(|v| *v = u);
    } else {
        p.iter_mut().for_each(|v| *v /= sum);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_is_normalized() {
        let m = Hmm::uniform(4).unwrap();
        assert_eq!(m.n_states(), 4);
        assert!((m.initial_dist().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for r in 0..4 {
            assert!((m.transition_row(r).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_states_rejected() {
        assert!(matches!(Hmm::uniform(0), Err(HmmError::Empty)));
    }

    #[test]
    fn from_distributions_validates() {
        assert!(Hmm::from_distributions(vec![0.5, 0.4], vec![0.5; 4]).is_err()); // init sums to .9
        assert!(Hmm::from_distributions(vec![0.5, 0.5], vec![0.5; 3]).is_err()); // wrong dims
        assert!(Hmm::from_distributions(vec![0.5, 0.5], vec![-0.5, 1.5, 0.5, 0.5]).is_err());
        let m = Hmm::from_distributions(vec![0.3, 0.7], vec![0.1, 0.9, 0.8, 0.2]).unwrap();
        assert!((m.transition(1, 0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn from_weights_normalizes_and_handles_zero_rows() {
        let m = Hmm::from_weights(vec![2.0, 2.0], vec![3.0, 1.0, 0.0, 0.0]).unwrap();
        assert!((m.initial(0) - 0.5).abs() < 1e-12);
        assert!((m.transition(0, 0) - 0.75).abs() < 1e-12);
        // zero row becomes uniform
        assert!((m.transition(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn emission_validation() {
        let m = Hmm::uniform(2).unwrap();
        assert!(m.check_emissions(&[]).is_err());
        assert!(m.check_emissions(&[vec![0.1]]).is_err());
        assert!(m.check_emissions(&[vec![0.1, f64::NAN]]).is_err());
        assert!(m.check_emissions(&[vec![0.1, 0.2]]).is_ok());
    }
}
