//! The parallel List Viterbi Algorithm (Seshadri & Sundberg, 1994): the top-k
//! most probable state sequences, globally ranked.
//!
//! This is the inference routine the forward module runs to produce the
//! top-k *configurations* for a keyword query (paper §2, §3). The parallel
//! LVA keeps, for every state at every step, the k best partial paths ending
//! in that state; candidates at step `t+1` merge the per-rank extensions of
//! all predecessors.

// Index-based loops below intentionally mirror the textbook DP
// recurrences (Rabiner's notation); iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

use crate::error::HmmError;
use crate::model::Hmm;
use crate::viterbi::{ln, DecodedPath};

/// Entry in the per-state k-best list: score plus backpointer
/// `(prev_state, prev_rank)`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    score: f64,
    prev_state: usize,
    prev_rank: usize,
}

/// Top-`k` most probable state sequences, best first. Sequences are distinct
/// by construction. Fewer than `k` are returned when fewer have positive
/// probability.
pub fn list_viterbi(
    model: &Hmm,
    emissions: &[Vec<f64>],
    k: usize,
) -> Result<Vec<DecodedPath>, HmmError> {
    model.check_emissions(emissions)?;
    if k == 0 {
        return Ok(Vec::new());
    }
    let n = model.n_states();
    let t_len = emissions.len();

    // lists[t][s]: up to k entries sorted descending by score.
    let mut lists: Vec<Vec<Vec<Entry>>> = Vec::with_capacity(t_len);
    let first: Vec<Vec<Entry>> = (0..n)
        .map(|s| {
            let sc = ln(model.initial(s)) + ln(emissions[0][s]);
            if sc == f64::NEG_INFINITY {
                Vec::new()
            } else {
                vec![Entry {
                    score: sc,
                    prev_state: usize::MAX,
                    prev_rank: 0,
                }]
            }
        })
        .collect();
    lists.push(first);

    for t in 1..t_len {
        let prev = &lists[t - 1];
        let mut cur: Vec<Vec<Entry>> = Vec::with_capacity(n);
        for s in 0..n {
            let e = ln(emissions[t][s]);
            if e == f64::NEG_INFINITY {
                cur.push(Vec::new());
                continue;
            }
            let mut cands: Vec<Entry> = Vec::new();
            for p in 0..n {
                let tp = ln(model.transition(p, s));
                if tp == f64::NEG_INFINITY {
                    continue;
                }
                for (rank, pe) in prev[p].iter().enumerate() {
                    cands.push(Entry {
                        score: pe.score + tp + e,
                        prev_state: p,
                        prev_rank: rank,
                    });
                }
            }
            cands.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            cands.truncate(k);
            cur.push(cands);
        }
        lists.push(cur);
    }

    // Merge final lists across states, take global top-k, backtrack each.
    let mut finals: Vec<(usize, usize, f64)> = Vec::new(); // (state, rank, score)
    for s in 0..n {
        for (rank, e) in lists[t_len - 1][s].iter().enumerate() {
            finals.push((s, rank, e.score));
        }
    }
    finals.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    finals.truncate(k);

    let mut out = Vec::with_capacity(finals.len());
    for (state, rank, score) in finals {
        let mut states = vec![0usize; t_len];
        let (mut s, mut r) = (state, rank);
        for t in (0..t_len).rev() {
            states[t] = s;
            let e = lists[t][s][r];
            s = e.prev_state;
            r = e.prev_rank;
        }
        out.push(DecodedPath {
            states,
            log_prob: score,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viterbi::viterbi;

    fn model() -> Hmm {
        Hmm::from_distributions(vec![0.6, 0.4], vec![0.7, 0.3, 0.4, 0.6]).unwrap()
    }

    fn emissions() -> Vec<Vec<f64>> {
        vec![vec![0.1, 0.6], vec![0.4, 0.3], vec![0.5, 0.1]]
    }

    #[test]
    fn k1_equals_viterbi() {
        let m = model();
        let e = emissions();
        let v = viterbi(&m, &e).unwrap().unwrap();
        let l = list_viterbi(&m, &e, 1).unwrap();
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].states, v.states);
        assert!((l[0].log_prob - v.log_prob).abs() < 1e-12);
    }

    #[test]
    fn scores_non_increasing_and_sequences_distinct() {
        let m = model();
        let e = emissions();
        let l = list_viterbi(&m, &e, 8).unwrap();
        assert_eq!(l.len(), 8); // 2^3 possible sequences
        for w in l.windows(2) {
            assert!(w[0].log_prob >= w[1].log_prob);
        }
        let mut seqs: Vec<_> = l.iter().map(|p| p.states.clone()).collect();
        seqs.sort();
        seqs.dedup();
        assert_eq!(seqs.len(), 8);
    }

    #[test]
    fn exhaustive_enumeration_matches_brute_force() {
        let m = model();
        let e = emissions();
        // Brute force all 8 sequences.
        let mut all: Vec<(Vec<usize>, f64)> = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    let p = m.initial(a)
                        * e[0][a]
                        * m.transition(a, b)
                        * e[1][b]
                        * m.transition(b, c)
                        * e[2][c];
                    all.push((vec![a, b, c], p.ln()));
                }
            }
        }
        all.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap());
        let l = list_viterbi(&m, &e, 4).unwrap();
        for (got, want) in l.iter().zip(all.iter()) {
            assert_eq!(&got.states, &want.0);
            assert!((got.log_prob - want.1).abs() < 1e-9);
        }
    }

    #[test]
    fn k_larger_than_path_count() {
        let m = model();
        let e = vec![vec![0.5, 0.0], vec![0.5, 0.5]];
        // Only 2 feasible sequences (first state forced to 0).
        let l = list_viterbi(&m, &e, 10).unwrap();
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn k0_returns_empty() {
        let m = model();
        assert!(list_viterbi(&m, &emissions(), 0).unwrap().is_empty());
    }

    #[test]
    fn infeasible_returns_empty() {
        let m = model();
        let e = vec![vec![0.0, 0.0], vec![0.5, 0.5]];
        assert!(list_viterbi(&m, &e, 3).unwrap().is_empty());
    }
}
