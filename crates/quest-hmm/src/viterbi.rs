//! The Viterbi algorithm in log space.

// Index-based loops below intentionally mirror the textbook DP
// recurrences (Rabiner's notation); iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

use crate::error::HmmError;
use crate::model::Hmm;

/// A decoded state sequence with its log-probability.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedPath {
    /// One state per observation.
    pub states: Vec<usize>,
    /// Natural-log joint probability of states and observations.
    pub log_prob: f64,
}

/// Most probable state sequence for the given emission likelihoods, or
/// `None` when no sequence has positive probability.
pub fn viterbi(model: &Hmm, emissions: &[Vec<f64>]) -> Result<Option<DecodedPath>, HmmError> {
    model.check_emissions(emissions)?;
    let n = model.n_states();
    let t_len = emissions.len();

    // delta[s]: best log prob of any path ending in s; psi[t][s]: argmax prev.
    let mut delta: Vec<f64> = (0..n)
        .map(|s| ln(model.initial(s)) + ln(emissions[0][s]))
        .collect();
    let mut psi: Vec<Vec<usize>> = Vec::with_capacity(t_len);

    for t in 1..t_len {
        let mut next = vec![f64::NEG_INFINITY; n];
        let mut back = vec![0usize; n];
        for s in 0..n {
            let e = ln(emissions[t][s]);
            if e == f64::NEG_INFINITY {
                continue;
            }
            let mut best = f64::NEG_INFINITY;
            let mut arg = 0usize;
            for p in 0..n {
                if delta[p] == f64::NEG_INFINITY {
                    continue;
                }
                let cand = delta[p] + ln(model.transition(p, s));
                if cand > best {
                    best = cand;
                    arg = p;
                }
            }
            if best > f64::NEG_INFINITY {
                next[s] = best + e;
                back[s] = arg;
            }
        }
        delta = next;
        psi.push(back);
    }

    let (mut s, mut best) = (0usize, f64::NEG_INFINITY);
    for (i, &d) in delta.iter().enumerate() {
        if d > best {
            best = d;
            s = i;
        }
    }
    if best == f64::NEG_INFINITY {
        return Ok(None);
    }
    let mut states = vec![0usize; t_len];
    states[t_len - 1] = s;
    for t in (1..t_len).rev() {
        s = psi[t - 1][states[t]];
        states[t - 1] = s;
    }
    Ok(Some(DecodedPath {
        states,
        log_prob: best,
    }))
}

#[inline]
pub(crate) fn ln(p: f64) -> f64 {
    if p <= 0.0 {
        f64::NEG_INFINITY
    } else {
        p.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic two-state weather example with hand-checkable numbers.
    fn model() -> Hmm {
        Hmm::from_distributions(vec![0.6, 0.4], vec![0.7, 0.3, 0.4, 0.6]).unwrap()
    }

    #[test]
    fn decodes_hand_computed_sequence() {
        let m = model();
        // Emissions for observations [walk, shop, clean] in the classic
        // Rainy(0)/Sunny(1) example with B = [[.1,.4,.5],[.6,.3,.1]].
        let e = vec![vec![0.1, 0.6], vec![0.4, 0.3], vec![0.5, 0.1]];
        let d = viterbi(&m, &e).unwrap().unwrap();
        assert_eq!(d.states, vec![1, 0, 0]);
        let expected = (0.4f64 * 0.6 * 0.4 * 0.4 * 0.7 * 0.5).ln();
        assert!((d.log_prob - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_emissions_everywhere_yields_none() {
        let m = model();
        let e = vec![vec![0.0, 0.0]];
        assert_eq!(viterbi(&m, &e).unwrap(), None);
    }

    #[test]
    fn blocked_state_is_avoided() {
        let m = model();
        // Second step only state 1 can emit.
        let e = vec![vec![0.5, 0.5], vec![0.0, 0.9]];
        let d = viterbi(&m, &e).unwrap().unwrap();
        assert_eq!(d.states[1], 1);
    }

    #[test]
    fn single_step_picks_max_product() {
        let m = model();
        let e = vec![vec![0.9, 0.1]];
        let d = viterbi(&m, &e).unwrap().unwrap();
        assert_eq!(d.states, vec![0]);
        assert!((d.log_prob - (0.6f64 * 0.9).ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_emissions() {
        let m = model();
        assert!(viterbi(&m, &[]).is_err());
        assert!(viterbi(&m, &[vec![0.1]]).is_err());
    }
}
