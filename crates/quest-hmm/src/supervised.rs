//! Supervised (count-based) training from validated state sequences.
//!
//! This implements the training side of "the list Viterbi training algorithm
//! and its application to keyword search over databases" (Rota et al., CIKM
//! 2011, paper reference \[4\]): when the user validates an explanation, the
//! configuration's state sequence becomes a labelled example. Counting
//! initial states and transitions with additive smoothing yields a
//! maximum-a-posteriori estimate of the HMM parameters, which can be updated
//! online as feedback arrives.

use crate::error::HmmError;
use crate::model::Hmm;

/// Accumulates validated state sequences and produces HMM parameters.
#[derive(Debug, Clone)]
pub struct SupervisedTrainer {
    n: usize,
    /// Additive (Laplace) smoothing constant.
    smoothing: f64,
    init_counts: Vec<f64>,
    trans_counts: Vec<f64>,
    sequences_seen: usize,
}

impl SupervisedTrainer {
    /// New trainer over `n` states with smoothing constant `smoothing`
    /// (use ~1.0 for Laplace, smaller for sharper estimates).
    pub fn new(n: usize, smoothing: f64) -> Result<SupervisedTrainer, HmmError> {
        if n == 0 {
            return Err(HmmError::Empty);
        }
        if !smoothing.is_finite() || smoothing < 0.0 {
            return Err(HmmError::InvalidProbability {
                what: "smoothing",
                value: smoothing,
            });
        }
        Ok(SupervisedTrainer {
            n,
            smoothing,
            init_counts: vec![0.0; n],
            trans_counts: vec![0.0; n * n],
            sequences_seen: 0,
        })
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Number of sequences observed so far.
    pub fn sequences_seen(&self) -> usize {
        self.sequences_seen
    }

    /// Record one validated state sequence with a confidence weight
    /// (weight 1.0 = fully trusted validation; the engine uses lower weights
    /// for indirect feedback).
    pub fn observe_weighted(&mut self, states: &[usize], weight: f64) -> Result<(), HmmError> {
        if states.is_empty() {
            return Err(HmmError::Empty);
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(HmmError::InvalidProbability {
                what: "weight",
                value: weight,
            });
        }
        for &s in states {
            if s >= self.n {
                return Err(HmmError::Dimension {
                    expected: self.n,
                    got: s + 1,
                });
            }
        }
        self.init_counts[states[0]] += weight;
        for w in states.windows(2) {
            self.trans_counts[w[0] * self.n + w[1]] += weight;
        }
        self.sequences_seen += 1;
        Ok(())
    }

    /// Record one validated state sequence with weight 1.
    pub fn observe(&mut self, states: &[usize]) -> Result<(), HmmError> {
        self.observe_weighted(states, 1.0)
    }

    /// Record a *negative* example: the user rejected this configuration.
    /// Its transitions are discounted (never below zero).
    pub fn observe_negative(&mut self, states: &[usize], weight: f64) -> Result<(), HmmError> {
        if states.is_empty() {
            return Err(HmmError::Empty);
        }
        for &s in states {
            if s >= self.n {
                return Err(HmmError::Dimension {
                    expected: self.n,
                    got: s + 1,
                });
            }
        }
        let w = weight.abs();
        self.init_counts[states[0]] = (self.init_counts[states[0]] - w).max(0.0);
        for win in states.windows(2) {
            let c = &mut self.trans_counts[win[0] * self.n + win[1]];
            *c = (*c - w).max(0.0);
        }
        self.sequences_seen += 1;
        Ok(())
    }

    /// Build the smoothed HMM from the accumulated counts.
    pub fn build(&self) -> Result<Hmm, HmmError> {
        let n = self.n;
        let initial: Vec<f64> = self
            .init_counts
            .iter()
            .map(|c| c + self.smoothing)
            .collect();
        let mut trans = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                trans[i * n + j] = self.trans_counts[i * n + j] + self.smoothing;
            }
        }
        Hmm::from_weights(initial, trans)
    }

    /// Merge another trainer's counts into this one (e.g. feedback collected
    /// by different sessions).
    pub fn merge(&mut self, other: &SupervisedTrainer) -> Result<(), HmmError> {
        if other.n != self.n {
            return Err(HmmError::Dimension {
                expected: self.n,
                got: other.n,
            });
        }
        for (a, b) in self.init_counts.iter_mut().zip(&other.init_counts) {
            *a += b;
        }
        for (a, b) in self.trans_counts.iter_mut().zip(&other.trans_counts) {
            *a += b;
        }
        self.sequences_seen += other.sequences_seen;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_build_is_uniform() {
        let t = SupervisedTrainer::new(3, 1.0).unwrap();
        let m = t.build().unwrap();
        for s in 0..3 {
            assert!((m.initial(s) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn counts_shape_distributions() {
        let mut t = SupervisedTrainer::new(2, 0.1).unwrap();
        for _ in 0..20 {
            t.observe(&[0, 1, 0, 1]).unwrap();
        }
        let m = t.build().unwrap();
        assert!(m.initial(0) > 0.9);
        assert!(m.transition(0, 1) > 0.9);
        assert!(m.transition(1, 0) > 0.9);
    }

    #[test]
    fn negative_feedback_discounts() {
        let mut t = SupervisedTrainer::new(2, 0.1).unwrap();
        t.observe(&[0, 0]).unwrap();
        t.observe(&[0, 0]).unwrap();
        let before = t.build().unwrap().transition(0, 0);
        t.observe_negative(&[0, 0], 1.5).unwrap();
        let after = t.build().unwrap().transition(0, 0);
        assert!(after < before);
        // Discounting floors at zero.
        t.observe_negative(&[0, 0], 100.0).unwrap();
        let m = t.build().unwrap();
        assert!((m.transition(0, 0) - m.transition(0, 1)).abs() < 1e-9);
    }

    #[test]
    fn rejects_out_of_range_states() {
        let mut t = SupervisedTrainer::new(2, 1.0).unwrap();
        assert!(t.observe(&[0, 5]).is_err());
        assert!(t.observe(&[]).is_err());
        assert!(t.observe_weighted(&[0], f64::NAN).is_err());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = SupervisedTrainer::new(2, 0.5).unwrap();
        let mut b = SupervisedTrainer::new(2, 0.5).unwrap();
        a.observe(&[0, 1]).unwrap();
        b.observe(&[0, 1]).unwrap();
        b.observe(&[0, 1]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.sequences_seen(), 3);
        let m = a.build().unwrap();
        assert!(m.transition(0, 1) > 0.8);
        let c = SupervisedTrainer::new(3, 0.5).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn weighted_observations_count_proportionally() {
        let mut t = SupervisedTrainer::new(2, 0.0001).unwrap();
        t.observe_weighted(&[0, 0], 3.0).unwrap();
        t.observe_weighted(&[0, 1], 1.0).unwrap();
        let m = t.build().unwrap();
        assert!((m.transition(0, 0) - 0.75).abs() < 1e-3);
    }
}
