//! Baum-Welch Expectation-Maximization training with fixed emissions.
//!
//! QUEST's feedback-based operating mode "applies an Expectation-Maximization
//! on-line training algorithm to a dataset composed of previous searches
//! validated by the user" (paper §3). Emission probabilities come from the
//! wrapper's search function and are *not* re-estimated; training updates the
//! initial distribution and the transition matrix — the quantities the
//! a-priori heuristics guess and feedback refines.

// Index-based loops below intentionally mirror the textbook DP
// recurrences (Rabiner's notation); iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

use crate::error::HmmError;
use crate::forward_backward::forward_backward;
use crate::model::{Emissions, Hmm};

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Total log-likelihood after each iteration.
    pub log_likelihoods: Vec<f64>,
    /// Sequences skipped because they have zero probability under the model.
    pub skipped_sequences: usize,
}

impl TrainReport {
    /// Final log-likelihood, if any iteration ran.
    pub fn final_log_likelihood(&self) -> Option<f64> {
        self.log_likelihoods.last().copied()
    }
}

/// One EM step over a batch of observation sequences (each given as its
/// per-step emission likelihood matrix). Returns the total log-likelihood of
/// the batch *before* the update, or `None` if every sequence was
/// impossible.
pub fn baum_welch_step(model: &mut Hmm, batch: &[Emissions]) -> Result<Option<f64>, HmmError> {
    let n = model.n_states();
    let mut init_acc = vec![0.0; n];
    let mut xi_acc = vec![0.0; n * n]; // numerator of a_ij
    let mut gamma_acc = vec![0.0; n]; // denominator of a_ij (t < T-1)
    let mut total_ll = 0.0;
    let mut used = 0usize;

    for emissions in batch {
        let Some(fb) = forward_backward(model, emissions)? else {
            continue;
        };
        used += 1;
        total_ll += fb.log_likelihood;
        let t_len = emissions.len();
        for s in 0..n {
            init_acc[s] += fb.gamma(0, s);
        }
        for t in 0..t_len.saturating_sub(1) {
            for i in 0..n {
                let g = fb.gamma(t, i);
                gamma_acc[i] += g;
                for j in 0..n {
                    // Scaled xi needs no extra normalization (Rabiner eq. 109).
                    let xi = fb.alpha[t][i]
                        * model.transition(i, j)
                        * emissions[t + 1][j]
                        * fb.beta[t + 1][j];
                    xi_acc[i * n + j] += xi;
                }
            }
        }
    }
    if used == 0 {
        return Ok(None);
    }

    // M step.
    let mut initial = init_acc;
    let isum: f64 = initial.iter().sum();
    if isum > 0.0 {
        initial.iter_mut().for_each(|v| *v /= isum);
    } else {
        initial = model.initial_dist().to_vec();
    }
    let mut trans = vec![0.0; n * n];
    for i in 0..n {
        if gamma_acc[i] > 0.0 {
            // Normalize the row of accumulated xi; tiny numerical drift from
            // gamma_acc is corrected by renormalizing the row itself.
            let row_sum: f64 = (0..n).map(|j| xi_acc[i * n + j]).sum();
            if row_sum > 0.0 {
                for j in 0..n {
                    trans[i * n + j] = xi_acc[i * n + j] / row_sum;
                }
                continue;
            }
        }
        // State never visited before the last step: keep its old row.
        trans[i * n..(i + 1) * n].copy_from_slice(model.transition_row(i));
    }
    model.set_distributions(initial, trans)?;
    Ok(Some(total_ll))
}

/// Iterate EM until the batch log-likelihood improves by less than `tol` or
/// `max_iters` is reached.
pub fn train(
    model: &mut Hmm,
    batch: &[Emissions],
    max_iters: usize,
    tol: f64,
) -> Result<TrainReport, HmmError> {
    let mut lls = Vec::new();
    let mut skipped = 0usize;
    for emissions in batch {
        if forward_backward(model, emissions)?.is_none() {
            skipped += 1;
        }
    }
    let mut prev: Option<f64> = None;
    for _ in 0..max_iters {
        let Some(ll) = baum_welch_step(model, batch)? else {
            break;
        };
        lls.push(ll);
        if let Some(p) = prev {
            if (ll - p).abs() < tol {
                break;
            }
        }
        prev = Some(ll);
    }
    Ok(TrainReport {
        iterations: lls.len(),
        log_likelihoods: lls,
        skipped_sequences: skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Hmm {
        Hmm::from_distributions(vec![0.5, 0.5], vec![0.5, 0.5, 0.5, 0.5]).unwrap()
    }

    /// Emissions encoding a near-deterministic alternating pattern.
    fn alternating_batch() -> Vec<Emissions> {
        let hi = 0.95;
        let lo = 0.05;
        (0..4)
            .map(|_| {
                (0..6)
                    .map(|t| {
                        if t % 2 == 0 {
                            vec![hi, lo]
                        } else {
                            vec![lo, hi]
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn em_increases_likelihood_monotonically() {
        let mut m = model();
        let batch = alternating_batch();
        let mut last = f64::NEG_INFINITY;
        for _ in 0..10 {
            let ll = baum_welch_step(&mut m, &batch).unwrap().unwrap();
            assert!(ll >= last - 1e-9, "ll={ll} last={last}");
            last = ll;
        }
    }

    #[test]
    fn em_learns_alternation() {
        let mut m = model();
        let batch = alternating_batch();
        train(&mut m, &batch, 50, 1e-9).unwrap();
        // After training, transitions should strongly prefer switching state.
        assert!(m.transition(0, 1) > 0.8, "t01={}", m.transition(0, 1));
        assert!(m.transition(1, 0) > 0.8, "t10={}", m.transition(1, 0));
        assert!(m.initial(0) > 0.8);
    }

    #[test]
    fn impossible_batch_is_skipped() {
        let mut m = model();
        let impossible: Emissions = vec![vec![0.0, 0.0]];
        assert_eq!(
            baum_welch_step(&mut m, std::slice::from_ref(&impossible)).unwrap(),
            None
        );
        let rep = train(&mut m, &[impossible], 5, 1e-6).unwrap();
        assert_eq!(rep.skipped_sequences, 1);
        assert_eq!(rep.iterations, 0);
    }

    #[test]
    fn model_stays_normalized_after_training() {
        let mut m = model();
        train(&mut m, &alternating_batch(), 20, 1e-9).unwrap();
        let n = m.n_states();
        assert!((m.initial_dist().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for r in 0..n {
            assert!((m.transition_row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_observation_sequences_update_initial_only() {
        let mut m = model();
        let batch: Vec<Emissions> = vec![vec![vec![0.9, 0.1]]; 3];
        let before = m.transition_row(0).to_vec();
        baum_welch_step(&mut m, &batch).unwrap().unwrap();
        assert!(m.initial(0) > 0.8);
        // No transitions observed: rows preserved.
        assert_eq!(m.transition_row(0), &before[..]);
    }
}
