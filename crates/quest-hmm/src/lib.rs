//! # quest-hmm — Hidden Markov Model substrate for QUEST
//!
//! QUEST's forward module models keyword-to-schema mapping as inference in a
//! Hidden Markov Model whose states are database elements and whose
//! observations are the user's keywords (paper §2–3). This crate provides:
//!
//! * [`Hmm`] — the model (initial + transition distributions; emissions are
//!   supplied per query by the wrapper's search function);
//! * [`viterbi()`](viterbi::viterbi) — maximum-probability decoding;
//! * [`list_viterbi()`](list_viterbi::list_viterbi) — the top-k *list Viterbi algorithm*
//!   (Seshadri–Sundberg), producing the top-k configurations;
//! * [`ListDecoder`] — the hot-path form of the same algorithm: reusable
//!   scratch buffers (no per-query lattice allocation) plus an admissible
//!   top-k prune, bit-identical to `list_viterbi` by construction;
//! * [`forward_backward()`](forward_backward::forward_backward) / [`baum_welch_step`] / [`train`] — scaled
//!   Expectation-Maximization for the feedback-based operating mode;
//! * [`SupervisedTrainer`] — count-based online training from user-validated
//!   sequences (the "list Viterbi training" of Rota et al.).
//!
//! ```
//! use quest_hmm::{list_viterbi, Hmm};
//!
//! // Two states; state 0 is sticky, state 1 is indifferent.
//! let hmm = Hmm::from_weights(vec![0.8, 0.2], vec![0.9, 0.1, 0.5, 0.5])?;
//! // Two observations, each scored against both states by the wrapper.
//! let emissions = vec![vec![0.9, 0.1], vec![0.6, 0.4]];
//! let paths = list_viterbi(&hmm, &emissions, 3)?;
//! assert_eq!(paths[0].states, vec![0, 0], "stay in the sticky state");
//! assert!(paths.windows(2).all(|p| p[0].log_prob >= p[1].log_prob));
//! # Ok::<(), quest_hmm::HmmError>(())
//! ```

#![warn(missing_docs)]

pub mod baum_welch;
pub mod decoder;
pub mod error;
pub mod forward_backward;
pub mod list_viterbi;
pub mod model;
pub mod sampling;
pub mod supervised;
pub mod viterbi;

pub use baum_welch::{baum_welch_step, train, TrainReport};
pub use decoder::ListDecoder;
pub use error::HmmError;
pub use forward_backward::{forward_backward, ForwardBackward};
pub use list_viterbi::list_viterbi;
pub use model::{Emissions, Hmm};
pub use sampling::{emissions_for_states, sample_states, UniformSource, XorShift};
pub use supervised::SupervisedTrainer;
pub use viterbi::{viterbi, DecodedPath};
