//! Sampling state paths from an HMM.
//!
//! Used by tests and experiments to build synthetic observation workloads
//! with known ground-truth state sequences (e.g. checking that training
//! recovers the generating parameters). The crate avoids an RNG dependency:
//! the caller supplies a stream of uniform `[0, 1)` draws, which keeps
//! sampling deterministic and dependency-free.

use crate::error::HmmError;
use crate::model::Hmm;

/// A source of uniform draws in `[0, 1)`.
pub trait UniformSource {
    /// Next uniform draw.
    fn next_uniform(&mut self) -> f64;
}

/// A small deterministic xorshift-based uniform source (not cryptographic;
/// adequate for test-data generation).
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeded source. Zero seeds are remapped.
    pub fn new(seed: u64) -> XorShift {
        XorShift {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }
}

impl UniformSource for XorShift {
    fn next_uniform(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        // 53-bit mantissa for a uniform double in [0, 1).
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Draw an index from a discrete distribution.
fn sample_dist(dist: &[f64], u: f64) -> usize {
    let mut acc = 0.0;
    for (i, p) in dist.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    dist.len() - 1
}

/// Sample a state path of length `len` from the model's initial and
/// transition distributions.
pub fn sample_states<R: UniformSource>(
    model: &Hmm,
    len: usize,
    rng: &mut R,
) -> Result<Vec<usize>, HmmError> {
    if len == 0 {
        return Err(HmmError::Empty);
    }
    let mut states = Vec::with_capacity(len);
    let mut s = sample_dist(model.initial_dist(), rng.next_uniform());
    states.push(s);
    for _ in 1..len {
        s = sample_dist(model.transition_row(s), rng.next_uniform());
        states.push(s);
    }
    Ok(states)
}

/// Build near-one-hot emission likelihoods for a known state path: the true
/// state emits with likelihood `signal`, all others with `noise`. Feeding
/// these to the decoders recovers the path when `signal >> noise`.
pub fn emissions_for_states(
    n_states: usize,
    states: &[usize],
    signal: f64,
    noise: f64,
) -> Vec<Vec<f64>> {
    states
        .iter()
        .map(|&s| {
            (0..n_states)
                .map(|i| if i == s { signal } else { noise })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervised::SupervisedTrainer;
    use crate::viterbi::viterbi;

    #[test]
    fn xorshift_is_uniformish() {
        let mut r = XorShift::new(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1000 {
            let u = r.next_uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn sampling_respects_transitions() {
        // Near-deterministic alternation.
        let m = Hmm::from_distributions(vec![1.0, 0.0], vec![0.02, 0.98, 0.98, 0.02]).unwrap();
        let mut r = XorShift::new(3);
        let states = sample_states(&m, 200, &mut r).unwrap();
        assert_eq!(states[0], 0);
        let switches = states.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches > 150,
            "expected mostly alternation, got {switches} switches"
        );
    }

    #[test]
    fn decoder_recovers_sampled_path() {
        let m = Hmm::from_distributions(vec![0.7, 0.3], vec![0.8, 0.2, 0.3, 0.7]).unwrap();
        let mut r = XorShift::new(11);
        let states = sample_states(&m, 12, &mut r).unwrap();
        let em = emissions_for_states(2, &states, 0.99, 0.01);
        let decoded = viterbi(&m, &em).unwrap().unwrap();
        assert_eq!(decoded.states, states);
    }

    #[test]
    fn supervised_training_recovers_generator() {
        // Sample many paths from a known model, train on them, compare.
        let truth = Hmm::from_distributions(vec![0.9, 0.1], vec![0.75, 0.25, 0.4, 0.6]).unwrap();
        let mut r = XorShift::new(5);
        let mut trainer = SupervisedTrainer::new(2, 0.5).unwrap();
        for _ in 0..2000 {
            let states = sample_states(&truth, 8, &mut r).unwrap();
            trainer.observe(&states).unwrap();
        }
        let learned = trainer.build().unwrap();
        for i in 0..2 {
            assert!((learned.initial(i) - truth.initial(i)).abs() < 0.05);
            for j in 0..2 {
                assert!(
                    (learned.transition(i, j) - truth.transition(i, j)).abs() < 0.05,
                    "t{i}{j}: {} vs {}",
                    learned.transition(i, j),
                    truth.transition(i, j)
                );
            }
        }
    }

    #[test]
    fn zero_length_rejected() {
        let m = Hmm::uniform(2).unwrap();
        let mut r = XorShift::new(1);
        assert!(sample_states(&m, 0, &mut r).is_err());
    }
}
