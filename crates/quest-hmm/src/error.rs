//! Error type for HMM construction and inference.

use std::fmt;

/// Errors raised by the HMM crate.
#[derive(Debug, Clone, PartialEq)]
pub enum HmmError {
    /// Zero states or an empty observation sequence.
    Empty,
    /// A vector or matrix has the wrong size.
    Dimension {
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A probability is negative, NaN or infinite.
    InvalidProbability {
        /// Which distribution.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A distribution does not sum to 1.
    NotNormalized {
        /// Which distribution.
        what: &'static str,
        /// Actual sum.
        sum: f64,
    },
    /// An emission likelihood is negative or non-finite.
    InvalidEmission {
        /// Time step.
        step: usize,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for HmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmmError::Empty => write!(f, "model or observation sequence is empty"),
            HmmError::Dimension { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            HmmError::InvalidProbability { what, value } => {
                write!(f, "invalid probability in {what}: {value}")
            }
            HmmError::NotNormalized { what, sum } => {
                write!(f, "{what} sums to {sum}, expected 1")
            }
            HmmError::InvalidEmission { step, value } => {
                write!(f, "invalid emission likelihood at step {step}: {value}")
            }
        }
    }
}

impl std::error::Error for HmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = HmmError::Dimension {
            expected: 4,
            got: 3,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('3'));
    }
}
