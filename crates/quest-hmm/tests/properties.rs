//! Property-based tests for the HMM substrate.

use proptest::prelude::*;
use quest_hmm::{baum_welch_step, forward_backward, list_viterbi, viterbi, Hmm, ListDecoder};

/// Arbitrary small HMM from positive weights.
fn arb_hmm(n: usize) -> impl Strategy<Value = Hmm> {
    (
        proptest::collection::vec(0.05f64..1.0, n),
        proptest::collection::vec(0.05f64..1.0, n * n),
    )
        .prop_map(|(init, trans)| Hmm::from_weights(init, trans).expect("weights normalize"))
}

/// Arbitrary emission matrix: `t` steps over `n` states, strictly positive
/// likelihoods so every sequence is feasible.
fn arb_emissions(n: usize, t: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    t.prop_flat_map(move |len| {
        proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, n), len)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn list_viterbi_k1_matches_viterbi(
        hmm in arb_hmm(4),
        em in arb_emissions(4, 1..6),
    ) {
        let v = viterbi(&hmm, &em).expect("valid").expect("feasible");
        let l = list_viterbi(&hmm, &em, 1).expect("valid");
        prop_assert_eq!(l.len(), 1);
        prop_assert!((l[0].log_prob - v.log_prob).abs() < 1e-9);
        prop_assert_eq!(&l[0].states, &v.states);
    }

    #[test]
    fn list_viterbi_scores_sorted_and_distinct(
        hmm in arb_hmm(3),
        em in arb_emissions(3, 2..5),
        k in 1usize..12,
    ) {
        let l = list_viterbi(&hmm, &em, k).expect("valid");
        prop_assert!(l.len() <= k);
        for w in l.windows(2) {
            prop_assert!(w[0].log_prob >= w[1].log_prob - 1e-12);
        }
        let mut seqs: Vec<_> = l.iter().map(|p| p.states.clone()).collect();
        let before = seqs.len();
        seqs.sort();
        seqs.dedup();
        prop_assert_eq!(seqs.len(), before, "duplicate sequences returned");
    }

    #[test]
    fn list_viterbi_exhaustive_matches_brute_force(
        hmm in arb_hmm(2),
        em in arb_emissions(2, 2..5),
    ) {
        // k large enough to enumerate all 2^T sequences.
        let t = em.len();
        let all = 1usize << t;
        let l = list_viterbi(&hmm, &em, all).expect("valid");
        prop_assert_eq!(l.len(), all);
        // Brute force.
        let mut bf: Vec<(Vec<usize>, f64)> = Vec::new();
        for code in 0..all {
            let states: Vec<usize> = (0..t).map(|i| (code >> i) & 1).collect();
            let mut p = hmm.initial(states[0]).ln() + em[0][states[0]].ln();
            for i in 1..t {
                p += hmm.transition(states[i - 1], states[i]).ln() + em[i][states[i]].ln();
            }
            bf.push((states, p));
        }
        bf.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        for (got, want) in l.iter().zip(bf.iter()) {
            prop_assert!((got.log_prob - want.1).abs() < 1e-9);
        }
    }

    #[test]
    fn pruned_decoder_bit_identical_to_list_viterbi(
        hmm in arb_hmm(5),
        em in arb_emissions(5, 1..7),
        k in 1usize..12,
    ) {
        // The hot-path decoder (scratch reuse + admissible top-k prune)
        // must reproduce the reference LVA bit for bit: same sequences, in
        // the same order, with bitwise-equal scores.
        let reference = list_viterbi(&hmm, &em, k).expect("valid");
        let mut decoder = ListDecoder::new();
        let pruned = decoder.decode_pruned(&hmm, &em, k).expect("valid");
        let adaptive = decoder.decode(&hmm, &em, k).expect("valid");
        prop_assert_eq!(pruned.len(), reference.len());
        prop_assert_eq!(adaptive.len(), reference.len());
        for (a, b) in pruned.iter().zip(&reference) {
            prop_assert_eq!(&a.states, &b.states);
            prop_assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
        }
        for (a, b) in adaptive.iter().zip(&reference) {
            prop_assert_eq!(&a.states, &b.states);
            prop_assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
        }
    }

    #[test]
    fn pruned_decoder_bit_identical_under_ties_and_zeros(
        n in 2usize..5,
        t in 1usize..5,
        k in 1usize..10,
        floor in prop_oneof![Just(0.0f64), Just(1e-6), Just(0.5)],
        blocked in proptest::collection::vec(any::<bool>(), 0..12),
    ) {
        // Degenerate inputs: uniform models, emission-floor rows (mass
        // exact ties), and zeroed (state, step) cells. Tie order must
        // survive pruning bitwise.
        let hmm = Hmm::uniform(n).expect("uniform");
        let mut em = vec![vec![if floor > 0.0 { floor } else { 0.3 }; n]; t];
        for (i, b) in blocked.iter().enumerate() {
            if *b {
                let step = i % t;
                let state = (i / t) % n;
                em[step][state] = 0.0;
            }
        }
        let reference = list_viterbi(&hmm, &em, k).expect("valid");
        let mut decoder = ListDecoder::new();
        let pruned = decoder.decode_pruned(&hmm, &em, k).expect("valid");
        prop_assert_eq!(pruned.len(), reference.len());
        for (a, b) in pruned.iter().zip(&reference) {
            prop_assert_eq!(&a.states, &b.states);
            prop_assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
        }
    }

    #[test]
    fn forward_backward_likelihood_bounds_viterbi(
        hmm in arb_hmm(4),
        em in arb_emissions(4, 1..6),
    ) {
        // P(best path) <= P(observations) always.
        let v = viterbi(&hmm, &em).expect("valid").expect("feasible");
        let fb = forward_backward(&hmm, &em).expect("valid").expect("feasible");
        prop_assert!(v.log_prob <= fb.log_likelihood + 1e-9);
    }

    #[test]
    fn gammas_are_distributions(
        hmm in arb_hmm(3),
        em in arb_emissions(3, 1..6),
    ) {
        let fb = forward_backward(&hmm, &em).expect("valid").expect("feasible");
        for t in 0..em.len() {
            let g: f64 = (0..3).map(|s| fb.gamma(t, s)).sum();
            prop_assert!((g - 1.0).abs() < 1e-6, "t={t} sum={g}");
        }
    }

    #[test]
    fn em_never_decreases_likelihood(
        hmm in arb_hmm(3),
        em1 in arb_emissions(3, 2..5),
        em2 in arb_emissions(3, 2..5),
    ) {
        let batch = vec![em1, em2];
        let mut m = hmm;
        let ll1 = baum_welch_step(&mut m, &batch).expect("valid").expect("feasible");
        let ll2 = baum_welch_step(&mut m, &batch).expect("valid").expect("feasible");
        // ll2 is the likelihood of the batch under the *updated* model.
        prop_assert!(ll2 >= ll1 - 1e-7, "EM regressed: {ll1} -> {ll2}");
    }

    #[test]
    fn em_preserves_normalization(
        hmm in arb_hmm(4),
        em in arb_emissions(4, 2..5),
    ) {
        let mut m = hmm;
        baum_welch_step(&mut m, &[em]).expect("valid");
        prop_assert!((m.initial_dist().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for r in 0..4 {
            prop_assert!((m.transition_row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
