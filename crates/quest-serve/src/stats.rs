//! Serving counters and the [`ServeStats`] snapshot.
//!
//! Latency and query counts are kept in atomics so recording them never
//! contends with the cache locks; cache hit/miss counts live inside each
//! [`crate::LruCache`] and are read out at snapshot time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub use quest_core::TemplateCacheStats;

/// Counters of one cache at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Maximum entries.
    pub capacity: usize,
    /// Full-map epoch-purge scans performed so far — one per epoch change
    /// with live entries, never one per lookup (pinned by regression
    /// tests).
    pub purge_scans: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cumulative wall time per pipeline stage, summed across all searches
/// (and across threads). Divide by [`ServeStats::queries`] — or by
/// `uncached_forward` for the fine-grained forward substages — for means.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageLatencies {
    /// Forward stage (cache lookup, and on a miss the full computation).
    pub forward: Duration,
    /// Backward stage (cache lookups plus any Steiner enumeration).
    pub backward: Duration,
    /// Final assembly: second DST combination, SQL building, ranking.
    pub assemble: Duration,
    /// Emission-matrix computation inside *uncached* forward passes.
    pub emissions: Duration,
    /// Both HMM decodes inside uncached forward passes.
    pub decode: Duration,
    /// First DST combination inside uncached forward passes.
    pub combine_configs: Duration,
    /// Forward passes actually computed (denominator for the three
    /// substage counters above).
    pub uncached_forward: u64,
}

/// A point-in-time snapshot of the serving layer's counters.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Searches completed (successfully or not).
    pub queries: u64,
    /// Searches that returned an error.
    pub errors: u64,
    /// Data epoch at snapshot time (mutation batches applied so far).
    pub data_epoch: u64,
    /// Externally assigned progress marker — a replication LSN for a
    /// replica engine (see the `quest-replica` crate), 0 when unused.
    pub watermark: u64,
    /// Physical partitions behind the engine's source: 1 for an ordinary
    /// store, N for a sharded scatter-gather store (the `quest-shard`
    /// crate). 0 only in a default-constructed snapshot.
    pub shards: usize,
    /// Keyword → top-k-configurations cache (forward stage).
    pub forward_cache: CacheStats,
    /// Configuration → interpretations cache (backward stage).
    pub backward_cache: CacheStats,
    /// Per-engine memoized join-path templates inside the backward module
    /// (terminal set + k → interpretations). Rebuilt from scratch — all
    /// gauges back to zero — whenever a mutation batch resyncs the engine.
    pub join_templates: TemplateCacheStats,
    /// Total wall time spent inside searches, summed across threads.
    pub total_latency: Duration,
    /// Slowest single search.
    pub max_latency: Duration,
    /// Cumulative per-stage wall time (see [`StageLatencies`]).
    pub stages: StageLatencies,
}

impl ServeStats {
    /// Mean wall time per search ([`Duration::ZERO`] before any search).
    pub fn mean_latency(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            // Divide in u128: `Duration / u32` would truncate the query
            // count and wrap to a division by zero at 2^32 queries.
            Duration::from_nanos((self.total_latency.as_nanos() / self.queries as u128) as u64)
        }
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries: {} ({} errors), mean {:?}, max {:?}, {} shard{}",
            self.queries,
            self.errors,
            self.mean_latency(),
            self.max_latency,
            self.shards,
            if self.shards == 1 { "" } else { "s" }
        )?;
        writeln!(
            f,
            "forward cache:  {}/{} hits ({:.1}%), {} of {} entries",
            self.forward_cache.hits,
            self.forward_cache.hits + self.forward_cache.misses,
            100.0 * self.forward_cache.hit_rate(),
            self.forward_cache.entries,
            self.forward_cache.capacity
        )?;
        writeln!(
            f,
            "backward cache: {}/{} hits ({:.1}%), {} of {} entries",
            self.backward_cache.hits,
            self.backward_cache.hits + self.backward_cache.misses,
            100.0 * self.backward_cache.hit_rate(),
            self.backward_cache.entries,
            self.backward_cache.capacity
        )?;
        writeln!(
            f,
            "join templates: {}/{} hits, {} entries",
            self.join_templates.hits,
            self.join_templates.hits + self.join_templates.misses,
            self.join_templates.entries
        )?;
        write!(
            f,
            "stages: forward {:?}, backward {:?}, assemble {:?} \
             (uncached fwd {}: emissions {:?}, decode {:?}, combine {:?})",
            self.stages.forward,
            self.stages.backward,
            self.stages.assemble,
            self.stages.uncached_forward,
            self.stages.emissions,
            self.stages.decode,
            self.stages.combine_configs
        )
    }
}

/// Lock-free recorder for query counts and latencies.
#[derive(Debug, Default)]
pub(crate) struct LatencyRecorder {
    queries: AtomicU64,
    errors: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    // Per-stage wall-time totals (see `StageLatencies`).
    forward_nanos: AtomicU64,
    backward_nanos: AtomicU64,
    assemble_nanos: AtomicU64,
    emissions_nanos: AtomicU64,
    decode_nanos: AtomicU64,
    combine_nanos: AtomicU64,
    uncached_forward: AtomicU64,
}

fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl LatencyRecorder {
    /// Record one completed search.
    pub fn record(&self, elapsed: Duration, ok: bool) {
        let nanos = nanos(elapsed);
        self.queries.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Record one search's stage wall times (what this search actually
    /// spent — a cache hit contributes only its lookup cost).
    pub fn record_stage_walls(&self, forward: Duration, backward: Duration, assemble: Duration) {
        self.forward_nanos
            .fetch_add(nanos(forward), Ordering::Relaxed);
        self.backward_nanos
            .fetch_add(nanos(backward), Ordering::Relaxed);
        self.assemble_nanos
            .fetch_add(nanos(assemble), Ordering::Relaxed);
    }

    /// Record the fine-grained timings of one forward pass that was
    /// actually computed (a forward-cache miss).
    pub fn record_uncached_forward(&self, timings: &quest_core::StageTimings) {
        self.uncached_forward.fetch_add(1, Ordering::Relaxed);
        self.emissions_nanos
            .fetch_add(nanos(timings.emissions), Ordering::Relaxed);
        self.decode_nanos.fetch_add(
            nanos(timings.forward_apriori + timings.forward_feedback),
            Ordering::Relaxed,
        );
        self.combine_nanos
            .fetch_add(nanos(timings.combine_configs), Ordering::Relaxed);
    }

    /// Fill the query-level fields of a snapshot.
    pub fn snapshot_into(&self, stats: &mut ServeStats) {
        stats.queries = self.queries.load(Ordering::Relaxed);
        stats.errors = self.errors.load(Ordering::Relaxed);
        stats.total_latency = Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed));
        stats.max_latency = Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed));
        stats.stages = StageLatencies {
            forward: Duration::from_nanos(self.forward_nanos.load(Ordering::Relaxed)),
            backward: Duration::from_nanos(self.backward_nanos.load(Ordering::Relaxed)),
            assemble: Duration::from_nanos(self.assemble_nanos.load(Ordering::Relaxed)),
            emissions: Duration::from_nanos(self.emissions_nanos.load(Ordering::Relaxed)),
            decode: Duration::from_nanos(self.decode_nanos.load(Ordering::Relaxed)),
            combine_configs: Duration::from_nanos(self.combine_nanos.load(Ordering::Relaxed)),
            uncached_forward: self.uncached_forward.load(Ordering::Relaxed),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_and_mixed() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn recorder_accumulates() {
        let r = LatencyRecorder::default();
        r.record(Duration::from_millis(2), true);
        r.record(Duration::from_millis(6), false);
        let mut s = ServeStats::default();
        r.snapshot_into(&mut s);
        assert_eq!(s.queries, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.total_latency, Duration::from_millis(8));
        assert_eq!(s.max_latency, Duration::from_millis(6));
        assert_eq!(s.mean_latency(), Duration::from_millis(4));
    }

    #[test]
    fn display_renders_all_sections() {
        let s = ServeStats {
            queries: 5,
            forward_cache: CacheStats {
                hits: 4,
                misses: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("queries: 5"));
        assert!(text.contains("forward cache"));
        assert!(text.contains("80.0%"));
        assert!(text.contains("backward cache"));
        assert!(text.contains("join templates"));
    }
}
