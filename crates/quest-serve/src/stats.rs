//! Serving counters, the registry-backed recorder, and the [`ServeStats`]
//! snapshot.
//!
//! Every number the serving layer records lives in a per-engine
//! [`quest_obs::MetricsRegistry`]: query/error counters, a total-latency
//! histogram, one histogram per pipeline stage (replacing the old flat
//! wall-time sums — the sums are now derived from the histograms, which
//! additionally give exact-bound p50/p95/p99). Cache hit/miss counts live
//! inside each [`crate::LruCache`] and are mirrored into registry gauges at
//! snapshot time, so one registry snapshot — and therefore one
//! [`ServeStats::metrics`] and one `Display` rendering — covers every
//! public counter. `Display` iterates the snapshot instead of a hand-kept
//! field list: a newly registered metric cannot be silently omitted.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use quest_obs::{
    duration_us, Counter, HealthReport, Histogram, MetricValue, MetricsRegistry, MetricsSnapshot,
    QueryTrace, TraceConfig, TraceSink,
};

pub use quest_core::TemplateCacheStats;

/// Counters of one cache at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Maximum entries.
    pub capacity: usize,
    /// Full-map epoch-purge scans performed so far — one per epoch change
    /// with live entries, never one per lookup (pinned by regression
    /// tests).
    pub purge_scans: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cumulative wall time per pipeline stage, summed across all searches
/// (and across threads). Divide by [`ServeStats::queries`] — or by
/// `uncached_forward` for the fine-grained forward substages — for means.
///
/// Derived from the per-stage histograms (exact sums), so it stays
/// consistent with the percentile readouts in [`ServeStats::metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageLatencies {
    /// Forward stage (cache lookup, and on a miss the full computation).
    pub forward: Duration,
    /// Backward stage (cache lookups plus any Steiner enumeration).
    pub backward: Duration,
    /// Final assembly: second DST combination, SQL building, ranking.
    pub assemble: Duration,
    /// Emission-matrix computation inside *uncached* forward passes.
    pub emissions: Duration,
    /// Both HMM decodes inside uncached forward passes.
    pub decode: Duration,
    /// First DST combination inside uncached forward passes.
    pub combine_configs: Duration,
    /// Forward passes actually computed (denominator for the three
    /// substage counters above).
    pub uncached_forward: u64,
}

/// A point-in-time snapshot of the serving layer's counters.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Searches completed (successfully or not).
    pub queries: u64,
    /// Searches that returned an error.
    pub errors: u64,
    /// Data epoch at snapshot time (mutation batches applied so far).
    pub data_epoch: u64,
    /// Externally assigned progress marker — a replication LSN for a
    /// replica engine (see the `quest-replica` crate), 0 when unused.
    pub watermark: u64,
    /// Physical partitions behind the engine's source: 1 for an ordinary
    /// store, N for a sharded scatter-gather store (the `quest-shard`
    /// crate). 0 only in a default-constructed snapshot.
    pub shards: usize,
    /// Queries whose total wall cleared the slow-query threshold.
    pub slow_queries: u64,
    /// Keyword → top-k-configurations cache (forward stage).
    pub forward_cache: CacheStats,
    /// Configuration → interpretations cache (backward stage).
    pub backward_cache: CacheStats,
    /// Per-engine memoized join-path templates inside the backward module
    /// (terminal set + k → interpretations). Rebuilt from scratch — all
    /// gauges back to zero — whenever a mutation batch resyncs the engine.
    pub join_templates: TemplateCacheStats,
    /// Total wall time spent inside searches, summed across threads.
    pub total_latency: Duration,
    /// Slowest single search.
    pub max_latency: Duration,
    /// Cumulative per-stage wall time (see [`StageLatencies`]).
    pub stages: StageLatencies,
    /// The engine registry's full snapshot: every counter, gauge, and
    /// stage histogram (with exact-bound p50/p95/p99), including all of
    /// the typed fields above. `Display` renders *this*, so nothing can be
    /// registered yet dropped from the rendering.
    pub metrics: MetricsSnapshot,
    /// SLO grade of the window ending at this snapshot — `None` until a
    /// spec is installed via `CachedEngine::set_slo`. Strictly
    /// observational: the grade never feeds back into serving.
    pub health: Option<HealthReport>,
}

impl ServeStats {
    /// Mean wall time per search ([`Duration::ZERO`] before any search).
    pub fn mean_latency(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            // Divide in u128: `Duration / u32` would truncate the query
            // count and wrap to a division by zero at 2^32 queries.
            Duration::from_nanos((self.total_latency.as_nanos() / self.queries as u128) as u64)
        }
    }

    /// Exact-bound latency percentile in microseconds, read from the
    /// total-latency histogram (0 before any search or in a
    /// default-constructed snapshot).
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        self.metrics
            .histogram(names::LATENCY)
            .map(|h| h.percentile(p) / 1_000)
            .unwrap_or(0)
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries: {} ({} errors, {} slow), mean {:?}, max {:?}, {} shard{}",
            self.queries,
            self.errors,
            self.slow_queries,
            self.mean_latency(),
            self.max_latency,
            self.shards,
            if self.shards == 1 { "" } else { "s" }
        )?;
        writeln!(
            f,
            "forward cache:  {}/{} hits ({:.1}%), {} of {} entries",
            self.forward_cache.hits,
            self.forward_cache.hits + self.forward_cache.misses,
            100.0 * self.forward_cache.hit_rate(),
            self.forward_cache.entries,
            self.forward_cache.capacity
        )?;
        writeln!(
            f,
            "backward cache: {}/{} hits ({:.1}%), {} of {} entries",
            self.backward_cache.hits,
            self.backward_cache.hits + self.backward_cache.misses,
            100.0 * self.backward_cache.hit_rate(),
            self.backward_cache.entries,
            self.backward_cache.capacity
        )?;
        writeln!(
            f,
            "join templates: {}/{} hits, {} entries",
            self.join_templates.hits,
            self.join_templates.hits + self.join_templates.misses,
            self.join_templates.entries
        )?;
        write!(
            f,
            "stages: forward {:?}, backward {:?}, assemble {:?} \
             (uncached fwd {}: emissions {:?}, decode {:?}, combine {:?})",
            self.stages.forward,
            self.stages.backward,
            self.stages.assemble,
            self.stages.uncached_forward,
            self.stages.emissions,
            self.stages.decode,
            self.stages.combine_configs
        )?;
        // The registry-driven section: one line per registered metric.
        // Regenerated from the snapshot, never from a hand-kept list — a
        // metric added anywhere in the serving layer shows up here without
        // touching this function (pinned by `display_covers_every_metric`).
        // The same property surfaces cross-cutting series: merging the
        // global registry's snapshot into `metrics` (see
        // `MetricsSnapshot::merge`) renders the `quest_fault_*` fault,
        // retry, heal, and quarantine counters alongside the serving
        // numbers — pinned by the chaos suite's exposition-coverage test.
        for m in &self.metrics.metrics {
            write!(f, "\n  {}: ", m.full_name())?;
            match &m.value {
                MetricValue::Counter(v) => write!(f, "{v}")?,
                MetricValue::Gauge(v) => write!(f, "{v}")?,
                MetricValue::Histogram(h) => write!(
                    f,
                    "count={} p50={:?} p95={:?} p99={:?} max={:?}",
                    h.count,
                    Duration::from_nanos(h.percentile(50.0)),
                    Duration::from_nanos(h.percentile(95.0)),
                    Duration::from_nanos(h.percentile(99.0)),
                    Duration::from_nanos(h.max),
                )?,
            }
        }
        if let Some(health) = &self.health {
            write!(f, "\nhealth: {health}")?;
        }
        Ok(())
    }
}

/// The serving layer's metric names, shared by the recorder, the snapshot
/// mirrors, and the consumers (bench-json reads the stage histograms by
/// these names).
pub mod names {
    /// Total searches (counter).
    pub const QUERIES: &str = "quest_serve_queries_total";
    /// Failed searches (counter).
    pub const ERRORS: &str = "quest_serve_errors_total";
    /// Slow-query classifications (counter).
    pub const SLOW_QUERIES: &str = "quest_serve_slow_queries_total";
    /// Total per-search wall time (histogram, nanoseconds).
    pub const LATENCY: &str = "quest_serve_latency_ns";
    /// Forward-stage wall (histogram, nanoseconds).
    pub const STAGE_FORWARD: &str = "quest_serve_stage_forward_ns";
    /// Backward-stage wall (histogram, nanoseconds).
    pub const STAGE_BACKWARD: &str = "quest_serve_stage_backward_ns";
    /// Assembly wall (histogram, nanoseconds).
    pub const STAGE_ASSEMBLE: &str = "quest_serve_stage_assemble_ns";
    /// Emission computation inside uncached forward passes (histogram).
    pub const STAGE_EMISSIONS: &str = "quest_serve_stage_emissions_ns";
    /// HMM decodes inside uncached forward passes (histogram).
    pub const STAGE_DECODE: &str = "quest_serve_stage_decode_ns";
    /// First DST combination inside uncached forward passes (histogram).
    pub const STAGE_COMBINE: &str = "quest_serve_stage_combine_ns";
    /// Forward passes actually computed (counter).
    pub const UNCACHED_FORWARD: &str = "quest_serve_uncached_forward_total";
    /// Jobs submitted but not yet picked up by a worker (gauge).
    pub const QUEUE_DEPTH: &str = "quest_serve_queue_depth";
    /// Snapshot-time mirror gauges of the non-registry counters.
    pub const MIRRORS: &[&str] = &[
        "quest_serve_data_epoch",
        "quest_serve_watermark",
        "quest_serve_shards",
        "quest_serve_forward_cache_hits",
        "quest_serve_forward_cache_misses",
        "quest_serve_forward_cache_entries",
        "quest_serve_forward_cache_purge_scans",
        "quest_serve_backward_cache_hits",
        "quest_serve_backward_cache_misses",
        "quest_serve_backward_cache_entries",
        "quest_serve_backward_cache_purge_scans",
        "quest_serve_join_template_hits",
        "quest_serve_join_template_misses",
        "quest_serve_join_template_entries",
    ];
}

/// Registry-backed recorder: the engine's hot-path handles plus the trace
/// sink. Recording is handle-local relaxed atomics; nothing here takes the
/// registry lock after construction.
#[derive(Debug)]
pub(crate) struct ServeObs {
    registry: Arc<MetricsRegistry>,
    pub(crate) traces: TraceSink,
    queries: Counter,
    errors: Counter,
    slow_queries: Counter,
    latency: Histogram,
    forward: Histogram,
    backward: Histogram,
    assemble: Histogram,
    emissions: Histogram,
    decode: Histogram,
    combine: Histogram,
    uncached_forward: Counter,
}

fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl ServeObs {
    pub fn new(registry: Arc<MetricsRegistry>, trace: TraceConfig) -> ServeObs {
        registry.describe(names::QUERIES, "Total searches served.");
        registry.describe(names::ERRORS, "Searches that returned an error.");
        registry.describe(names::SLOW_QUERIES, "Slow-query classifications.");
        registry.describe(names::LATENCY, "Per-search wall time, nanoseconds.");
        registry.describe(
            names::QUEUE_DEPTH,
            "Jobs submitted but not yet claimed by a worker.",
        );
        ServeObs {
            queries: registry.counter(names::QUERIES),
            errors: registry.counter(names::ERRORS),
            slow_queries: registry.counter(names::SLOW_QUERIES),
            latency: registry.histogram(names::LATENCY),
            forward: registry.histogram(names::STAGE_FORWARD),
            backward: registry.histogram(names::STAGE_BACKWARD),
            assemble: registry.histogram(names::STAGE_ASSEMBLE),
            emissions: registry.histogram(names::STAGE_EMISSIONS),
            decode: registry.histogram(names::STAGE_DECODE),
            combine: registry.histogram(names::STAGE_COMBINE),
            uncached_forward: registry.counter(names::UNCACHED_FORWARD),
            traces: TraceSink::new(trace),
            registry,
        }
    }

    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Record one completed search; returns whether it was classified slow
    /// (the caller builds the trace lazily via [`ServeObs::trace_with`]).
    pub fn record(&self, elapsed: Duration, ok: bool) {
        self.queries.inc();
        if !ok {
            self.errors.inc();
        }
        self.latency.record(nanos(elapsed));
    }

    /// Lazily store a per-query trace (slow-query accounting included).
    pub fn trace_with(&self, elapsed: Duration, build: impl FnOnce() -> QueryTrace) {
        if self.traces.record_with(duration_us(elapsed), build) {
            self.slow_queries.inc();
        }
    }

    /// Record one search's stage wall times (what this search actually
    /// spent — a cache hit contributes only its lookup cost).
    pub fn record_stage_walls(&self, forward: Duration, backward: Duration, assemble: Duration) {
        self.forward.record(nanos(forward));
        self.backward.record(nanos(backward));
        self.assemble.record(nanos(assemble));
    }

    /// Record the fine-grained timings of one forward pass that was
    /// actually computed (a forward-cache miss).
    pub fn record_uncached_forward(&self, timings: &quest_core::StageTimings) {
        self.uncached_forward.inc();
        self.emissions.record(nanos(timings.emissions));
        self.decode
            .record(nanos(timings.forward_apriori + timings.forward_feedback));
        self.combine.record(nanos(timings.combine_configs));
    }

    /// Fill the query-level fields of a snapshot from the registry handles.
    /// The histogram sums are exact, so the derived [`StageLatencies`] are
    /// bit-identical to the old dedicated wall-time accumulators.
    pub fn snapshot_into(&self, stats: &mut ServeStats) {
        stats.queries = self.queries.value();
        stats.errors = self.errors.value();
        stats.slow_queries = self.slow_queries.value();
        let latency = self.latency.snapshot();
        stats.total_latency = Duration::from_nanos(latency.sum);
        stats.max_latency = Duration::from_nanos(latency.max);
        stats.stages = StageLatencies {
            forward: Duration::from_nanos(self.forward.snapshot().sum),
            backward: Duration::from_nanos(self.backward.snapshot().sum),
            assemble: Duration::from_nanos(self.assemble.snapshot().sum),
            emissions: Duration::from_nanos(self.emissions.snapshot().sum),
            decode: Duration::from_nanos(self.decode.snapshot().sum),
            combine_configs: Duration::from_nanos(self.combine.snapshot().sum),
            uncached_forward: self.uncached_forward.value(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> ServeObs {
        ServeObs::new(Arc::new(MetricsRegistry::new()), TraceConfig::default())
    }

    #[test]
    fn hit_rate_handles_zero_and_mixed() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn recorder_accumulates() {
        let r = obs();
        r.record(Duration::from_millis(2), true);
        r.record(Duration::from_millis(6), false);
        let mut s = ServeStats::default();
        r.snapshot_into(&mut s);
        assert_eq!(s.queries, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.total_latency, Duration::from_millis(8));
        assert_eq!(s.max_latency, Duration::from_millis(6));
        assert_eq!(s.mean_latency(), Duration::from_millis(4));
    }

    #[test]
    fn stage_sums_match_the_histograms_exactly() {
        let r = obs();
        r.record_stage_walls(
            Duration::from_micros(100),
            Duration::from_micros(7),
            Duration::from_nanos(333),
        );
        r.record_stage_walls(
            Duration::from_micros(50),
            Duration::ZERO,
            Duration::from_nanos(667),
        );
        let mut s = ServeStats::default();
        r.snapshot_into(&mut s);
        assert_eq!(s.stages.forward, Duration::from_micros(150));
        assert_eq!(s.stages.backward, Duration::from_micros(7));
        assert_eq!(s.stages.assemble, Duration::from_micros(1));
        let snap = r.registry().snapshot();
        assert_eq!(snap.histogram(names::STAGE_FORWARD).unwrap().count, 2);
    }

    #[test]
    fn slow_queries_are_counted_and_fast_ones_skip_the_builder() {
        let r = ServeObs::new(
            Arc::new(MetricsRegistry::new()),
            quest_obs::TraceConfig {
                ring_capacity: 0, // only the slow log wants traces
                slow_capacity: 4,
                slow_query_us: 1_000,
            },
        );
        let mut built = false;
        r.trace_with(Duration::from_micros(10), || {
            built = true;
            QueryTrace::default()
        });
        assert!(!built, "fast query must not build a trace");
        r.trace_with(Duration::from_micros(2_000), || QueryTrace {
            query: "slow".into(),
            total_us: 2_000,
            ..QueryTrace::default()
        });
        let mut s = ServeStats::default();
        r.snapshot_into(&mut s);
        assert_eq!(s.slow_queries, 1);
        assert_eq!(r.traces.slow_queries().len(), 1);
        assert_eq!(r.traces.slow_queries()[0].query, "slow");
    }

    #[test]
    fn display_renders_all_sections() {
        let s = ServeStats {
            queries: 5,
            forward_cache: CacheStats {
                hits: 4,
                misses: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("queries: 5"));
        assert!(text.contains("forward cache"));
        assert!(text.contains("80.0%"));
        assert!(text.contains("backward cache"));
        assert!(text.contains("join templates"));
        assert!(text.contains("stages:"));
    }
}
