//! A bounded LRU cache with hit/miss accounting.
//!
//! The serving layer keeps two of these in front of the engine — one for
//! forward-stage results, one for backward-stage (Steiner) results. The
//! implementation is a slab of doubly-linked entries plus a `HashMap` from
//! key to slab slot, so `get` and `insert` are O(1) apart from hashing; no
//! allocation happens on a hit. Freed slots drop their payloads eagerly
//! (the slab stores `Option<Slot>`), so an epoch purge via
//! [`LruCache::retain`] actually releases the dead entries' memory instead
//! of parking it until the slot is reused.

use std::collections::HashMap;
use std::hash::Hash;

/// Slab sentinel: "no slot".
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A bounded least-recently-used cache.
///
/// `get` refreshes recency and counts a hit or a miss; `insert` evicts the
/// least recently used entry once `capacity` is reached. A capacity of 0
/// disables the cache entirely: every lookup misses and nothing is stored.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    /// Slot slab; `None` marks a freed slot (its index is on `free`).
    slots: Vec<Option<Slot<K, V>>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    free: Vec<usize>,
    hits: u64,
    misses: u64,
    retain_scans: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
            retain_scans: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Full-map scans performed by [`LruCache::retain`] (an empty cache is
    /// never scanned). The serving layer's epoch-purge regression tests pin
    /// this: a purge scan must happen once per epoch change, not once per
    /// lookup.
    pub fn retain_scans(&self) -> u64 {
        self.retain_scans
    }

    /// Look up `key`, refreshing its recency. Returns a clone of the cached
    /// value so the lock guarding the cache can be released immediately.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.detach(i);
                self.push_front(i);
                Some(self.slot(i).value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `key → value`, evicting the least recently used entry if the
    /// cache is full. Replaces (and refreshes) an existing entry in place.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slot_mut(i).value = value;
            self.detach(i);
            self.push_front(i);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.detach(lru);
            let old = self.slots[lru].take().expect("lru slot is live");
            self.map.remove(&old.key);
            self.free.push(lru);
        }
        let slot = Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Drop every entry whose key fails `pred`, freeing their slots for
    /// reuse. Recency of survivors is unchanged; counters are preserved.
    /// The serving layer uses this to purge entries keyed by dead epochs
    /// instead of letting them squat until capacity-evicted.
    pub fn retain(&mut self, mut pred: impl FnMut(&K) -> bool) {
        // Nothing to scan, nothing to drop — and no scan counted, so a
        // caller that over-purges an empty cache stays visible as zero.
        if self.map.is_empty() {
            return;
        }
        self.retain_scans += 1;
        let dead: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| !pred(k))
            .map(|(_, &i)| i)
            .collect();
        for i in dead {
            self.detach(i);
            // Take the slot out so key and value drop *now*, not whenever
            // the freed slot happens to be reused.
            let slot = self.slots[i].take().expect("dead slot is live");
            self.map.remove(&slot.key);
            self.free.push(i);
        }
    }

    /// Drop every entry; hit/miss counters are preserved.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Live slot at `i`; panics on a freed slot (internal invariant).
    fn slot(&self, i: usize) -> &Slot<K, V> {
        self.slots[i].as_ref().expect("slot is live")
    }

    fn slot_mut(&mut self, i: usize) -> &mut Slot<K, V> {
        self.slots[i].as_mut().expect("slot is live")
    }

    /// Unlink slot `i` from the recency list.
    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slot(i).prev, self.slot(i).next);
        if prev != NIL {
            self.slot_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slot_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
        self.slot_mut(i).prev = NIL;
        self.slot_mut(i).next = NIL;
    }

    /// Link slot `i` as the most recently used.
    fn push_front(&mut self, i: usize) {
        self.slot_mut(i).next = self.head;
        self.slot_mut(i).prev = NIL;
        if self.head != NIL {
            self.slot_mut(self.head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_value_and_counts() {
        let mut c: LruCache<&str, i32> = LruCache::new(2);
        assert_eq!(c.get(&"a"), None);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<&str, i32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(c.get(&"a"), Some(1));
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"b"), None, "b was evicted");
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
    }

    #[test]
    fn reinsert_replaces_and_refreshes() {
        let mut c: LruCache<&str, i32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        c.insert("c", 3);
        // "b" was the LRU entry after "a" was refreshed by reinsertion.
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"c"), Some(3));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c: LruCache<&str, i32> = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_one_churns_correctly() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..10 {
            c.insert(i, i * i);
            assert_eq!(c.get(&i), Some(i * i));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn retain_frees_slots_for_reuse() {
        let mut c: LruCache<(u64, u32), u32> = LruCache::new(4);
        for i in 0..4u32 {
            c.insert((0, i), i);
        }
        assert_eq!(c.len(), 4);
        // Purge epoch 0, keep nothing.
        c.retain(|k| k.0 == 1);
        assert!(c.is_empty());
        // Freed slots are reused without growing the slab.
        for i in 0..4u32 {
            c.insert((1, i), i * 10);
        }
        assert_eq!(c.len(), 4);
        for i in 0..4u32 {
            assert_eq!(c.get(&(1, i)), Some(i * 10));
        }
        // Partial purge keeps survivors and their values.
        c.insert((2, 0), 99);
        c.retain(|k| k.0 == 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&(2, 0)), Some(99));
        // Eviction still works after a purge (exercise the linked list).
        for i in 0..10u32 {
            c.insert((3, i), i);
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn retain_drops_payloads_eagerly() {
        use std::sync::Arc;
        let mut c: LruCache<u32, Arc<String>> = LruCache::new(8);
        let payloads: Vec<Arc<String>> = (0..4).map(|i| Arc::new(format!("p{i}"))).collect();
        for (i, p) in payloads.iter().enumerate() {
            c.insert(i as u32, Arc::clone(p));
        }
        for p in &payloads {
            assert_eq!(Arc::strong_count(p), 2, "cache holds a reference");
        }
        // Purging must release the references now, not on slot reuse.
        c.retain(|_| false);
        for p in &payloads {
            assert_eq!(Arc::strong_count(p), 1, "purged payload was dropped");
        }
        // Capacity eviction also drops eagerly.
        let mut c: LruCache<u32, Arc<String>> = LruCache::new(1);
        let a = Arc::new("a".to_string());
        c.insert(0, Arc::clone(&a));
        c.insert(1, Arc::new("b".to_string()));
        assert_eq!(Arc::strong_count(&a), 1, "evicted payload was dropped");
    }

    #[test]
    fn retain_counts_scans_and_skips_empty_maps() {
        let mut c: LruCache<(u64, u32), u32> = LruCache::new(4);
        // Empty cache: retain is free and uncounted, however often called.
        for _ in 0..5 {
            c.retain(|_| false);
        }
        assert_eq!(c.retain_scans(), 0);
        c.insert((0, 0), 1);
        c.retain(|k| k.0 == 1); // scans, purges everything
        assert_eq!(c.retain_scans(), 1);
        c.retain(|k| k.0 == 1); // empty again: skipped
        assert_eq!(c.retain_scans(), 1);
        c.insert((1, 0), 2);
        c.retain(|k| k.0 == 1); // scans even when everything survives
        assert_eq!(c.retain_scans(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c: LruCache<&str, i32> = LruCache::new(4);
        c.insert("a", 1);
        let _ = c.get(&"a");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.get(&"a"), None);
        // Reusable after clear.
        c.insert("b", 2);
        assert_eq!(c.get(&"b"), Some(2));
    }

    #[test]
    fn eviction_order_is_exact_under_interleaving() {
        // Model check against a simple reference: repeated get/insert over a
        // small key space must match a naive recency-vector implementation.
        let mut c: LruCache<u8, u32> = LruCache::new(3);
        let mut reference: Vec<(u8, u32)> = Vec::new(); // front = MRU
        let mut x: u32 = 0x2545_F491;
        for step in 0..2000u32 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let key = (x % 7) as u8;
            if x % 3 == 0 {
                c.insert(key, step);
                if let Some(p) = reference.iter().position(|(k, _)| *k == key) {
                    reference.remove(p);
                }
                reference.insert(0, (key, step));
                reference.truncate(3);
            } else {
                let got = c.get(&key);
                let expect = reference.iter().position(|(k, _)| *k == key);
                match (got, expect) {
                    (Some(v), Some(p)) => {
                        assert_eq!(v, reference[p].1);
                        let e = reference.remove(p);
                        reference.insert(0, e);
                    }
                    (None, None) => {}
                    (g, e) => panic!("divergence at step {step}: got {g:?}, expected {e:?}"),
                }
            }
            assert_eq!(c.len(), reference.len());
        }
    }
}
