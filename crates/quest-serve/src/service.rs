//! [`QueryService`]: a thread pool draining keyword queries through a shared
//! [`CachedEngine`].
//!
//! Built on `std` threads and channels only. Workers pull jobs from one
//! shared queue (an `mpsc::Receiver` behind a mutex), so a slow query never
//! blocks the others; every submission returns a [`Ticket`] the caller can
//! block on. Because all workers share one engine and one pair of caches,
//! repeated keywords and shared join paths turn into lookups no matter which
//! worker serves them.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use quest_core::{QuestError, SearchOutcome, SearchScratch, SourceWrapper};
use quest_obs::WindowedGauge;

use crate::engine::CachedEngine;
use crate::error::ServeError;
use crate::stats::{names, ServeStats};

/// One unit of work: a raw query and where to send its outcome.
struct Job {
    raw: String,
    reply: Sender<Result<SearchOutcome, QuestError>>,
}

/// A claim on one submitted query's result.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<SearchOutcome, QuestError>>,
}

impl Ticket {
    /// Block until the query's outcome arrives.
    pub fn wait(self) -> Result<SearchOutcome, ServeError> {
        match self.rx.recv() {
            Ok(Ok(outcome)) => Ok(outcome),
            Ok(Err(e)) => Err(ServeError::Engine(e)),
            Err(_) => Err(ServeError::Disconnected),
        }
    }

    /// A ticket that reports [`ServeError::Disconnected`] immediately (used
    /// for submissions after shutdown).
    fn dead() -> Ticket {
        let (_, rx) = mpsc::channel();
        Ticket { rx }
    }
}

/// A concurrent query service over one shared, cache-backed engine.
///
/// Dropping the service shuts it down: the queue closes, queued jobs finish,
/// and the workers are joined.
#[derive(Debug)]
pub struct QueryService<W: SourceWrapper + Send + Sync + 'static> {
    shared: Arc<CachedEngine<W>>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Jobs submitted but not yet picked up by a worker, mirrored into the
    /// engine registry's `quest_serve_queue_depth` gauge — windowed, so a
    /// scrape also sees the `_min`/`_max` the depth reached between scrapes.
    queue_depth: WindowedGauge,
}

impl<W: SourceWrapper + Send + Sync + 'static> QueryService<W> {
    /// Spawn `workers` threads (at least one) over a freshly wrapped engine.
    pub fn new(engine: CachedEngine<W>, workers: usize) -> QueryService<W> {
        QueryService::over(Arc::new(engine), workers)
    }

    /// Spawn `workers` threads (at least one) over an already shared engine
    /// — e.g. one whose caches another service or a direct caller is also
    /// using.
    pub fn over(shared: Arc<CachedEngine<W>>, workers: usize) -> QueryService<W> {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let queue_depth = shared.metrics().windowed_gauge(names::QUEUE_DEPTH);
        let workers = (1..=workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let engine = Arc::clone(&shared);
                let queue_depth = queue_depth.clone();
                std::thread::Builder::new()
                    .name(format!("quest-serve-{i}"))
                    .spawn(move || {
                        // One scratch per worker: emission/decoder buffers
                        // are reused across every query this thread serves.
                        let mut scratch = SearchScratch::new();
                        loop {
                            // Hold the queue lock only for the pop, never
                            // for the search.
                            let job = {
                                let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                                guard.recv()
                            };
                            match job {
                                Ok(job) => {
                                    // Claimed by this worker: no longer
                                    // waiting in the queue.
                                    queue_depth.add(-1);
                                    // The submitter may have dropped its
                                    // ticket; a failed reply send is not an
                                    // error.
                                    let _ =
                                        job.reply.send(engine.search_with(&job.raw, &mut scratch));
                                }
                                // Queue closed: service is shutting down.
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawning a worker thread succeeds")
            })
            .collect();
        QueryService {
            shared,
            tx: Some(tx),
            workers,
            queue_depth,
        }
    }

    /// Enqueue one raw keyword query; the returned [`Ticket`] resolves to
    /// the same outcome an uncached `Quest::search` would produce.
    pub fn submit(&self, raw_query: &str) -> Ticket {
        let Some(tx) = &self.tx else {
            return Ticket::dead();
        };
        let (reply, rx) = mpsc::channel();
        let job = Job {
            raw: raw_query.to_string(),
            reply,
        };
        // Count before the send so a worker's decrement can never observe
        // the job without its increment; roll back if the queue is closed.
        self.queue_depth.add(1);
        match tx.send(job) {
            Ok(()) => Ticket { rx },
            Err(_) => {
                self.queue_depth.add(-1);
                Ticket::dead()
            }
        }
    }

    /// Enqueue a batch; tickets come back in submission order while the
    /// queries themselves run on whichever workers are free.
    pub fn submit_batch<I, S>(&self, queries: I) -> Vec<Ticket>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        queries
            .into_iter()
            .map(|q| self.submit(q.as_ref()))
            .collect()
    }

    /// The shared engine (for direct searches, feedback, or cache control).
    pub fn engine(&self) -> &Arc<CachedEngine<W>> {
        &self.shared
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// A snapshot of the shared engine's serving counters. Queue-depth
    /// window extremes collapse to the current depth afterwards, so each
    /// scrape interval reports its own min/max.
    pub fn stats(&self) -> ServeStats {
        let stats = self.shared.stats();
        self.queue_depth.reset_window();
        stats
    }

    /// Close the queue, finish queued jobs, join all workers, and return the
    /// final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.join_workers();
        self.shared.stats()
    }

    fn join_workers(&mut self) {
        // Dropping the sender closes the queue; workers drain it and exit.
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<W: SourceWrapper + Send + Sync + 'static> Drop for QueryService<W> {
    fn drop(&mut self) {
        self.join_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::engine;
    use quest_core::KeywordQuery;

    #[test]
    fn submit_resolves_like_direct_search() {
        let service = QueryService::new(CachedEngine::new(engine()), 2);
        let direct = service.engine().engine().search("wind fleming").unwrap();
        let served = service.submit("wind fleming").wait().unwrap();
        assert_eq!(direct.explanations.len(), served.explanations.len());
        for (a, b) in direct.explanations.iter().zip(&served.explanations) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.statement, b.statement);
        }
    }

    #[test]
    fn batch_preserves_submission_order() {
        let service = QueryService::new(CachedEngine::new(engine()), 3);
        let queries = ["wind", "fleming", "wind fleming", "wind", "fleming"];
        let tickets = service.submit_batch(queries);
        for (raw, ticket) in queries.iter().zip(tickets) {
            let out = ticket.wait().unwrap();
            assert_eq!(&out.query.raw, raw, "ticket order matches submission");
            assert!(!out.explanations.is_empty());
        }
        // Every cache insert from the first batch is complete once all its
        // tickets resolved, so a second identical batch hits on every query
        // (within one batch, concurrent duplicates may race the insert).
        for t in service.submit_batch(queries) {
            t.wait().unwrap();
        }
        let stats = service.shutdown();
        assert_eq!(stats.queries, 10);
        assert!(
            stats.forward_cache.hits >= 5,
            "second pass is all lookups: {stats}"
        );
    }

    #[test]
    fn engine_errors_travel_to_the_ticket() {
        let service = QueryService::new(CachedEngine::new(engine()), 1);
        let err = service.submit("   ").wait().unwrap_err();
        assert!(matches!(err, ServeError::Engine(QuestError::EmptyQuery)));
    }

    #[test]
    fn shutdown_finishes_queued_work_and_kills_later_submissions() {
        let shared = Arc::new(CachedEngine::new(engine()));
        let service = QueryService::over(Arc::clone(&shared), 2);
        let tickets = service.submit_batch(["wind", "fleming", "wind"]);
        let stats = service.shutdown();
        assert_eq!(stats.queries, 3, "queued jobs drained before join");
        for t in tickets {
            assert!(t.wait().is_ok(), "tickets stay valid across shutdown");
        }
        // A fresh service over the same engine reuses the warm caches.
        let service = QueryService::over(shared, 1);
        let _ = service.submit("wind").wait().unwrap();
        assert!(service.stats().forward_cache.hits > 0);
    }

    #[test]
    fn feedback_through_shared_engine_affects_served_results() {
        let service = QueryService::new(CachedEngine::new(engine()), 2);
        let before = service.submit("wind fleming").wait().unwrap();
        assert!(before.feedback_configs.is_empty());
        let query = KeywordQuery::parse("wind fleming").unwrap();
        let best = before.explanations[0].clone();
        for _ in 0..5 {
            service.engine().feedback(&query, &best, true).unwrap();
        }
        let after = service.submit("wind fleming").wait().unwrap();
        assert!(!after.feedback_configs.is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let service = QueryService::new(CachedEngine::new(engine()), 0);
        assert_eq!(service.worker_count(), 1);
        assert!(service.submit("wind").wait().is_ok());
    }
}
