//! Errors raised by the serving layer.

use std::fmt;

use quest_core::QuestError;
use relstore::StoreError;

/// What can go wrong between `submit` and a result, or while applying a
/// mutation batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The engine rejected or failed the search (or a post-mutation
    /// re-sync).
    Engine(QuestError),
    /// A storage-level rejection (RI violation, duplicate key, unknown
    /// table/row) promoted to an error.
    /// [`CachedEngine::apply`](crate::CachedEngine::apply) reports
    /// rejections per record in its [`ApplyReport`](crate::ApplyReport)
    /// instead of failing; this variant (and the `From<StoreError>` impl)
    /// is for callers that treat any rejection as fatal.
    Mutation(StoreError),
    /// The service shut down (or a worker died) before answering.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::Mutation(e) => write!(f, "mutation rejected: {e}"),
            ServeError::Disconnected => write!(f, "query service disconnected before answering"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::Mutation(e) => Some(e),
            ServeError::Disconnected => None,
        }
    }
}

impl From<QuestError> for ServeError {
    fn from(e: QuestError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Mutation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: ServeError = QuestError::EmptyQuery.into();
        assert!(e.to_string().contains("engine"));
        assert!(e.source().is_some());
        let e: ServeError = StoreError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("mutation rejected"));
        assert!(e.source().is_some());
        assert!(ServeError::Disconnected.source().is_none());
        assert!(ServeError::Disconnected
            .to_string()
            .contains("disconnected"));
    }
}
