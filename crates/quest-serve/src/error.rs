//! Errors raised by the serving layer.

use std::fmt;

use quest_core::QuestError;

/// What can go wrong between `submit` and a result.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The engine rejected or failed the search.
    Engine(QuestError),
    /// The service shut down (or a worker died) before answering.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::Disconnected => write!(f, "query service disconnected before answering"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::Disconnected => None,
        }
    }
}

impl From<QuestError> for ServeError {
    fn from(e: QuestError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: ServeError = QuestError::EmptyQuery.into();
        assert!(e.to_string().contains("engine"));
        assert!(e.source().is_some());
        assert!(ServeError::Disconnected.source().is_none());
        assert!(ServeError::Disconnected
            .to_string()
            .contains("disconnected"));
    }
}
