//! [`CachedEngine`]: a thread-safe, cache-fronted wrapper around
//! [`Quest`] that also owns the serving layer's **live-data mutation
//! path**.
//!
//! Two bounded LRU caches sit in front of the pipeline's two expensive
//! stages:
//!
//! * **forward** — normalized keywords (+ data epoch + feedback epoch) →
//!   the full [`ForwardResult`] (both operating-mode decodes and their DST
//!   combination);
//! * **backward** — a configuration's term sequence (+ data epoch) → its
//!   top-k Steiner interpretations.
//!
//! Both stages are pure functions of their key for a fixed engine state, so
//! caching is semantically transparent: a cached search returns bit-identical
//! explanations and scores to an uncached [`Quest::search_query`]. Two
//! monotonic epochs version that state:
//!
//! * the **feedback epoch** ([`Quest::feedback_epoch`]) advances on user
//!   feedback and EM refinement and retires forward entries only;
//! * the **data epoch** ([`CachedEngine::data_epoch`]) advances on every
//!   mutation batch applied through [`CachedEngine::apply`] and retires
//!   *both* caches — backward results embed instance-derived join weights.
//!
//! Entries keyed by a dead epoch can never match again, so on the first
//! search after an epoch bump they are purged outright rather than left to
//! squat in the LRU until capacity-evicted.
//!
//! Mutations serialize against searches through an `RwLock`: searches share
//! the read side, a mutation batch takes the write side, applies its
//! [`ChangeRecord`]s through the database's checked mutation API (indexes
//! maintained incrementally), re-syncs the engine's instance-derived state
//! ([`Quest::resync`]), and bumps the data epoch. Served results after a
//! batch are bit-identical to a cold engine built over the mutated data
//! (asserted by `tests/serve.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard};
use std::time::Instant;

use quest_core::backward::Interpretation;
use quest_core::term::DbTerm;
use quest_core::{
    Configuration, Explanation, ForwardResult, FullAccessWrapper, KeywordQuery, Quest, QuestError,
    SearchOutcome, SearchScratch, SourceWrapper,
};
use quest_obs::{
    duration_us, HealthInputs, MetricsRegistry, QueryTrace, SloSpec, TemplateOutcome, TraceConfig,
    TraceCtx, TraceKind, WindowAggregator,
};
use quest_wal::ChangeRecord;

use crate::cache::LruCache;
use crate::error::ServeError;
use crate::stats::{names, CacheStats, ServeObs, ServeStats};

/// Cache-tuning knobs of the serving layer.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Entries of the forward cache (distinct keyword queries per epoch
    /// pair). 0 disables it.
    pub forward_capacity: usize,
    /// Entries of the backward cache (distinct configurations per data
    /// epoch). 0 disables it.
    pub backward_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            // A workload's distinct-query set is small next to its volume;
            // configurations are shared across queries, so the backward
            // cache earns a larger budget.
            forward_capacity: 1024,
            backward_capacity: 4096,
        }
    }
}

/// Forward-cache key: data epoch, feedback epoch, and the normalized
/// keyword sequence (normalized text and phrase flag are the only keyword
/// features the pipeline reads, so raw strings that normalize identically
/// share a slot).
type ForwardKey = (u64, u64, Vec<(String, bool)>);

/// Backward-cache key: data epoch plus the configuration's term sequence.
type BackwardKey = (u64, Vec<DbTerm>);

/// A [`Quest`] engine plus the two stage caches, serving counters, and the
/// mutation path.
///
/// All methods take `&self`; wrap it in an [`std::sync::Arc`] to share one
/// instance — and one warm cache — across threads.
#[derive(Debug)]
pub struct CachedEngine<W: SourceWrapper> {
    engine: RwLock<Quest<W>>,
    /// Monotonic data version: bumped by every mutation batch that changes
    /// what a search can return. Written only under the engine write lock;
    /// read under the read lock, so searches see a consistent pair of
    /// (engine state, epoch).
    data_epoch: AtomicU64,
    /// Externally assigned progress marker (e.g. the replication LSN a
    /// replica engine has applied through); surfaced in [`ServeStats`].
    watermark: AtomicU64,
    /// Epochs each cache was last purged for: `(data, feedback)` for the
    /// forward cache, `data` for the backward cache (whose keys never
    /// involve the feedback model). Per-cache marks keep a feedback-only
    /// bump from ever touching the backward cache, and let each cache skip
    /// its scan independently when its own keying epochs are unchanged.
    purge_mark: Mutex<PurgeMark>,
    // Values are Arc-wrapped so a hit clones a pointer inside the lock and
    // the (potentially large) payload copy happens outside it.
    forward: Mutex<LruCache<ForwardKey, Arc<ForwardResult>>>,
    backward: Mutex<LruCache<BackwardKey, Arc<Vec<Interpretation>>>>,
    obs: ServeObs,
    /// Optional SLO monitor ([`CachedEngine::set_slo`]): the declarative
    /// spec plus the rolling window [`CachedEngine::stats`] feeds. Strictly
    /// observational — grading never feeds back into serving.
    slo: Mutex<Option<SloMonitor>>,
}

/// See [`CachedEngine::set_slo`].
#[derive(Debug)]
struct SloMonitor {
    spec: SloSpec,
    window: WindowAggregator,
}

/// Per-search span accounting filled by `search_inner` and turned into a
/// [`QueryTrace`] (lazily — only when a ring wants it) by the caller.
#[derive(Debug, Default)]
struct SearchSpans {
    forward: std::time::Duration,
    backward: std::time::Duration,
    assemble: std::time::Duration,
    forward_cache_hit: bool,
    backward_hits: u32,
    backward_misses: u32,
    template_hits: u64,
    template_misses: u64,
}

/// See [`CachedEngine::purge_stale`].
#[derive(Debug, Default)]
struct PurgeMark {
    forward: (u64, u64),
    backward: u64,
}

impl<W: SourceWrapper> CachedEngine<W> {
    /// Front `engine` with default-sized caches.
    pub fn new(engine: Quest<W>) -> CachedEngine<W> {
        CachedEngine::with_caches(engine, CacheConfig::default())
    }

    /// Front `engine` with explicitly sized caches, a fresh per-engine
    /// metrics registry, and tracing knobs from the environment
    /// (`QUEST_OBS_TRACE_CAPACITY`, `QUEST_OBS_SLOW_QUERY_US`).
    pub fn with_caches(engine: Quest<W>, caches: CacheConfig) -> CachedEngine<W> {
        CachedEngine::with_obs(
            engine,
            caches,
            Arc::new(MetricsRegistry::new()),
            TraceConfig::from_env(),
        )
    }

    /// Front `engine` with explicit caches, metrics registry, and tracing
    /// knobs. Pass [`MetricsRegistry::disabled`] for a near-no-op recording
    /// stack, or a shared registry to aggregate several engines into one
    /// scrape.
    pub fn with_obs(
        engine: Quest<W>,
        caches: CacheConfig,
        registry: Arc<MetricsRegistry>,
        trace: TraceConfig,
    ) -> CachedEngine<W> {
        CachedEngine {
            engine: RwLock::new(engine),
            data_epoch: AtomicU64::new(0),
            watermark: AtomicU64::new(0),
            purge_mark: Mutex::new(PurgeMark::default()),
            forward: Mutex::new(LruCache::new(caches.forward_capacity)),
            backward: Mutex::new(LruCache::new(caches.backward_capacity)),
            obs: ServeObs::new(registry, trace),
            slo: Mutex::new(None),
        }
    }

    /// The engine's metrics registry (counters, gauges, and the per-stage
    /// latency histograms; export with [`quest_obs::to_prometheus_text`]
    /// or [`quest_obs::to_json`]).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.obs.registry()
    }

    /// The retained per-query traces, oldest first (bounded ring; capacity
    /// via [`TraceConfig::ring_capacity`]).
    pub fn traces(&self) -> Vec<QueryTrace> {
        self.obs.traces.recent()
    }

    /// The retained slow queries — total wall at or above
    /// [`TraceConfig::slow_query_us`] — oldest first.
    pub fn slow_queries(&self) -> Vec<QueryTrace> {
        self.obs.traces.slow_queries()
    }

    /// Read access to the wrapped engine. The guard shares the lock with
    /// concurrent searches; a mutation batch waits until it is dropped.
    pub fn engine(&self) -> RwLockReadGuard<'_, Quest<W>> {
        self.engine.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current data epoch: how many mutation batches have been applied.
    pub fn data_epoch(&self) -> u64 {
        self.data_epoch.load(Ordering::Acquire)
    }

    /// The externally assigned progress marker (0 until set). A replica
    /// engine stores the replication LSN it has applied through here, so
    /// lag is readable off [`CachedEngine::stats`] snapshots.
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Publish a new progress marker. Monotonicity is the caller's
    /// contract; the engine only stores and reports it.
    pub fn set_watermark(&self, watermark: u64) {
        self.watermark.store(watermark, Ordering::Release);
    }

    /// Install (or replace) an SLO health monitor. Every subsequent
    /// [`CachedEngine::stats`] feeds the monitor's rolling window
    /// (`QUEST_OBS_WINDOW_SECS` wide) with the registry snapshot and grades
    /// the windowed p99 and error rate into [`ServeStats::health`].
    /// Monitoring is strictly observational: served results are
    /// byte-identical with a spec installed or not (pinned by
    /// `tests/serve.rs`).
    pub fn set_slo(&self, spec: SloSpec) {
        *self.slo.lock().unwrap_or_else(PoisonError::into_inner) = Some(SloMonitor {
            spec,
            window: WindowAggregator::from_env(),
        });
    }

    fn forward_cache(&self) -> MutexGuard<'_, LruCache<ForwardKey, Arc<ForwardResult>>> {
        self.forward.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn backward_cache(&self) -> MutexGuard<'_, LruCache<BackwardKey, Arc<Vec<Interpretation>>>> {
        self.backward.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Purge cache entries keyed by epochs that can never match again.
    /// Cheap when nothing changed (one mutex, two compares), and each cache
    /// is scanned only when an epoch *its keys embed* moved: a
    /// feedback-only bump never touches the backward cache, and a cache
    /// whose own mark is current skips its scan entirely — scans happen
    /// once per epoch change, not once per search (pinned by the
    /// `purge_scans` regression test).
    fn purge_stale(&self, data: u64, feedback: u64) {
        let mut mark = self
            .purge_mark
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Epochs are monotonic, so a pair at or below the mark comes from
        // a thread that read the epochs before the last purge; letting it
        // through would evict the *current* epoch's freshly cached entries
        // and regress the mark into a purge ping-pong. (Purging is cache
        // hygiene only — keys match exactly regardless.)
        if (data, feedback) > mark.forward {
            mark.forward = (data, feedback);
            self.forward_cache()
                .retain(|k| k.0 == data && k.1 == feedback);
        }
        if data > mark.backward {
            mark.backward = data;
            self.backward_cache().retain(|k| k.0 == data);
        }
    }

    /// Run Algorithm 1 on a raw query string, through the caches.
    pub fn search(&self, raw_query: &str) -> Result<SearchOutcome, QuestError> {
        let query = KeywordQuery::parse(raw_query)?;
        self.search_query(&query)
    }

    /// [`CachedEngine::search`] with a caller-owned [`SearchScratch`] —
    /// what the [`crate::QueryService`] workers use (one scratch per worker
    /// thread, reused across every query the worker serves).
    pub fn search_with(
        &self,
        raw_query: &str,
        scratch: &mut SearchScratch,
    ) -> Result<SearchOutcome, QuestError> {
        let query = KeywordQuery::parse(raw_query)?;
        self.search_query_with(&query, scratch)
    }

    /// Run Algorithm 1 on a parsed query, through the caches. Results are
    /// identical to an uncached search on the wrapped engine.
    pub fn search_query(&self, query: &KeywordQuery) -> Result<SearchOutcome, QuestError> {
        self.search_query_with(query, &mut SearchScratch::new())
    }

    /// [`CachedEngine::search_query`] with a caller-owned scratch; cache
    /// misses run the engine's allocation-lean hot path instead of
    /// allocating per query. Bit-identical results either way.
    pub fn search_query_with(
        &self,
        query: &KeywordQuery,
        scratch: &mut SearchScratch,
    ) -> Result<SearchOutcome, QuestError> {
        let t0 = Instant::now();
        // Drop any scatter deposits a panicking predecessor left on this
        // thread, so they cannot be attributed to this query.
        quest_obs::scatter::reset();
        let collector = quest_obs::spans();
        let ctx = if collector.is_enabled() {
            collector.ctx(TraceKind::Query)
        } else {
            TraceCtx::detached(TraceKind::Query)
        };
        let mut spans = SearchSpans::default();
        let result = self.search_inner(query, scratch, &mut spans, ctx);
        let elapsed = t0.elapsed();
        self.obs.record(elapsed, result.is_ok());
        let shard_scatter_us = quest_obs::scatter::take();
        let ok = result.is_ok();
        self.obs.trace_with(elapsed, || QueryTrace {
            seq: 0, // assigned by the ring
            query: query.raw.clone(),
            ok,
            total_us: duration_us(elapsed),
            forward_us: duration_us(spans.forward),
            backward_us: duration_us(spans.backward),
            assemble_us: duration_us(spans.assemble),
            forward_cache_hit: spans.forward_cache_hit,
            backward_cache_hits: spans.backward_hits,
            backward_cache_misses: spans.backward_misses,
            template_memo: TemplateOutcome::from_delta(spans.template_hits, spans.template_misses),
            shard_scatter_us,
        });
        collector.record_with(ctx, "query", Some(t0), [Some(("ok", ok as u64)), None]);
        result
    }

    fn search_inner(
        &self,
        query: &KeywordQuery,
        scratch: &mut SearchScratch,
        spans: &mut SearchSpans,
        ctx: TraceCtx,
    ) -> Result<SearchOutcome, QuestError> {
        // Memoized Steiner interpretations are valid for one engine state
        // only; the engine read lock below pins that state for the whole
        // search.
        scratch.reset_query_state();
        let engine = self.engine();
        // Both epochs are stable for the lifetime of the read guard except
        // the feedback epoch, which can advance concurrently (feedback only
        // needs the read side); the insert below re-checks it.
        let data_epoch = self.data_epoch();
        let feedback_epoch = engine.feedback_epoch();
        self.purge_stale(data_epoch, feedback_epoch);
        let key: ForwardKey = (
            data_epoch,
            feedback_epoch,
            query
                .keywords
                .iter()
                .map(|k| (k.normalized.clone(), k.phrase))
                .collect(),
        );
        // Bind the lookup before matching: a guard born in a match
        // scrutinee lives to the end of the match and would deadlock the
        // insert below.
        let t0 = Instant::now();
        let cached_forward = self.forward_cache().get(&key);
        spans.forward_cache_hit = cached_forward.is_some();
        let forward = match cached_forward {
            Some(hit) => (*hit).clone(), // payload copy happens off-lock
            None => {
                let computed = engine.forward_pass_with(query, scratch)?;
                self.obs.record_uncached_forward(&computed.timings);
                // Only cache if no feedback landed mid-computation; a result
                // spanning an epoch boundary may mix old and new model state
                // and must not be replayed.
                if engine.feedback_epoch() == feedback_epoch {
                    self.forward_cache().insert(key, Arc::new(computed.clone()));
                }
                computed
            }
        };
        let forward_wall = t0.elapsed();
        quest_obs::spans().record_with(
            ctx,
            "query_forward",
            Some(t0),
            [Some(("cache_hit", spans.forward_cache_hit as u64)), None],
        );

        // The template memo's counters before/after bracket this query's
        // Steiner work; shared counters make the delta best-effort under
        // concurrency (documented on `QueryTrace::template_memo`).
        let templates_before = engine.backward().template_stats();
        let t0 = Instant::now();
        let mut interpretations = Vec::with_capacity(forward.configurations.len());
        for cfg in &forward.configurations {
            let bkey: BackwardKey = (data_epoch, cfg.terms.clone());
            let cached_backward = self.backward_cache().get(&bkey);
            let interps = match cached_backward {
                Some(hit) => {
                    spans.backward_hits += 1;
                    (*hit).clone()
                }
                None => {
                    spans.backward_misses += 1;
                    let computed = engine.backward_pass_with(cfg, scratch)?;
                    self.backward_cache()
                        .insert(bkey, Arc::new(computed.clone()));
                    computed
                }
            };
            interpretations.push(interps);
        }
        let backward_time = t0.elapsed();
        quest_obs::spans().record_with(
            ctx,
            "query_backward",
            Some(t0),
            [
                Some(("cache_hits", u64::from(spans.backward_hits))),
                Some(("cache_misses", u64::from(spans.backward_misses))),
            ],
        );
        let templates_after = engine.backward().template_stats();
        spans.template_hits = templates_after.hits.saturating_sub(templates_before.hits);
        spans.template_misses = templates_after
            .misses
            .saturating_sub(templates_before.misses);
        let t0 = Instant::now();
        let outcome = engine.assemble_with(query, forward, interpretations, backward_time, scratch);
        let assemble_wall = t0.elapsed();
        quest_obs::spans().record(ctx, "query_assemble", Some(t0));
        spans.forward = forward_wall;
        spans.backward = backward_time;
        spans.assemble = assemble_wall;
        self.obs
            .record_stage_walls(forward_wall, backward_time, assemble_wall);
        outcome
    }

    /// Record user feedback on an explanation (see [`Quest::feedback`]).
    /// Bumps the feedback epoch, so forward-cache entries built on the old
    /// model stop matching and are purged on the next search.
    pub fn feedback(
        &self,
        query: &KeywordQuery,
        explanation: &Explanation,
        positive: bool,
    ) -> Result<(), QuestError> {
        self.engine().feedback(query, explanation, positive)
    }

    /// Directly record a validated configuration (see
    /// [`Quest::feedback_configuration`]).
    pub fn feedback_configuration(
        &self,
        config: &Configuration,
        positive: bool,
    ) -> Result<(), QuestError> {
        self.engine().feedback_configuration(config, positive)
    }

    /// Drop all cached entries (counters are preserved).
    pub fn clear_caches(&self) {
        self.forward_cache().clear();
        self.backward_cache().clear();
    }

    /// A point-in-time snapshot of hit/miss/latency counters.
    ///
    /// Counters kept outside the registry (cache hit/miss tallies inside
    /// the LRU locks, the epochs, the template memo) are mirrored into
    /// registry gauges here, so [`ServeStats::metrics`] — and with it the
    /// `Display` rendering and both exporters — always covers every public
    /// counter.
    pub fn stats(&self) -> ServeStats {
        let mut stats = ServeStats::default();
        self.obs.snapshot_into(&mut stats);
        stats.data_epoch = self.data_epoch();
        stats.watermark = self.watermark();
        {
            let c = self.forward_cache();
            stats.forward_cache = CacheStats {
                hits: c.hits(),
                misses: c.misses(),
                entries: c.len(),
                capacity: c.capacity(),
                purge_scans: c.retain_scans(),
            };
        }
        {
            let c = self.backward_cache();
            stats.backward_cache = CacheStats {
                hits: c.hits(),
                misses: c.misses(),
                entries: c.len(),
                capacity: c.capacity(),
                purge_scans: c.retain_scans(),
            };
        }
        {
            let engine = self.engine();
            stats.join_templates = engine.backward().template_stats();
            stats.shards = engine.wrapper().shard_count();
        }
        let registry = self.metrics();
        for (name, value) in [
            ("quest_serve_data_epoch", stats.data_epoch as i64),
            ("quest_serve_watermark", stats.watermark as i64),
            ("quest_serve_shards", stats.shards as i64),
            (
                "quest_serve_join_template_hits",
                stats.join_templates.hits as i64,
            ),
            (
                "quest_serve_join_template_misses",
                stats.join_templates.misses as i64,
            ),
            (
                "quest_serve_join_template_entries",
                stats.join_templates.entries as i64,
            ),
        ] {
            registry.gauge(name).set(value);
        }
        for (prefix, cache) in [
            ("forward", &stats.forward_cache),
            ("backward", &stats.backward_cache),
        ] {
            registry
                .gauge(&format!("quest_serve_{prefix}_cache_hits"))
                .set(cache.hits as i64);
            registry
                .gauge(&format!("quest_serve_{prefix}_cache_misses"))
                .set(cache.misses as i64);
            registry
                .gauge(&format!("quest_serve_{prefix}_cache_entries"))
                .set(cache.entries as i64);
            registry
                .gauge(&format!("quest_serve_{prefix}_cache_purge_scans"))
                .set(cache.purge_scans as i64);
        }
        stats.metrics = registry.snapshot();
        if let Some(monitor) = self
            .slo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            monitor.window.observe(&stats.metrics);
            let rates = monitor.window.query_rates(names::QUERIES, names::ERRORS);
            let inputs = HealthInputs {
                p99_us: monitor
                    .window
                    .percentile(names::LATENCY, 99.0)
                    .map(|ns| ns / 1_000),
                error_rate: rates.map(|r| r.error_rate),
                lag: None,
            };
            stats.health = Some(monitor.spec.evaluate(&inputs));
        }
        stats
    }
}

/// What a mutation batch did: how many records took effect and which were
/// rejected (by zero-based batch index, with the storage error).
#[derive(Debug, Default)]
pub struct ApplyReport {
    /// Records applied.
    pub applied: usize,
    /// Rejected records: `(index within the batch, why)`. Rejections are
    /// deterministic functions of the database state at that log position,
    /// which is what lets WAL replay reproduce them exactly.
    pub rejected: Vec<(usize, relstore::StoreError)>,
}

impl ApplyReport {
    /// Whether every record applied.
    pub fn all_applied(&self) -> bool {
        self.rejected.is_empty()
    }
}

/// A source the serving layer can mutate in place: the wrapper-specific
/// half of [`CachedEngine::apply`].
///
/// Implementations route each record through the store's *checked* mutation
/// API with the batch semantics the write-ahead protocol relies on: records
/// apply or are rejected independently and in order, and a rejection is a
/// deterministic function of the store state at that position (so WAL
/// replay reproduces it exactly). [`FullAccessWrapper`] applies to its one
/// database; a sharded wrapper routes each record to its shard after
/// global integrity checks.
pub trait MutableSource: SourceWrapper {
    /// Apply each record in order, filling `report` with what happened.
    fn apply_changes(&mut self, changes: &[ChangeRecord], report: &mut ApplyReport);
}

impl MutableSource for FullAccessWrapper {
    fn apply_changes(&mut self, changes: &[ChangeRecord], report: &mut ApplyReport) {
        // Defer the per-table statistics refresh to the end of the batch:
        // indexes stay exact per-record, stats are recomputed once per
        // dirty table instead of once per record.
        self.database_mut().with_stats_deferred(|db| {
            for (i, change) in changes.iter().enumerate() {
                match change.apply(db) {
                    Ok(_) => report.applied += 1,
                    Err(e) => report.rejected.push((i, e)),
                }
            }
        });
    }
}

impl<W: SourceWrapper + MutableSource> CachedEngine<W> {
    /// Apply a batch of live-data mutations, serialized against searches.
    ///
    /// Each record applies — or is rejected — **independently and
    /// deterministically** through the database's checked mutation API
    /// (referential integrity enforced, inverted indexes maintained
    /// per-record, statistics refreshed once per dirty table at the end of
    /// the batch). A rejected record does not stop the batch; the report
    /// says exactly which indices were rejected and why. These per-record
    /// semantics are what make the write-ahead protocol sound: the caller
    /// logs the whole batch *before* applying it, and because a rejection
    /// is a pure function of the database state at that log position, WAL
    /// replay re-rejects exactly the records the live system rejected and
    /// converges on the identical state.
    ///
    /// If anything applied, the engine re-syncs its instance-derived state
    /// and the data epoch advances, retiring every cache entry built on
    /// the old data; an all-rejected batch leaves engine, epoch, and
    /// caches untouched. Durability is the caller's concern: append
    /// records to a [`quest_wal::WalWriter`] and sync *before* handing
    /// them here.
    ///
    /// **Single mutation writer.** The replay guarantee assumes log order
    /// equals apply order. `apply` serializes batches against each other
    /// (engine write lock), but the WAL writer is a separate object — two
    /// threads that each append-then-apply can interleave so the lock is
    /// won in the opposite order of their appends. Route all mutations
    /// through one writer (append + `apply` under one serialization
    /// point), as the example and tests do.
    pub fn apply(&self, changes: &[ChangeRecord]) -> Result<ApplyReport, ServeError> {
        self.apply_in(changes, TraceCtx::detached(TraceKind::Commit))
    }

    /// [`CachedEngine::apply`] under an explicit trace context, so the
    /// `engine_apply` and `cache_epoch_bump` spans join the caller's commit
    /// trace (`Primary::commit` in the `quest-replica` crate threads its
    /// context through here).
    pub fn apply_in(
        &self,
        changes: &[ChangeRecord],
        ctx: TraceCtx,
    ) -> Result<ApplyReport, ServeError> {
        let mut report = ApplyReport::default();
        if changes.is_empty() {
            return Ok(report);
        }
        let apply_started = quest_obs::spans().start();
        let mut engine = self.engine.write().unwrap_or_else(PoisonError::into_inner);
        engine.source_mut().apply_changes(changes, &mut report);
        if report.applied > 0 {
            // Bump the epoch and re-sync instance-derived engine state
            // (MI-weighted schema graph) while still under the write lock:
            // no search can observe the new data with the old epoch or
            // vice versa. The bump and purge come first so that even a
            // failed re-sync (unreachable for ChangeRecords, which cannot
            // alter the catalog) can never leave stale cache entries
            // serving over mutated data. An all-rejected batch changed
            // nothing, so it pays for none of this.
            let bump_started = quest_obs::spans().start();
            self.data_epoch.fetch_add(1, Ordering::AcqRel);
            let resync = engine.resync();
            let (data, feedback) = (self.data_epoch(), engine.feedback_epoch());
            drop(engine);
            self.purge_stale(data, feedback);
            quest_obs::spans().record_with(
                ctx,
                "cache_epoch_bump",
                bump_started,
                [Some(("data_epoch", data)), None],
            );
            resync.map_err(ServeError::Engine)?;
        }
        quest_obs::spans().record_with(
            ctx,
            "engine_apply",
            apply_started,
            [
                Some(("applied", report.applied as u64)),
                Some(("rejected", report.rejected.len() as u64)),
            ],
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::engine;
    use relstore::Value;

    fn same_outcome(a: &SearchOutcome, b: &SearchOutcome) {
        assert_eq!(a.explanations.len(), b.explanations.len());
        for (x, y) in a.explanations.iter().zip(&b.explanations) {
            assert_eq!(x.score, y.score);
            assert_eq!(x.configuration.terms, y.configuration.terms);
            assert_eq!(x.statement, y.statement);
        }
        assert_eq!(a.effective_o_cf, b.effective_o_cf);
    }

    #[test]
    fn cached_search_matches_uncached() {
        let cached = CachedEngine::new(engine());
        let reference = engine();
        for raw in ["wind fleming", "fleming", "wind"] {
            let a = cached.search(raw).unwrap(); // cold: fills caches
            let b = cached.search(raw).unwrap(); // warm: from caches
            let c = reference.search(raw).unwrap(); // uncached reference
            same_outcome(&a, &c);
            same_outcome(&b, &c);
        }
        let stats = cached.stats();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.forward_cache.hits, 3);
        assert_eq!(stats.forward_cache.misses, 3);
        assert!(stats.backward_cache.hits > 0);
    }

    #[test]
    fn feedback_epoch_invalidates_forward_entries() {
        let cached = CachedEngine::new(engine());
        let before = cached.search("wind fleming").unwrap();
        let _warm = cached.search("wind fleming").unwrap();
        assert_eq!(cached.stats().forward_cache.hits, 1);

        // Feedback bumps the epoch: the next search must recompute the
        // forward stage and reflect the trained model.
        let best = before.explanations[0].clone();
        let query = KeywordQuery::parse("wind fleming").unwrap();
        for _ in 0..5 {
            cached.feedback(&query, &best, true).unwrap();
        }
        let after = cached.search("wind fleming").unwrap();
        assert_eq!(
            cached.stats().forward_cache.hits,
            1,
            "post-feedback search must miss the forward cache"
        );
        assert!(
            !after.feedback_configs.is_empty(),
            "trained model must now contribute"
        );
        same_outcome(&after, &cached.engine().search("wind fleming").unwrap());
    }

    #[test]
    fn epoch_bump_reclaims_cache_capacity() {
        // Entries keyed by dead epochs are purged on the next search, not
        // left to squat until capacity eviction.
        let cached = CachedEngine::new(engine());
        for raw in ["wind", "fleming", "wind fleming", "victor"] {
            let _ = cached.search(raw).unwrap();
        }
        let stats = cached.stats();
        assert_eq!(stats.forward_cache.entries, 4);
        let backward_before = stats.backward_cache.entries;
        assert!(backward_before > 0);

        // Feedback kills forward entries only; backward survives (it never
        // depends on the feedback model).
        let best = cached.search("wind").unwrap().explanations[0].clone();
        let query = KeywordQuery::parse("wind").unwrap();
        cached.feedback(&query, &best, true).unwrap();
        let _ = cached.search("wind").unwrap();
        let stats = cached.stats();
        assert_eq!(
            stats.forward_cache.entries, 1,
            "only the post-feedback entry remains: {stats}"
        );
        assert_eq!(stats.backward_cache.entries, backward_before);

        // A data mutation kills both.
        cached
            .apply(&[ChangeRecord::Insert {
                table: "person".into(),
                row: vec![50.into(), "Orson Welles".into()],
            }])
            .unwrap();
        let _ = cached.search("welles").unwrap();
        let stats = cached.stats();
        assert_eq!(stats.forward_cache.entries, 1);
        assert!(
            stats.backward_cache.entries <= backward_before,
            "dead-data-epoch backward entries were purged: {stats}"
        );
    }

    #[test]
    fn epoch_purges_scan_once_per_change_not_per_search() {
        let cached = CachedEngine::new(engine());
        for raw in ["wind", "fleming"] {
            let _ = cached.search(raw).unwrap();
        }
        let stats = cached.stats();
        assert_eq!(stats.forward_cache.purge_scans, 0, "no epoch changed yet");
        assert_eq!(stats.backward_cache.purge_scans, 0);

        // Many searches after one feedback bump: exactly one forward scan;
        // the backward cache (feedback-free keys) is never scanned.
        let best = cached.search("wind").unwrap().explanations[0].clone();
        let query = KeywordQuery::parse("wind").unwrap();
        cached.feedback(&query, &best, true).unwrap();
        for _ in 0..5 {
            let _ = cached.search("wind").unwrap();
        }
        let stats = cached.stats();
        assert_eq!(stats.forward_cache.purge_scans, 1, "{stats}");
        assert_eq!(stats.backward_cache.purge_scans, 0, "{stats}");

        // One mutation batch: one more scan per (non-empty) cache, no
        // matter how many searches follow.
        cached
            .apply(&[ChangeRecord::Insert {
                table: "person".into(),
                row: vec![60.into(), "Extra Person".into()],
            }])
            .unwrap();
        for _ in 0..5 {
            let _ = cached.search("wind").unwrap();
        }
        let stats = cached.stats();
        assert_eq!(stats.forward_cache.purge_scans, 2, "{stats}");
        assert_eq!(stats.backward_cache.purge_scans, 1, "{stats}");
    }

    #[test]
    fn stage_latency_counters_accumulate() {
        let cached = CachedEngine::new(engine());
        let mut scratch = SearchScratch::new();
        let _ = cached.search_with("wind fleming", &mut scratch).unwrap();
        let cold = cached.stats();
        assert_eq!(cold.stages.uncached_forward, 1, "cold search computes");
        assert!(cold.stages.forward > std::time::Duration::ZERO);
        assert!(cold.stages.emissions > std::time::Duration::ZERO);
        assert!(cold.stages.assemble > std::time::Duration::ZERO);

        // A warm repeat adds wall time to the stage buckets but computes no
        // new forward pass.
        let _ = cached.search_with("wind fleming", &mut scratch).unwrap();
        let warm = cached.stats();
        assert_eq!(warm.stages.uncached_forward, 1, "warm search hits");
        assert_eq!(warm.stages.emissions, cold.stages.emissions);
        assert!(warm.stages.forward >= cold.stages.forward);
        let text = warm.to_string();
        assert!(text.contains("stages:"), "{text}");
    }

    #[test]
    fn watermark_is_stored_and_reported() {
        let cached = CachedEngine::new(engine());
        assert_eq!(cached.watermark(), 0);
        cached.set_watermark(42);
        assert_eq!(cached.watermark(), 42);
        assert_eq!(cached.stats().watermark, 42);
    }

    #[test]
    fn mutations_are_visible_and_match_a_cold_engine() {
        let cached = CachedEngine::new(engine());
        let _warm = cached.search("wind fleming").unwrap();
        assert_eq!(cached.data_epoch(), 0);

        let batch = vec![
            ChangeRecord::Insert {
                table: "person".into(),
                row: vec![2.into(), "Mervyn LeRoy".into()],
            },
            ChangeRecord::Insert {
                table: "movie".into(),
                row: vec![11.into(), "The Wizard of Oz".into(), 2.into()],
            },
        ];
        let report = cached.apply(&batch).unwrap();
        assert_eq!(report.applied, 2);
        assert!(report.all_applied());
        assert_eq!(cached.data_epoch(), 1);

        // Served results over the mutated data are bit-identical to a cold
        // engine built on an identically mutated database.
        let reference = {
            let guard = cached.engine();
            Quest::new(
                FullAccessWrapper::new(guard.wrapper().database().clone()),
                guard.config().clone(),
            )
            .unwrap()
        };
        for raw in ["oz leroy", "wind fleming", "wizard"] {
            let served = cached.search(raw).unwrap();
            let cold = reference.search(raw).unwrap();
            same_outcome(&served, &cold);
        }
    }

    #[test]
    fn rejections_are_per_record_and_reported() {
        let cached = CachedEngine::new(engine());
        let batch = vec![
            ChangeRecord::Insert {
                table: "person".into(),
                row: vec![3.into(), "Kept".into()],
            },
            ChangeRecord::Delete {
                // Fleming still directs a movie: restricted.
                table: "person".into(),
                key: vec![Value::Int(1)],
            },
            ChangeRecord::Insert {
                table: "person".into(),
                row: vec![4.into(), "Also Kept".into()],
            },
        ];
        let report = cached.apply(&batch).unwrap();
        // Per-record semantics: the rejection does not stop the batch —
        // exactly what WAL replay will reproduce from the logged records.
        assert_eq!(report.applied, 2);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].0, 1);
        assert!(matches!(
            report.rejected[0].1,
            relstore::StoreError::ForeignKeyViolation(_)
        ));
        assert_eq!(cached.data_epoch(), 1);
        let name = cached
            .engine()
            .wrapper()
            .catalog()
            .attr_id("person", "name")
            .unwrap();
        let db = cached.engine().wrapper().database().clone();
        assert!(db.search_score(name, "kept") > 0.0);
        assert!(db.validate().is_ok());
        // An all-rejected batch leaves epoch and engine untouched.
        let report = cached
            .apply(&[ChangeRecord::Delete {
                table: "person".into(),
                key: vec![Value::Int(1)],
            }])
            .unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(cached.data_epoch(), 1, "no state change, no epoch bump");
        // An empty batch is a no-op.
        assert!(cached.apply(&[]).unwrap().all_applied());
        assert_eq!(cached.data_epoch(), 1);
    }

    #[test]
    fn disabled_caches_still_correct() {
        let cached = CachedEngine::with_caches(
            engine(),
            CacheConfig {
                forward_capacity: 0,
                backward_capacity: 0,
            },
        );
        let a = cached.search("wind fleming").unwrap();
        let b = cached.search("wind fleming").unwrap();
        same_outcome(&a, &b);
        let stats = cached.stats();
        assert_eq!(stats.forward_cache.hits, 0);
        assert_eq!(stats.forward_cache.entries, 0);
    }

    #[test]
    fn normalization_shares_forward_slots() {
        let cached = CachedEngine::new(engine());
        let _ = cached.search("Fleming").unwrap();
        let _ = cached.search("  fleming  ").unwrap();
        let stats = cached.stats();
        assert_eq!(
            stats.forward_cache.hits, 1,
            "case/whitespace variants share one cache slot"
        );
    }

    #[test]
    fn clear_caches_forces_recompute() {
        let cached = CachedEngine::new(engine());
        let _ = cached.search("wind").unwrap();
        cached.clear_caches();
        let _ = cached.search("wind").unwrap();
        let stats = cached.stats();
        assert_eq!(stats.forward_cache.hits, 0);
        assert_eq!(stats.forward_cache.misses, 2);
    }

    /// Every public counter the serving layer exposes is present in the
    /// registry snapshot, and the `Display` rendering (which iterates the
    /// snapshot) therefore names all of them — nothing can be registered
    /// yet dropped from the human-readable report.
    #[test]
    fn display_covers_every_registered_metric() {
        use crate::stats::names;

        let cached = CachedEngine::new(engine());
        let _ = cached.search("wind fleming").unwrap();
        let _ = cached.search("wind fleming").unwrap();
        let stats = cached.stats();

        // The core recorder metrics and every snapshot-time mirror gauge
        // must exist in the snapshot...
        let expected = [
            names::QUERIES,
            names::ERRORS,
            names::SLOW_QUERIES,
            names::LATENCY,
            names::STAGE_FORWARD,
            names::STAGE_BACKWARD,
            names::STAGE_ASSEMBLE,
            names::STAGE_EMISSIONS,
            names::STAGE_DECODE,
            names::STAGE_COMBINE,
            names::UNCACHED_FORWARD,
        ];
        for name in expected.iter().chain(names::MIRRORS) {
            assert!(
                stats.metrics.get(name).is_some(),
                "metric {name} missing from the snapshot"
            );
        }
        // ...and every snapshot metric must appear in the rendering.
        let text = stats.to_string();
        for m in &stats.metrics.metrics {
            assert!(
                text.contains(&m.full_name()),
                "metric {} registered but absent from Display:\n{text}",
                m.full_name()
            );
        }
        // The mirrors agree with the typed fields they shadow.
        assert_eq!(
            stats.metrics.gauge("quest_serve_forward_cache_hits"),
            Some(stats.forward_cache.hits as i64)
        );
        assert_eq!(
            stats.metrics.gauge("quest_serve_join_template_entries"),
            Some(stats.join_templates.entries as i64)
        );
        assert_eq!(
            stats.metrics.counter(names::QUERIES),
            Some(stats.queries),
            "registry counter and typed field are the same number"
        );
    }

    /// Traces carry real per-stage attribution: a cold search misses the
    /// forward cache and a warm repeat hits it, stage walls never exceed
    /// the total, and with a floor-zero threshold every query lands in the
    /// slow log with its stage breakdown.
    #[test]
    fn traces_attribute_stages_and_cache_outcomes() {
        let cached = CachedEngine::with_obs(
            engine(),
            CacheConfig::default(),
            Arc::new(quest_obs::MetricsRegistry::new()),
            quest_obs::TraceConfig {
                ring_capacity: 8,
                slow_capacity: 8,
                // 1µs floor: any real search clears it, so everything
                // classifies as slow (0 would disable the log).
                slow_query_us: 1,
            },
        );
        let _ = cached.search("wind fleming").unwrap();
        let _ = cached.search("wind fleming").unwrap();

        let traces = cached.traces();
        assert_eq!(traces.len(), 2);
        let (cold, warm) = (&traces[0], &traces[1]);
        assert_eq!(cold.query, "wind fleming");
        assert!(!cold.forward_cache_hit, "first search computes forward");
        assert!(warm.forward_cache_hit, "repeat is served from the cache");
        assert!(
            cold.backward_cache_misses > 0,
            "cold search enumerates at least one configuration"
        );
        for t in [cold, warm] {
            assert!(
                t.forward_us + t.backward_us + t.assemble_us <= t.total_us,
                "stage attribution exceeds the total wall: {t:?}"
            );
            assert!(t.ok);
        }
        // Threshold 0 classifies everything slow, in both the log and the
        // counters.
        assert_eq!(cached.slow_queries().len(), 2);
        assert_eq!(cached.stats().slow_queries, 2);
    }
}
