//! [`CachedEngine`]: a thread-safe, cache-fronted wrapper around
//! [`Quest`].
//!
//! Two bounded LRU caches sit in front of the pipeline's two expensive
//! stages:
//!
//! * **forward** — normalized keywords (+ feedback epoch) → the full
//!   [`ForwardResult`] (both operating-mode decodes and their DST
//!   combination);
//! * **backward** — a configuration's term sequence → its top-k Steiner
//!   interpretations.
//!
//! Both stages are pure functions of their key for a fixed engine state, so
//! caching is semantically transparent: a cached search returns bit-identical
//! explanations and scores to an uncached [`Quest::search_query`]. Feedback
//! invalidates nothing explicitly — forward keys embed the engine's
//! [feedback epoch](Quest::feedback_epoch), so entries from before a
//! feedback event simply stop matching and age out of the LRU. Backward
//! results never depend on feedback at all.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use quest_core::backward::Interpretation;
use quest_core::term::DbTerm;
use quest_core::{
    Configuration, Explanation, ForwardResult, KeywordQuery, Quest, QuestError, SearchOutcome,
    SourceWrapper,
};

use crate::cache::LruCache;
use crate::stats::{CacheStats, LatencyRecorder, ServeStats};

/// Cache-tuning knobs of the serving layer.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Entries of the forward cache (distinct keyword queries per feedback
    /// epoch). 0 disables it.
    pub forward_capacity: usize,
    /// Entries of the backward cache (distinct configurations). 0 disables
    /// it.
    pub backward_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            // A workload's distinct-query set is small next to its volume;
            // configurations are shared across queries, so the backward
            // cache earns a larger budget.
            forward_capacity: 1024,
            backward_capacity: 4096,
        }
    }
}

/// Forward-cache key: feedback epoch plus the normalized keyword sequence
/// (normalized text and phrase flag are the only keyword features the
/// pipeline reads, so raw strings that normalize identically share a slot).
type ForwardKey = (u64, Vec<(String, bool)>);

/// A [`Quest`] engine plus the two stage caches and serving counters.
///
/// All methods take `&self`; wrap it in an [`std::sync::Arc`] to share one
/// instance — and one warm cache — across threads.
#[derive(Debug)]
pub struct CachedEngine<W: SourceWrapper> {
    engine: Quest<W>,
    // Values are Arc-wrapped so a hit clones a pointer inside the lock and
    // the (potentially large) payload copy happens outside it.
    forward: Mutex<LruCache<ForwardKey, Arc<ForwardResult>>>,
    backward: Mutex<LruCache<Vec<DbTerm>, Arc<Vec<Interpretation>>>>,
    recorder: LatencyRecorder,
}

impl<W: SourceWrapper> CachedEngine<W> {
    /// Front `engine` with default-sized caches.
    pub fn new(engine: Quest<W>) -> CachedEngine<W> {
        CachedEngine::with_caches(engine, CacheConfig::default())
    }

    /// Front `engine` with explicitly sized caches.
    pub fn with_caches(engine: Quest<W>, caches: CacheConfig) -> CachedEngine<W> {
        CachedEngine {
            engine,
            forward: Mutex::new(LruCache::new(caches.forward_capacity)),
            backward: Mutex::new(LruCache::new(caches.backward_capacity)),
            recorder: LatencyRecorder::default(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Quest<W> {
        &self.engine
    }

    fn forward_cache(&self) -> MutexGuard<'_, LruCache<ForwardKey, Arc<ForwardResult>>> {
        self.forward.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn backward_cache(&self) -> MutexGuard<'_, LruCache<Vec<DbTerm>, Arc<Vec<Interpretation>>>> {
        self.backward.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Run Algorithm 1 on a raw query string, through the caches.
    pub fn search(&self, raw_query: &str) -> Result<SearchOutcome, QuestError> {
        let query = KeywordQuery::parse(raw_query)?;
        self.search_query(&query)
    }

    /// Run Algorithm 1 on a parsed query, through the caches. Results are
    /// identical to `self.engine().search_query(query)`.
    pub fn search_query(&self, query: &KeywordQuery) -> Result<SearchOutcome, QuestError> {
        let t0 = Instant::now();
        let result = self.search_inner(query);
        self.recorder.record(t0.elapsed(), result.is_ok());
        result
    }

    fn search_inner(&self, query: &KeywordQuery) -> Result<SearchOutcome, QuestError> {
        let epoch = self.engine.feedback_epoch();
        let key: ForwardKey = (
            epoch,
            query
                .keywords
                .iter()
                .map(|k| (k.normalized.clone(), k.phrase))
                .collect(),
        );
        // Bind the lookup before matching: a guard born in a match
        // scrutinee lives to the end of the match and would deadlock the
        // insert below.
        let cached_forward = self.forward_cache().get(&key);
        let forward = match cached_forward {
            Some(hit) => (*hit).clone(), // payload copy happens off-lock
            None => {
                let computed = self.engine.forward_pass(query)?;
                // Only cache if no feedback landed mid-computation; a result
                // spanning an epoch boundary may mix old and new model state
                // and must not be replayed.
                if self.engine.feedback_epoch() == epoch {
                    self.forward_cache().insert(key, Arc::new(computed.clone()));
                }
                computed
            }
        };

        let t0 = Instant::now();
        let mut interpretations = Vec::with_capacity(forward.configurations.len());
        for cfg in &forward.configurations {
            let cached_backward = self.backward_cache().get(&cfg.terms);
            let interps = match cached_backward {
                Some(hit) => (*hit).clone(),
                None => {
                    let computed = self.engine.backward_pass(cfg)?;
                    self.backward_cache()
                        .insert(cfg.terms.clone(), Arc::new(computed.clone()));
                    computed
                }
            };
            interpretations.push(interps);
        }
        let backward_time = t0.elapsed();
        self.engine
            .assemble(query, forward, interpretations, backward_time)
    }

    /// Record user feedback on an explanation (see [`Quest::feedback`]).
    /// Bumps the feedback epoch, so forward-cache entries built on the old
    /// model stop matching.
    pub fn feedback(
        &self,
        query: &KeywordQuery,
        explanation: &Explanation,
        positive: bool,
    ) -> Result<(), QuestError> {
        self.engine.feedback(query, explanation, positive)
    }

    /// Directly record a validated configuration (see
    /// [`Quest::feedback_configuration`]).
    pub fn feedback_configuration(
        &self,
        config: &Configuration,
        positive: bool,
    ) -> Result<(), QuestError> {
        self.engine.feedback_configuration(config, positive)
    }

    /// Drop all cached entries (counters are preserved).
    pub fn clear_caches(&self) {
        self.forward_cache().clear();
        self.backward_cache().clear();
    }

    /// A point-in-time snapshot of hit/miss/latency counters.
    pub fn stats(&self) -> ServeStats {
        let mut stats = ServeStats::default();
        self.recorder.snapshot_into(&mut stats);
        {
            let c = self.forward_cache();
            stats.forward_cache = CacheStats {
                hits: c.hits(),
                misses: c.misses(),
                entries: c.len(),
                capacity: c.capacity(),
            };
        }
        {
            let c = self.backward_cache();
            stats.backward_cache = CacheStats {
                hits: c.hits(),
                misses: c.misses(),
                entries: c.len(),
                capacity: c.capacity(),
            };
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::engine;

    fn same_outcome(a: &SearchOutcome, b: &SearchOutcome) {
        assert_eq!(a.explanations.len(), b.explanations.len());
        for (x, y) in a.explanations.iter().zip(&b.explanations) {
            assert_eq!(x.score, y.score);
            assert_eq!(x.configuration.terms, y.configuration.terms);
            assert_eq!(x.statement, y.statement);
        }
        assert_eq!(a.effective_o_cf, b.effective_o_cf);
    }

    #[test]
    fn cached_search_matches_uncached() {
        let cached = CachedEngine::new(engine());
        let plain = cached.engine();
        for raw in ["wind fleming", "fleming", "wind"] {
            let a = cached.search(raw).unwrap(); // cold: fills caches
            let b = cached.search(raw).unwrap(); // warm: from caches
            let c = plain.search(raw).unwrap(); // uncached reference
            same_outcome(&a, &c);
            same_outcome(&b, &c);
        }
        let stats = cached.stats();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.forward_cache.hits, 3);
        assert_eq!(stats.forward_cache.misses, 3);
        assert!(stats.backward_cache.hits > 0);
    }

    #[test]
    fn feedback_epoch_invalidates_forward_entries() {
        let cached = CachedEngine::new(engine());
        let before = cached.search("wind fleming").unwrap();
        let _warm = cached.search("wind fleming").unwrap();
        assert_eq!(cached.stats().forward_cache.hits, 1);

        // Feedback bumps the epoch: the next search must recompute the
        // forward stage and reflect the trained model.
        let best = before.explanations[0].clone();
        let query = KeywordQuery::parse("wind fleming").unwrap();
        for _ in 0..5 {
            cached.feedback(&query, &best, true).unwrap();
        }
        let after = cached.search("wind fleming").unwrap();
        assert_eq!(
            cached.stats().forward_cache.hits,
            1,
            "post-feedback search must miss the forward cache"
        );
        assert!(
            !after.feedback_configs.is_empty(),
            "trained model must now contribute"
        );
        same_outcome(&after, &cached.engine().search("wind fleming").unwrap());
    }

    #[test]
    fn disabled_caches_still_correct() {
        let cached = CachedEngine::with_caches(
            engine(),
            CacheConfig {
                forward_capacity: 0,
                backward_capacity: 0,
            },
        );
        let a = cached.search("wind fleming").unwrap();
        let b = cached.search("wind fleming").unwrap();
        same_outcome(&a, &b);
        let stats = cached.stats();
        assert_eq!(stats.forward_cache.hits, 0);
        assert_eq!(stats.forward_cache.entries, 0);
    }

    #[test]
    fn normalization_shares_forward_slots() {
        let cached = CachedEngine::new(engine());
        let _ = cached.search("Fleming").unwrap();
        let _ = cached.search("  fleming  ").unwrap();
        let stats = cached.stats();
        assert_eq!(
            stats.forward_cache.hits, 1,
            "case/whitespace variants share one cache slot"
        );
    }

    #[test]
    fn clear_caches_forces_recompute() {
        let cached = CachedEngine::new(engine());
        let _ = cached.search("wind").unwrap();
        cached.clear_caches();
        let _ = cached.search("wind").unwrap();
        let stats = cached.stats();
        assert_eq!(stats.forward_cache.hits, 0);
        assert_eq!(stats.forward_cache.misses, 2);
    }
}
