//! # quest-serve — a concurrent, cache-backed query service for QUEST
//!
//! The engine in `quest-core` answers one query at a time. This crate puts a
//! serving layer in front of it for analytical keyword-query streams, where
//! many queries repeat the same schema terms and join paths:
//!
//! * [`CachedEngine`] — wraps a [`Quest`](quest_core::Quest) engine with two
//!   bounded LRU caches (keyword → top-k configurations for the forward
//!   stage; configuration → interpretations for the backward/Steiner stage)
//!   and hit/miss/latency counters. Caching is semantically transparent:
//!   results are bit-identical to the uncached engine. Two monotonic epochs
//!   keep it that way under change — the engine's *feedback epoch* (user
//!   feedback, EM refinement) and the serving layer's *data epoch*, bumped
//!   by every live-data mutation batch applied through
//!   [`CachedEngine::apply`] (a slice of
//!   [`quest_wal::ChangeRecord`]s); entries keyed by dead epochs are purged
//!   on the next search.
//! * [`QueryService`] — a thread pool (std threads + channels, no external
//!   dependencies) draining submitted queries through one shared
//!   `CachedEngine`, so every worker benefits from every other worker's
//!   cache fills. `submit`/[`submit_batch`](QueryService::submit_batch)
//!   return [`Ticket`]s; [`shutdown`](QueryService::shutdown) drains and
//!   joins.
//! * [`ServeStats`] — a point-in-time snapshot of cache and latency
//!   counters.
//!
//! ```
//! use quest_core::{FullAccessWrapper, Quest, QuestConfig};
//! use quest_serve::{CachedEngine, QueryService};
//! use relstore::{Catalog, DataType, Database, Row};
//!
//! // A two-row database: people direct movies.
//! let mut catalog = Catalog::new();
//! catalog
//!     .define_table("person")?
//!     .pk("id", DataType::Int)?
//!     .col("name", DataType::Text)?
//!     .finish();
//! catalog
//!     .define_table("movie")?
//!     .pk("id", DataType::Int)?
//!     .col("title", DataType::Text)?
//!     .col_opts("director_id", DataType::Int, true, false)?
//!     .finish();
//! catalog.add_foreign_key("movie", "director_id", "person")?;
//! let mut db = Database::new(catalog)?;
//! db.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))?;
//! db.insert(
//!     "movie",
//!     Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
//! )?;
//!
//! // Serve a query stream from two workers over one shared cache.
//! let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default())?;
//! let service = QueryService::new(CachedEngine::new(engine), 2);
//! let tickets = service.submit_batch(["wind fleming", "wind"]);
//! for ticket in tickets {
//!     assert!(!ticket.wait()?.explanations.is_empty());
//! }
//! // The stream has been seen once, so a repeat is served from the caches.
//! let repeat = service.submit("wind fleming").wait()?;
//! assert!(!repeat.explanations.is_empty());
//! let stats = service.shutdown();
//! assert_eq!(stats.queries, 3);
//! assert!(stats.forward_cache.hits >= 1); // the repeat was a lookup
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod service;
pub mod stats;

pub use cache::LruCache;
pub use engine::{ApplyReport, CacheConfig, CachedEngine, MutableSource};
pub use error::ServeError;
pub use service::{QueryService, Ticket};
pub use stats::{names, CacheStats, ServeStats, StageLatencies};

// Re-exported observability vocabulary so service consumers can configure
// tracing and read snapshots without a direct `quest-obs` dependency.
pub use quest_obs::{MetricsRegistry, MetricsSnapshot, QueryTrace, TraceConfig};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared unit-test fixture.

    use quest_core::{FullAccessWrapper, Quest, QuestConfig};
    use relstore::{Catalog, DataType, Database, Row};

    /// A two-table engine: Victor Fleming directed Gone with the Wind.
    pub fn engine() -> Quest<FullAccessWrapper> {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        d.finalize();
        Quest::new(FullAccessWrapper::new(d), QuestConfig::default()).unwrap()
    }
}
