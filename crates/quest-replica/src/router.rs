//! [`ReplicaSet`]: a consistency-aware query router over one primary and
//! its replicas.
//!
//! Reads scatter across replicas under a pluggable [`RoutingPolicy`]
//! (round-robin or least-loaded); every query carries a [`Consistency`]
//! tag. `Eventual` takes any replica at whatever LSN it has reached;
//! `AtLeast(lsn)` — read-your-writes, with the LSN taken from a
//! [`CommitReceipt`](crate::CommitReceipt) — only ever routes to a server
//! at or past that LSN: a current replica if one exists, otherwise the
//! router first tries to catch a replica up (the log is shared, so catching
//! up is a pull, not a wait) and finally falls back to the primary, which
//! is current by definition. A replica behind the bound is **never**
//! consulted (`tests/replica.rs` pins this).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;

use quest_core::SearchOutcome;
use quest_fault::{Clock, RetryPolicy, SystemClock};
use quest_serve::ServeStats;

use crate::error::ReplicaError;
use crate::primary::Primary;
use crate::replica::{Replica, SyncReport};

/// How reads spread over the replicas that satisfy a query's consistency
/// bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Rotate through eligible replicas in order.
    #[default]
    RoundRobin,
    /// Pick the eligible replica with the fewest in-flight searches
    /// (ties: most caught up, then lowest index).
    LeastLoaded,
}

/// Per-query consistency requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Any replica, at whatever LSN it has reached.
    #[default]
    Eventual,
    /// Read-your-writes: only servers at or past this LSN may answer
    /// (typically `receipt.last_lsn` from the commit being read back).
    AtLeast(u64),
}

/// A routed search result, annotated with who served it and at what LSN.
#[derive(Debug)]
pub struct Routed {
    /// The search outcome. Replicas at the same LSN answer bit-identically
    /// (and identically to a feedback-free cold engine at that LSN); the
    /// primary sees the same **data**, but user feedback recorded on it is
    /// a primary-local ranking signal, not replicated — after feedback
    /// training, a primary-served answer may rank differently than a
    /// replica-served one.
    pub outcome: SearchOutcome,
    /// The serving node: a replica's name, or `"primary"`.
    pub served_by: String,
    /// The server's applied LSN when it was selected — always `>=` the
    /// query's [`Consistency::AtLeast`] bound.
    pub lsn: u64,
}

/// One replica's row in a [`Topology`] report.
#[derive(Debug)]
pub struct ReplicaStatus {
    /// Replica name.
    pub name: String,
    /// Applied LSN.
    pub lsn: u64,
    /// Records behind the primary.
    pub lag: u64,
    /// In-flight searches.
    pub load: usize,
    /// Whether the replica can still converge (see
    /// [`Replica::is_healthy`]); the router never selects an unhealthy
    /// one.
    pub healthy: bool,
    /// Full serving counters ([`ServeStats::watermark`] mirrors `lsn`).
    pub stats: ServeStats,
}

/// Point-in-time view of the whole topology.
#[derive(Debug)]
pub struct Topology {
    /// The primary's published LSN.
    pub primary_lsn: u64,
    /// One row per replica, in registration order.
    pub replicas: Vec<ReplicaStatus>,
}

impl Topology {
    /// Grade this topology against an SLO: the worst lag among healthy
    /// replicas is the `lag` observation, and every broken replica is a
    /// hard [`Critical`](quest_obs::HealthStatus::Critical) regardless of
    /// bounds. Strictly observational — routing never consults the grade
    /// (`tests/replica.rs` serves identically with or without one).
    pub fn health(&self, spec: &quest_obs::SloSpec) -> quest_obs::HealthReport {
        let lag = self
            .replicas
            .iter()
            .filter(|r| r.healthy)
            .map(|r| r.lag)
            .max();
        let mut report = spec.evaluate(&quest_obs::HealthInputs {
            p99_us: None,
            error_rate: None,
            lag,
        });
        for broken in self.replicas.iter().filter(|r| !r.healthy) {
            report.push(
                quest_obs::HealthStatus::Critical,
                format!("replica {} is broken; re-bootstrap it", broken.name),
            );
        }
        report
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "primary @ lsn {}", self.primary_lsn)?;
        for r in &self.replicas {
            writeln!(
                f,
                "{:>12} @ lsn {} (lag {}, {} in flight, fwd hit {:.0}%{})",
                r.name,
                r.lsn,
                r.lag,
                r.load,
                100.0 * r.stats.forward_cache.hit_rate(),
                if r.healthy { "" } else { ", BROKEN" }
            )?;
        }
        Ok(())
    }
}

/// Recovery state of one replica slot (see [`ReplicaSet::supervise`]).
#[derive(Debug)]
enum Quarantine {
    /// Serving normally (or merely lagging — lag is not quarantine).
    Active,
    /// Broken and quarantined: re-bootstrap probes run behind backoff.
    Probing {
        /// Failed probes so far.
        attempts: u32,
        /// Clock time before which no further probe runs.
        next_probe: Duration,
    },
    /// Probes exhausted the retry budget; only operator action (a manual
    /// [`ReplicaSet::spawn_replica`] replacement) brings the slot back.
    Permanent,
}

/// One registered replica plus its recovery state. The `Arc<Replica>` is
/// swapped wholesale when a quarantine probe re-bootstraps it; handles from
/// before the swap keep working (they just point at the retired instance).
#[derive(Debug)]
struct ReplicaSlot {
    replica: RwLock<Arc<Replica>>,
    state: Mutex<Quarantine>,
}

/// The router: one primary, N replicas, a default policy.
#[derive(Debug)]
pub struct ReplicaSet {
    primary: Arc<Primary>,
    slots: Vec<ReplicaSlot>,
    policy: RoutingPolicy,
    rr: AtomicUsize,
    /// Queries served by the primary because no registered replica could
    /// satisfy the bound (global-registry counter; not bumped when the set
    /// simply has no replicas).
    fallback: quest_obs::Counter,
    /// Backoff policy for quarantine probes.
    retry: RetryPolicy,
    /// Time source the quarantine machinery reads (tests inject a
    /// [`quest_fault::ManualClock`]).
    clock: Arc<dyn Clock>,
    /// Gauge of slots currently not Active (probing or permanent).
    quarantined: quest_obs::Gauge,
}

impl ReplicaSet {
    /// A router over `primary` with no replicas yet (all reads go to the
    /// primary until [`ReplicaSet::add_replica`] /
    /// [`ReplicaSet::spawn_replica`]).
    pub fn new(primary: Arc<Primary>, policy: RoutingPolicy) -> ReplicaSet {
        ReplicaSet {
            primary,
            slots: Vec::new(),
            policy,
            rr: AtomicUsize::new(0),
            fallback: quest_obs::global().counter(crate::names::ROUTER_FALLBACK),
            retry: RetryPolicy::from_env(),
            clock: Arc::new(SystemClock::new()),
            quarantined: quest_fault::quarantined("replica"),
        }
    }

    /// Override the quarantine backoff policy and clock (tests drive a
    /// [`quest_fault::ManualClock`] so probes need no wall-clock time).
    pub fn set_recovery(&mut self, retry: RetryPolicy, clock: Arc<dyn Clock>) {
        self.retry = retry;
        self.clock = clock;
    }

    /// Register an existing replica.
    pub fn add_replica(&mut self, replica: Arc<Replica>) {
        self.slots.push(ReplicaSlot {
            replica: RwLock::new(replica),
            state: Mutex::new(Quarantine::Active),
        });
    }

    /// Bootstrap a new replica from the primary's published snapshot,
    /// register it, and return it (e.g. to drive its sync loop).
    pub fn spawn_replica(&mut self, name: &str) -> Result<Arc<Replica>, ReplicaError> {
        let replica = Arc::new(Replica::from_primary(name, &self.primary)?);
        self.add_replica(Arc::clone(&replica));
        Ok(replica)
    }

    /// The write point.
    pub fn primary(&self) -> &Arc<Primary> {
        &self.primary
    }

    /// The currently registered replicas, in registration order. A snapshot:
    /// a quarantine heal swaps a slot's replica for a freshly bootstrapped
    /// instance, so handles can retire — re-call for the live set.
    pub fn replicas(&self) -> Vec<Arc<Replica>> {
        self.slots
            .iter()
            .map(|s| Arc::clone(&s.replica.read().unwrap_or_else(PoisonError::into_inner)))
            .collect()
    }

    /// One supervision tick: move broken replicas into quarantine and run
    /// any due re-bootstrap probes. A successful probe builds a fresh
    /// replica from the newest published snapshot, catches it up to the
    /// primary, and swaps it into the slot; a failed probe backs off, and
    /// after the retry budget is spent the slot escalates to permanent
    /// (manual replacement only). Returns how many replicas healed.
    ///
    /// Runs opportunistically on every [`ReplicaSet::query`] that sees an
    /// unhealthy replica; idle topologies can call it from a timer tick.
    pub fn supervise(&self) -> usize {
        let now = self.clock.now();
        let mut healed = 0;
        for slot in &self.slots {
            let replica = Arc::clone(&slot.replica.read().unwrap_or_else(PoisonError::into_inner));
            let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            if matches!(*state, Quarantine::Active) && !replica.is_healthy() {
                // Quarantine: the router already skips unhealthy replicas;
                // this transition is what schedules the heal probes.
                *state = Quarantine::Probing {
                    attempts: 0,
                    next_probe: now,
                };
                self.quarantined.add(1);
            }
            let Quarantine::Probing {
                attempts,
                next_probe,
            } = &mut *state
            else {
                continue;
            };
            if now < *next_probe {
                continue;
            }
            match self.try_rebootstrap(replica.name()) {
                Ok(fresh) => {
                    *slot.replica.write().unwrap_or_else(PoisonError::into_inner) = fresh;
                    *state = Quarantine::Active;
                    self.quarantined.sub(1);
                    quest_fault::count_heal("replica");
                    healed += 1;
                }
                Err(_) if *attempts >= self.retry.retries => {
                    // Still counted in the quarantine gauge: the slot is
                    // out of service either way.
                    *state = Quarantine::Permanent;
                    quest_fault::count_escalation("replica");
                }
                Err(_) => {
                    quest_fault::count_retry();
                    *next_probe = now + self.retry.delay(*attempts);
                    *attempts += 1;
                }
            }
        }
        healed
    }

    /// Build a replacement replica from the newest published snapshot and
    /// catch it up to the primary's current LSN.
    fn try_rebootstrap(&self, name: &str) -> Result<Arc<Replica>, ReplicaError> {
        let fresh = Replica::from_primary(name, &self.primary)?;
        fresh.sync_to(self.primary.last_lsn())?;
        Ok(Arc::new(fresh))
    }

    /// Route one search under `consistency` (see the module docs for the
    /// full decision order).
    pub fn query(&self, raw_query: &str, consistency: Consistency) -> Result<Routed, ReplicaError> {
        let mut replicas = self.replicas();
        // Opportunistic supervision: a broken replica in the set means
        // quarantine probes may be due; run a tick before routing so a
        // heal-able topology heals under its own query traffic.
        if replicas.iter().any(|r| !r.is_healthy()) && self.supervise() > 0 {
            replicas = self.replicas();
        }
        let min_lsn = match consistency {
            Consistency::Eventual => 0,
            Consistency::AtLeast(lsn) => lsn,
        };
        // A bound past the primary's own LSN names an unacknowledged
        // future: no server can satisfy it, and "waiting" would be waiting
        // on a commit that may never come. Fail loudly.
        if min_lsn > self.primary.last_lsn() {
            return Err(ReplicaError::Lagging {
                required: min_lsn,
                reached: self.primary.last_lsn(),
            });
        }
        let eligible: Vec<usize> = (0..replicas.len())
            .filter(|&i| replicas[i].is_healthy() && replicas[i].applied_lsn() >= min_lsn)
            .collect();
        if let Some(i) = self.pick(&replicas, &eligible) {
            return self.serve_from(&replicas[i], raw_query);
        }
        // No replica is current. Catch one up — the log is shared, so this
        // is a bounded pull, not an open-ended wait — and fall back to the
        // primary only if even that fails.
        let healthy: Vec<usize> = (0..replicas.len())
            .filter(|&i| replicas[i].is_healthy())
            .collect();
        if let Some(i) = self.pick(&replicas, &healthy) {
            if replicas[i].sync_to(min_lsn).is_ok() {
                return self.serve_from(&replicas[i], raw_query);
            }
        }
        // Routing to the primary with replicas registered is a fallback
        // worth counting; with none it is simply the only server.
        if !replicas.is_empty() {
            self.fallback.inc();
        }
        // Stamp the LSN before searching (same rule as serve_from): the
        // primary only ever advances, so this is a lower bound on what the
        // search actually saw — reading it after could overstate it.
        let lsn = self.primary.last_lsn();
        let outcome = self.primary.search(raw_query)?;
        Ok(Routed {
            outcome,
            served_by: "primary".into(),
            lsn,
        })
    }

    /// Serve from `replica`, stamping name and LSN-at-selection.
    fn serve_from(&self, replica: &Replica, raw_query: &str) -> Result<Routed, ReplicaError> {
        // Read the LSN before searching: it only ever grows, so the stamp
        // is a lower bound on what the search actually saw.
        let lsn = replica.applied_lsn();
        let outcome = replica.search(raw_query)?;
        Ok(Routed {
            outcome,
            served_by: replica.name().to_string(),
            lsn,
        })
    }

    /// Pick one of `candidates` (indexes into `replicas`) under the policy.
    fn pick(&self, replicas: &[Arc<Replica>], candidates: &[usize]) -> Option<usize> {
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let n = candidates.len();
                (n > 0).then(|| candidates[self.rr.fetch_add(1, Ordering::Relaxed) % n])
            }
            RoutingPolicy::LeastLoaded => candidates.iter().copied().min_by_key(|&i| {
                let r = &replicas[i];
                (r.load(), u64::MAX - r.applied_lsn(), i)
            }),
        }
    }

    /// Run one [`Replica::sync`] round on every **healthy** replica (a poor
    /// operator's replication daemon; real deployments run per-replica
    /// loops). Broken replicas are skipped — they cannot converge by
    /// syncing; [`ReplicaSet::supervise`] owns their recovery.
    pub fn sync_all(&self) -> Result<Vec<SyncReport>, ReplicaError> {
        self.replicas()
            .into_iter()
            .filter(|r| r.is_healthy())
            .map(|r| r.sync())
            .collect()
    }

    /// Point-in-time lag and serving counters for the whole topology.
    pub fn topology(&self) -> Topology {
        let primary_lsn = self.primary.last_lsn();
        Topology {
            primary_lsn,
            replicas: self
                .replicas()
                .iter()
                .map(|r| ReplicaStatus {
                    name: r.name().to_string(),
                    lsn: r.applied_lsn(),
                    lag: r.lag(primary_lsn),
                    load: r.load(),
                    healthy: r.is_healthy(),
                    stats: r.stats(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{movie_batch, sample_db, temp_dir};
    use quest_core::QuestConfig;

    fn set_with(n: usize, policy: RoutingPolicy, name: &str) -> ReplicaSet {
        let dir = temp_dir(name);
        let primary = Arc::new(Primary::open(&dir, sample_db(), QuestConfig::default()).unwrap());
        let mut set = ReplicaSet::new(primary, policy);
        for i in 0..n {
            set.spawn_replica(&format!("r{i}")).unwrap();
        }
        set
    }

    #[test]
    fn round_robin_rotates_over_eligible_replicas() {
        let set = set_with(3, RoutingPolicy::RoundRobin, "router-rr");
        let mut served = Vec::new();
        for _ in 0..6 {
            served.push(set.query("wind", Consistency::Eventual).unwrap().served_by);
        }
        assert_eq!(served, ["r0", "r1", "r2", "r0", "r1", "r2"]);
    }

    #[test]
    fn no_replicas_means_primary_serves() {
        let set = set_with(0, RoutingPolicy::RoundRobin, "router-empty");
        let routed = set.query("wind", Consistency::Eventual).unwrap();
        assert_eq!(routed.served_by, "primary");
    }

    #[test]
    fn read_your_writes_waits_out_lag_or_uses_primary() {
        let set = set_with(2, RoutingPolicy::RoundRobin, "router-ryw");
        let receipt = set.primary().commit(&movie_batch(1)).unwrap();
        // Both replicas are stale; the bound forces a catch-up before the
        // answer comes back, and the stamp proves who served at what LSN.
        let routed = set
            .query("premiere", Consistency::AtLeast(receipt.last_lsn))
            .unwrap();
        assert!(routed.lsn >= receipt.last_lsn, "{routed:?}");
        assert_ne!(routed.served_by, "primary", "shared log ⇒ catch-up wins");

        // A bound past the primary's own LSN is unsatisfiable.
        assert!(matches!(
            set.query("wind", Consistency::AtLeast(999)),
            Err(ReplicaError::Lagging { .. })
        ));

        // Eventual consistency still accepts a stale replica.
        set.primary().commit(&movie_batch(2)).unwrap();
        let routed = set.query("wind", Consistency::Eventual).unwrap();
        assert_ne!(routed.served_by, "primary");
    }

    #[test]
    fn least_loaded_prefers_idle_then_most_caught_up() {
        let set = set_with(2, RoutingPolicy::LeastLoaded, "router-ll");
        set.primary().commit(&movie_batch(1)).unwrap();
        // Only r1 catches up; equal load (0), so the most caught-up wins.
        set.replicas()[1].sync().unwrap();
        let routed = set.query("wind", Consistency::Eventual).unwrap();
        assert_eq!(routed.served_by, "r1");
        assert_eq!(routed.lsn, 2);
    }

    #[test]
    fn replication_metrics_reach_the_global_registry() {
        // Unique replica names: the lag gauge's label is its identity in
        // the process-wide registry, and sibling tests use r0/r1.
        let dir = temp_dir("router-obs");
        let primary = Arc::new(Primary::open(&dir, sample_db(), QuestConfig::default()).unwrap());
        let mut set = ReplicaSet::new(primary, RoutingPolicy::RoundRobin);
        set.spawn_replica("obs-fresh").unwrap();
        set.spawn_replica("obs-stale").unwrap();
        set.primary().commit(&movie_batch(1)).unwrap();
        set.replicas()[0].sync().unwrap();
        let topo = set.topology(); // refreshes every lag gauge
        assert_eq!((topo.replicas[0].lag, topo.replicas[1].lag), (0, 2));

        let snap = quest_obs::global().snapshot();
        let lag_of = |name: &str| {
            snap.get_all(crate::names::LAG)
                .into_iter()
                .find(|m| m.labels.iter().any(|(_, v)| v == name))
                .map(|m| m.value.clone())
        };
        use quest_obs::MetricValue;
        assert_eq!(lag_of("obs-fresh"), Some(MetricValue::Gauge(0)));
        assert_eq!(lag_of("obs-stale"), Some(MetricValue::Gauge(2)));
        assert!(
            snap.histogram(crate::names::APPLY).map_or(0, |h| h.count) >= 1,
            "the sync's apply batch must land in the latency histogram"
        );
        // The fallback counter exists and counts primary-served queries
        // only while replicas are registered (asserted as a delta: the
        // registry is shared across tests).
        let before = snap.counter(crate::names::ROUTER_FALLBACK).unwrap_or(0);
        for r in set.replicas() {
            r.sync().unwrap();
        }
        let _ = set.query("wind", Consistency::Eventual).unwrap();
        let unchanged = quest_obs::global()
            .snapshot()
            .counter(crate::names::ROUTER_FALLBACK)
            .unwrap_or(0);
        assert!(unchanged >= before, "counter is monotonic");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn topology_health_grades_lag_and_brokenness() {
        use quest_obs::{HealthStatus, SloSpec};

        let set = set_with(2, RoutingPolicy::RoundRobin, "router-health");
        let spec = SloSpec {
            max_lag: Some(1),
            ..SloSpec::default()
        };
        // No commits: lag 0, within bound.
        assert_eq!(
            set.topology().health(&spec).status,
            HealthStatus::Healthy,
            "in-sync topology is healthy"
        );
        // Two records behind, bound 1, critical factor 2.0: 2 >= 1 × 2.
        set.primary().commit(&movie_batch(1)).unwrap();
        let report = set.topology().health(&spec);
        assert_eq!(report.status, HealthStatus::Critical, "{report}");
        assert!(report.reasons[0].contains("lag"), "{report}");
        // Caught up: healthy again. An unbounded spec never violates.
        set.sync_all().unwrap();
        assert_eq!(set.topology().health(&spec).status, HealthStatus::Healthy);
        assert_eq!(
            set.topology().health(&SloSpec::default()).status,
            HealthStatus::Healthy
        );
    }

    #[test]
    fn topology_reports_lag_per_replica() {
        let set = set_with(2, RoutingPolicy::RoundRobin, "router-topo");
        set.primary().commit(&movie_batch(1)).unwrap();
        set.replicas()[0].sync().unwrap();
        let topo = set.topology();
        assert_eq!(topo.primary_lsn, 2);
        assert_eq!(topo.replicas[0].lag, 0);
        assert_eq!(topo.replicas[1].lag, 2);
        let text = topo.to_string();
        assert!(text.contains("primary @ lsn 2"));
        assert!(text.contains("lag 2"));
    }
}
