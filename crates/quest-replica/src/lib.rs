//! # quest-replica — WAL-shipped read replicas for QUEST
//!
//! `quest-wal` made the write-ahead log the system's source of truth for
//! crash recovery; this crate promotes it to the **distribution backbone**:
//! the same log, shipped to N read replicas, turns the single-node pipeline
//! into a horizontally scalable read tier without giving up the
//! bit-identical-results guarantee the test suite is built on.
//!
//! * [`Primary`] — the single write point. [`Primary::commit`] assigns each
//!   record a monotonic **LSN** (its log sequence number — the topology's
//!   global clock), appends it write-ahead, applies it, and only then
//!   publishes the LSN; [`Primary::publish_snapshot`] emits slot-exact
//!   snapshots at exact LSNs for replica bootstrap.
//! * [`Replica`] — bootstraps from a snapshot, then tails the log with a
//!   positioned [`LogReader`](quest_wal::LogReader) (seek past the
//!   snapshot, poll the tail) and applies batches through its own cached
//!   engine, re-rejecting poison records exactly like recovery does. A
//!   replica at LSN `L` answers bit-identically to a cold engine built
//!   from the first `L` log records (`tests/replica.rs`).
//! * [`ReplicaSet`] — a consistency-aware router: [`RoutingPolicy`] picks
//!   among replicas (round-robin / least-loaded), and each query carries a
//!   [`Consistency`] tag — `Eventual`, or `AtLeast(lsn)` read-your-writes,
//!   which never consults a replica behind the bound: it catches one up
//!   over the shared log or falls back to the primary.
//!
//! Scope of the guarantee: LSN-bounded consistency is about **data**
//! visibility. User feedback recorded on the primary is a primary-local
//! ranking signal and is not replicated, so after feedback training a
//! primary-served answer may rank results differently than a (feedback-
//! free) replica-served one at the same LSN.
//!
//! ```
//! use quest_core::QuestConfig;
//! use quest_replica::{Consistency, Primary, ReplicaSet, RoutingPolicy};
//! use quest_wal::ChangeRecord;
//! use relstore::{Catalog, DataType, Database, Row};
//! use std::sync::Arc;
//!
//! // A tiny database: people direct movies.
//! let mut catalog = Catalog::new();
//! catalog
//!     .define_table("person")?
//!     .pk("id", DataType::Int)?
//!     .col("name", DataType::Text)?
//!     .finish();
//! catalog
//!     .define_table("movie")?
//!     .pk("id", DataType::Int)?
//!     .col("title", DataType::Text)?
//!     .col_opts("director_id", DataType::Int, true, false)?
//!     .finish();
//! catalog.add_foreign_key("movie", "director_id", "person")?;
//! let mut db = Database::new(catalog)?;
//! db.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))?;
//! db.insert(
//!     "movie",
//!     Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
//! )?;
//!
//! // Primary + one replica, routed round-robin.
//! let dir = std::env::temp_dir().join(format!("quest-replica-doc-{}", std::process::id()));
//! let primary = Arc::new(Primary::open(&dir, db, QuestConfig::default())?);
//! let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
//! set.spawn_replica("r1")?;
//!
//! // Commit through the primary; read your write from the replica tier.
//! let receipt = primary.commit(&[ChangeRecord::Insert {
//!     table: "movie".into(),
//!     row: vec![11.into(), "The Wizard of Oz".into(), 1.into()],
//! }])?;
//! let routed = set.query("wizard fleming", Consistency::AtLeast(receipt.last_lsn))?;
//! assert!(routed.lsn >= receipt.last_lsn);
//! assert_eq!(routed.served_by, "r1"); // caught up over the shared log
//! assert!(!routed.outcome.explanations.is_empty());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod primary;
pub mod replica;
pub mod router;

pub use error::ReplicaError;
pub use primary::{CommitReceipt, Primary, PrimaryOptions};
pub use replica::{Replica, SyncReport};
pub use router::{Consistency, ReplicaSet, ReplicaStatus, Routed, RoutingPolicy, Topology};

/// The replication tier's metric names in the [`quest_obs::global`]
/// registry.
pub mod names {
    /// Wall time of one non-empty apply batch on a replica (histogram,
    /// nanoseconds).
    pub const APPLY: &str = "quest_replica_apply_ns";
    /// Records behind the primary, one gauge per replica
    /// (`quest_replica_lag_lsns{replica="<name>"}`), refreshed whenever
    /// lag is computed (e.g. every topology report).
    pub const LAG: &str = "quest_replica_lag_lsns";
    /// Queries the router served from the primary because no registered
    /// replica could satisfy the consistency bound (counter).
    pub const ROUTER_FALLBACK: &str = "quest_router_fallback_total";
    /// Records committed through [`Primary::commit`](crate::Primary::commit)
    /// — the logical write volume, the denominator of the replication
    /// amplification ratio (counter; rejected-but-logged records count, an
    /// unacknowledged poisoned append does not).
    pub const RECORDS_COMMITTED: &str = "quest_replica_records_committed_total";
    /// Records replicas consumed from the log and applied (or re-rejected)
    /// — the physical replication volume: ≈ `records_committed × replicas`
    /// (counter).
    pub const RECORDS_APPLIED: &str = "quest_replica_records_applied_total";
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared unit-test fixture.

    use quest_wal::ChangeRecord;
    use relstore::{Catalog, DataType, Database, Row};
    use std::path::PathBuf;

    /// A two-table database: Victor Fleming directed Gone with the Wind.
    pub fn sample_db() -> Database {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        d.finalize();
        d
    }

    /// A two-record batch (person + their movie) with keys salted by
    /// `round` so successive batches never collide.
    pub fn movie_batch(round: i64) -> Vec<ChangeRecord> {
        let person_id = 100 + 2 * round;
        let movie_id = person_id + 1;
        vec![
            ChangeRecord::Insert {
                table: "person".into(),
                row: vec![person_id.into(), format!("Director {round}").into()],
            },
            ChangeRecord::Insert {
                table: "movie".into(),
                row: vec![
                    movie_id.into(),
                    format!("Premiere {round}").into(),
                    person_id.into(),
                ],
            },
        ]
    }

    /// A per-test, per-process temp directory.
    pub fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("quest-replica-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }
}
