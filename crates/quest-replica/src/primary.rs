//! [`Primary`]: the single write point of a replicated QUEST topology.
//!
//! The primary owns the only [`WalWriter`] and the only mutable engine. A
//! [`Primary::commit`] appends the batch to the log — assigning each record
//! its **LSN**, the log sequence number that is the topology's global clock
//! — and then applies it through the primary's own [`CachedEngine`], all
//! under one lock so log order always equals apply order (the invariant
//! every replica's convergence proof rests on). The committed LSN is
//! published only after the apply completes, so a client holding a
//! [`CommitReceipt`] can demand read-your-writes from any server at or past
//! `receipt.last_lsn`.
//!
//! Replicas bootstrap from the primary's published snapshot
//! ([`Primary::publish_snapshot`], always at an exact LSN) and then tail
//! the same log file with a positioned
//! [`LogReader`](quest_wal::LogReader) — the log is the replication
//! transport, not just a crash-recovery artifact.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use quest_core::{FullAccessWrapper, Quest, QuestConfig, QuestError, SearchOutcome};
use quest_fault::{Clock, RetryPolicy, SystemClock};
use quest_obs::{TraceCtx, TraceKind};
use quest_serve::{ApplyReport, CacheConfig, CachedEngine};
use quest_wal::{recover, write_snapshot, ChangeRecord, SyncPolicy, WalWriter};
use relstore::Database;

use crate::error::ReplicaError;

/// File name of the primary's write-ahead log inside its directory.
const WAL_FILE: &str = "primary.wal";
/// File name of the latest published snapshot inside the directory.
const SNAPSHOT_FILE: &str = "latest.snap";

/// Tuning knobs of a [`Primary`].
#[derive(Debug, Clone)]
pub struct PrimaryOptions {
    /// Automatic-fsync policy of the log (default: [`SyncPolicy::Never`] —
    /// the caller owns durability points via [`Primary::sync`]).
    pub sync_policy: SyncPolicy,
    /// Cache sizing of the primary's serving engine.
    pub caches: CacheConfig,
    /// Backoff policy for transient WAL faults inside [`Primary::commit`],
    /// [`Primary::sync`], and [`Primary::publish_snapshot`] (default: from
    /// the `QUEST_FAULT_*` environment knobs).
    pub retry: RetryPolicy,
    /// Time source the retry loops sleep against (default: wall clock;
    /// tests inject a [`quest_fault::ManualClock`]).
    pub clock: Arc<dyn Clock>,
}

impl Default for PrimaryOptions {
    fn default() -> PrimaryOptions {
        PrimaryOptions {
            sync_policy: SyncPolicy::default(),
            caches: CacheConfig::default(),
            retry: RetryPolicy::from_env(),
            clock: Arc::new(SystemClock::new()),
        }
    }
}

/// What one [`Primary::commit`] did.
#[derive(Debug)]
pub struct CommitReceipt {
    /// LSN of the first record in the batch. For an empty batch this is
    /// `last_lsn + 1` (an empty LSN range).
    pub first_lsn: u64,
    /// LSN of the last record — the token to pass as
    /// [`Consistency::AtLeast`](crate::Consistency::AtLeast) for
    /// read-your-writes over this commit.
    pub last_lsn: u64,
    /// Per-record outcome: which records applied and which the store
    /// rejected (rejections are logged too, and re-rejected identically by
    /// every replica and every recovery).
    pub report: ApplyReport,
}

/// The write point: one log, one mutable engine, monotonic LSNs.
#[derive(Debug)]
pub struct Primary {
    dir: PathBuf,
    engine: Arc<CachedEngine<FullAccessWrapper>>,
    /// The single WAL writer. Held across append **and** apply in
    /// [`Primary::commit`], so log order equals apply order.
    wal: Mutex<WalWriter>,
    /// Highest LSN whose effect is applied and visible to searches.
    /// Published with `Release` after the apply, so a reader that observes
    /// LSN `L` here can rely on the primary serving data at or past `L`.
    last_lsn: AtomicU64,
    /// Acknowledged records, in the global registry — the logical write
    /// volume the replication amplification ratio divides by.
    records_committed: quest_obs::Counter,
    /// Backoff policy for transient WAL faults (see [`PrimaryOptions`]).
    retry: RetryPolicy,
    /// Time source the retry loops sleep against.
    clock: Arc<dyn Clock>,
}

/// The committed-records counter, registered with its `# HELP` line.
fn committed_counter() -> quest_obs::Counter {
    let registry = quest_obs::global();
    registry.describe(
        crate::names::RECORDS_COMMITTED,
        "Records committed through Primary::commit.",
    );
    registry.counter(crate::names::RECORDS_COMMITTED)
}

impl Primary {
    /// Start a fresh primary in `dir` over `db`, with default options.
    ///
    /// Creates the directory, the log, and an initial snapshot at LSN 0 so
    /// replicas can bootstrap immediately. Refuses a directory whose log
    /// already has records — that history belongs to an earlier incarnation;
    /// use [`Primary::reopen`] to resume it.
    pub fn open(dir: &Path, db: Database, config: QuestConfig) -> Result<Primary, ReplicaError> {
        Primary::open_with(dir, db, config, PrimaryOptions::default())
    }

    /// [`Primary::open`] with explicit options.
    pub fn open_with(
        dir: &Path,
        db: Database,
        config: QuestConfig,
        options: PrimaryOptions,
    ) -> Result<Primary, ReplicaError> {
        std::fs::create_dir_all(dir).map_err(quest_wal::WalError::Io)?;
        let wal = WalWriter::open_with(&dir.join(WAL_FILE), db.catalog(), options.sync_policy)?;
        if wal.next_seq() != 1 {
            return Err(ReplicaError::State(format!(
                "{} already holds {} records; use Primary::reopen to resume it",
                dir.join(WAL_FILE).display(),
                wal.next_seq() - 1
            )));
        }
        let engine = Quest::new(FullAccessWrapper::new(db), config)?;
        let primary = Primary {
            dir: dir.to_path_buf(),
            engine: Arc::new(CachedEngine::with_caches(engine, options.caches)),
            wal: Mutex::new(wal),
            last_lsn: AtomicU64::new(0),
            records_committed: committed_counter(),
            retry: options.retry,
            clock: options.clock,
        };
        primary.publish_snapshot()?;
        Ok(primary)
    }

    /// Resume a primary from its directory: recover the database from the
    /// latest snapshot plus the log suffix, and continue the LSN sequence
    /// where the previous incarnation stopped.
    pub fn reopen(
        dir: &Path,
        config: QuestConfig,
        options: PrimaryOptions,
    ) -> Result<Primary, ReplicaError> {
        let recovery = recover(&dir.join(SNAPSHOT_FILE), &dir.join(WAL_FILE))?;
        let db = recovery.db;
        let wal = WalWriter::open_with(&dir.join(WAL_FILE), db.catalog(), options.sync_policy)?;
        let last_lsn = wal.next_seq() - 1;
        // A log whose last sequence sits below the snapshot watermark has
        // lost acknowledged history (publish_snapshot syncs the log before
        // the snapshot, so this is rot or tampering, not a crash).
        // Resuming would re-issue LSNs the snapshot — and every replica
        // bootstrapped from it — already covers. Refuse.
        if last_lsn < recovery.snapshot_lsn {
            return Err(ReplicaError::State(format!(
                "log ends at lsn {last_lsn} but the snapshot covers lsn {}; \
                 resuming would re-issue covered LSNs",
                recovery.snapshot_lsn
            )));
        }
        let engine = Quest::new(FullAccessWrapper::new(db), config)?;
        Ok(Primary {
            dir: dir.to_path_buf(),
            engine: Arc::new(CachedEngine::with_caches(engine, options.caches)),
            wal: Mutex::new(wal),
            last_lsn: AtomicU64::new(last_lsn),
            records_committed: committed_counter(),
            retry: options.retry,
            clock: options.clock,
        })
    }

    /// Commit a mutation batch: write-ahead to the log (assigning LSNs),
    /// then apply through the serving engine — both under the writer lock,
    /// so concurrent commits serialize and log order equals apply order.
    ///
    /// The batch is appended **all-or-nothing**
    /// ([`WalWriter::append_batch`]): a failed append rolls the log back
    /// and applies nothing, so the live primary can never diverge from a
    /// log that holds only a prefix of a batch it reported failed.
    ///
    /// Rejected records are part of the committed history (they are logged,
    /// and every replica re-rejects them identically); the receipt's
    /// [`ApplyReport`] says which ones. Durability at commit time follows
    /// the [`SyncPolicy`]; call [`Primary::sync`] for an explicit barrier.
    ///
    /// `last_lsn` is published only once the apply completes — it is the
    /// primary's read-your-writes barrier, **not** a replication barrier:
    /// a replica tailing the shared log may legitimately apply (and serve)
    /// a batch in the window between the append and the publish.
    pub fn commit(&self, batch: &[ChangeRecord]) -> Result<CommitReceipt, ReplicaError> {
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        if batch.is_empty() {
            return Ok(CommitReceipt {
                first_lsn: self.last_lsn() + 1,
                last_lsn: self.last_lsn(),
                report: ApplyReport::default(),
            });
        }
        // One trace context for the whole commit: the WAL append/fsync and
        // the engine apply below record their spans under it, so the Chrome
        // export can reassemble this commit's full write-path timeline.
        let collector = quest_obs::spans();
        let ctx = if collector.is_enabled() {
            collector.ctx(TraceKind::Commit)
        } else {
            TraceCtx::detached(TraceKind::Commit)
        };
        let commit_started = collector.start();
        let first_lsn = wal.next_seq();
        // Transient faults are retried in place under the backoff policy:
        // each turn first reconciles a poisoned writer (heal — see below),
        // then (re-)appends. `landed_report` is set once the batch is known
        // to be permanently in the log, and from then on the loop only ever
        // heals — re-appending would duplicate the records.
        let mut landed_report: Option<ApplyReport> = None;
        let mut attempt: u32 = 0;
        let backoff = |e: ReplicaError, attempt: &mut u32| -> Result<(), ReplicaError> {
            if e.is_transient() && *attempt < self.retry.retries {
                quest_fault::count_retry();
                self.clock.sleep(self.retry.delay(*attempt));
                *attempt += 1;
                Ok(())
            } else {
                Err(e)
            }
        };
        let (first_lsn, last_lsn) = loop {
            if wal.poisoned() {
                match wal.heal() {
                    Ok(()) => {
                        if landed_report.is_some() {
                            // The batch landed before a post-write fsync
                            // poison; the heal's successful fsync IS the
                            // durability barrier the append was missing, so
                            // the commit completes without re-appending.
                            break (first_lsn, first_lsn + batch.len() as u64 - 1);
                        }
                        // Healed a rollback-failure poison: the log is back
                        // at its pre-batch state. Fall through and append.
                    }
                    Err(e) => {
                        backoff(e.into(), &mut attempt)?;
                        continue;
                    }
                }
            }
            match wal.append_batch_in(batch, ctx) {
                Ok(range) => break range,
                Err(e) => {
                    // A *post-write* fsync failure (writer poisoned,
                    // next_seq advanced past the batch) leaves the records
                    // permanently in the log, where replicas may already be
                    // tailing them. Apply them here too so this primary
                    // stays consistent with its own log — whether or not
                    // the fault turns out to be retryable. Any other
                    // failure rolled the log back (or wrote nothing), so
                    // there is nothing to reconcile and the re-append
                    // reuses the same LSNs.
                    if wal.poisoned() && wal.next_seq() == first_lsn + batch.len() as u64 {
                        let report = self.engine.apply_in(batch, ctx)?;
                        self.last_lsn.store(wal.next_seq() - 1, Ordering::Release);
                        landed_report = Some(report);
                    }
                    // Non-retryable: the commit is NOT acknowledged — for a
                    // landed batch its durability is unknown — but commit
                    // failure is not rollback under write-ahead logging.
                    backoff(e.into(), &mut attempt)?;
                }
            }
        };
        let report = match landed_report {
            Some(report) => report,
            None => self.engine.apply_in(batch, ctx)?,
        };
        self.records_committed.add(batch.len() as u64);
        // Publish only after the apply: a client that reads LSN L off a
        // receipt (or off `last_lsn`) may immediately demand data at L
        // from this very primary.
        self.last_lsn.store(last_lsn, Ordering::Release);
        collector.record_with(
            ctx,
            "primary_commit",
            commit_started,
            [
                Some(("records", batch.len() as u64)),
                Some(("last_lsn", last_lsn)),
            ],
        );
        Ok(CommitReceipt {
            first_lsn,
            last_lsn,
            report,
        })
    }

    /// fsync the log: everything committed so far becomes durable.
    /// Transient faults (and a heal-able poisoned writer) are retried under
    /// the backoff policy.
    pub fn sync(&self) -> Result<(), ReplicaError> {
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        self.sync_wal(&mut wal)
    }

    /// Heal-then-fsync with retries, for use under the writer lock.
    fn sync_wal(&self, wal: &mut WalWriter) -> Result<(), ReplicaError> {
        let mut attempt: u32 = 0;
        loop {
            // heal() truncates any torn tail and fsyncs; on a healthy
            // writer it is a no-op, so the explicit sync below still runs.
            let result = if wal.poisoned() {
                wal.heal()
            } else {
                wal.sync()
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < self.retry.retries => {
                    quest_fault::count_retry();
                    self.clock.sleep(self.retry.delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Write a fresh snapshot of the current state at the current LSN
    /// (atomically replacing the previous one) and return that LSN. New
    /// replicas bootstrap from here and only stream the log suffix past it.
    ///
    /// Holds the writer lock, so the snapshot is slot-exact for its LSN: no
    /// commit can interleave between reading the LSN and the data.
    pub fn publish_snapshot(&self) -> Result<u64, ReplicaError> {
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        // The snapshot must never become durable ahead of the log it
        // watermarks: a crash in between would leave a snapshot covering
        // LSNs the log does not hold, and a resumed primary would re-issue
        // them. fsync the log first, whatever the SyncPolicy says.
        self.sync_wal(&mut wal)?;
        let lsn = self.last_lsn();
        let engine = self.engine.engine();
        let mut attempt: u32 = 0;
        loop {
            match write_snapshot(engine.wrapper().database(), &self.snapshot_path(), lsn) {
                Ok(()) => break,
                Err(e) if e.is_transient() && attempt < self.retry.retries => {
                    quest_fault::count_retry();
                    self.clock.sleep(self.retry.delay(attempt));
                    attempt += 1;
                }
                // A failed publish never harms bootstrap: the write-to-temp
                // then rename protocol leaves the previous snapshot intact.
                Err(e) => return Err(e.into()),
            }
        }
        drop(engine);
        drop(wal);
        Ok(lsn)
    }

    /// Highest LSN whose effect is applied and visible to searches.
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn.load(Ordering::Acquire)
    }

    /// Serve a search from the primary itself (always current).
    pub fn search(&self, raw_query: &str) -> Result<SearchOutcome, QuestError> {
        self.engine.search(raw_query)
    }

    /// The primary's cache-backed engine (for stats, feedback, or wiring a
    /// [`QueryService`](quest_serve::QueryService) over it).
    pub fn engine(&self) -> &Arc<CachedEngine<FullAccessWrapper>> {
        &self.engine
    }

    /// Directory holding the log and the published snapshot.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the write-ahead log replicas tail.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// Path of the latest published snapshot replicas bootstrap from.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{movie_batch, sample_db, temp_dir};
    use quest_core::QuestConfig;

    #[test]
    fn commit_assigns_contiguous_lsns_and_publishes_after_apply() {
        let dir = temp_dir("primary-lsn");
        let primary = Primary::open(&dir, sample_db(), QuestConfig::default()).unwrap();
        assert_eq!(primary.last_lsn(), 0);

        let receipt = primary.commit(&movie_batch(1)).unwrap();
        assert_eq!(receipt.first_lsn, 1);
        assert_eq!(receipt.last_lsn, 2);
        assert!(receipt.report.all_applied());
        assert_eq!(primary.last_lsn(), 2);

        let receipt = primary.commit(&movie_batch(2)).unwrap();
        assert_eq!((receipt.first_lsn, receipt.last_lsn), (3, 4));

        // Empty batch: empty LSN range, nothing changes.
        let receipt = primary.commit(&[]).unwrap();
        assert_eq!(receipt.first_lsn, 5);
        assert_eq!(receipt.last_lsn, 4);
        assert_eq!(primary.last_lsn(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_refuses_a_directory_with_history_but_reopen_resumes_it() {
        let dir = temp_dir("primary-reopen");
        {
            let primary = Primary::open(&dir, sample_db(), QuestConfig::default()).unwrap();
            primary.commit(&movie_batch(1)).unwrap();
            primary.sync().unwrap();
        }
        assert!(matches!(
            Primary::open(&dir, sample_db(), QuestConfig::default()),
            Err(ReplicaError::State(_))
        ));
        let primary =
            Primary::reopen(&dir, QuestConfig::default(), PrimaryOptions::default()).unwrap();
        assert_eq!(primary.last_lsn(), 2);
        let receipt = primary.commit(&movie_batch(2)).unwrap();
        assert_eq!(receipt.first_lsn, 3, "LSN sequence continues");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_log_that_lost_acknowledged_history_is_refused_everywhere() {
        // publish_snapshot syncs the log before the snapshot, so a log
        // ending below the snapshot watermark is rot/tampering. Resuming a
        // primary from it would re-issue covered LSNs; bootstrapping a
        // replica from it would mis-frame the stream. Both must refuse.
        let dir = temp_dir("primary-lost-history");
        let (wal_path, snap_path) = {
            let primary = Primary::open(&dir, sample_db(), QuestConfig::default()).unwrap();
            primary.commit(&movie_batch(1)).unwrap();
            primary.publish_snapshot().unwrap();
            (primary.wal_path(), primary.snapshot_path())
        };
        // Rot: the record lines vanish, the header survives.
        let text = std::fs::read_to_string(&wal_path).unwrap();
        let header: String = text.lines().take(1).map(|l| format!("{l}\n")).collect();
        std::fs::write(&wal_path, header).unwrap();

        let err =
            Primary::reopen(&dir, QuestConfig::default(), PrimaryOptions::default()).unwrap_err();
        assert!(matches!(err, ReplicaError::State(_)), "{err}");
        let err = crate::Replica::bootstrap(
            "r1",
            &snap_path,
            &wal_path,
            QuestConfig::default(),
            quest_serve::CacheConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ReplicaError::State(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn publish_snapshot_records_the_exact_lsn() {
        let dir = temp_dir("primary-snap");
        let primary = Primary::open(&dir, sample_db(), QuestConfig::default()).unwrap();
        primary.commit(&movie_batch(1)).unwrap();
        let lsn = primary.publish_snapshot().unwrap();
        assert_eq!(lsn, 2);
        let snap = quest_wal::read_snapshot(&primary.snapshot_path()).unwrap();
        assert_eq!(snap.last_seq, 2);
        assert_eq!(
            snap.db.total_rows(),
            primary.engine().engine().wrapper().database().total_rows()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
