//! [`Replica`]: a read-only serving node fed by the primary's log.
//!
//! A replica bootstraps from a published snapshot (slot-exact at some LSN
//! `S`), then tails the log with a positioned
//! [`LogReader`]: seek past `S` without decoding the
//! skipped prefix, then poll-and-apply batches through its own
//! [`CachedEngine`]. Applying uses the exact per-record apply-or-reject
//! path recovery uses, so a poison record the primary rejected is
//! re-rejected here — byte-for-byte convergence, not best-effort mirroring
//! (`tests/replica.rs` pins a replica at LSN `L` against a cold engine
//! built from the first `L` log records, bitwise).
//!
//! The replica's engine accepts **no feedback and no local mutations** —
//! its only writer is the log. That restriction is what makes its results
//! a pure function of (snapshot, LSN), and the API enforces it by simply
//! not exposing the mutating surface.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use quest_core::{FullAccessWrapper, Quest, QuestConfig, QuestError, SearchOutcome};
use quest_serve::{CacheConfig, CachedEngine, ServeStats};
use quest_wal::{read_snapshot, ChangeRecord, LogReader};

use crate::error::ReplicaError;
use crate::primary::Primary;

/// Bounded number of empty-but-pending polls [`Replica::sync_to`] tolerates
/// while an in-flight append finishes landing.
const SYNC_TO_RETRIES: usize = 1024;

/// Open a log reader positioned past the snapshot's watermark, refusing a
/// log that does not actually hold everything the watermark claims. The
/// primary syncs the log before publishing a snapshot, so a deficit here is
/// rot or a mismatched file pair — syncing from it would mis-frame the
/// stream (the log's sequence numbers restart below the watermark).
fn attach_reader(
    wal_path: &Path,
    snapshot: &quest_wal::Snapshot,
) -> Result<LogReader, ReplicaError> {
    let mut reader = LogReader::open(wal_path, snapshot.db.catalog())?;
    let reached = reader.seek(snapshot.last_seq)?;
    if reached < snapshot.last_seq {
        return Err(ReplicaError::State(format!(
            "log at {} ends at lsn {reached} but the snapshot covers lsn {}; \
             refusing to bootstrap from an inconsistent pair",
            wal_path.display(),
            snapshot.last_seq
        )));
    }
    Ok(reader)
}

/// What one [`Replica::sync`] round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Records applied this round.
    pub applied: usize,
    /// Records re-rejected this round (the primary rejected them too).
    pub rejected: usize,
    /// The replica's LSN after the round.
    pub lsn: u64,
    /// Whether bytes past the last complete record were seen (an append in
    /// flight on the primary; poll again to pick it up).
    pub pending: bool,
}

/// A read replica: snapshot-bootstrapped, log-fed, serving bit-identical
/// results for its LSN.
#[derive(Debug)]
pub struct Replica {
    name: String,
    engine: Arc<CachedEngine<FullAccessWrapper>>,
    /// The log tail. Held across poll **and** apply in [`Replica::sync`],
    /// so concurrent sync calls serialize and apply order equals log order.
    /// The applied LSN lives in the engine's watermark (one source of
    /// truth), published with `Release` after each apply and monotonic.
    reader: Mutex<LogReader>,
    /// Set when an apply failed after its records were consumed from the
    /// log: the replica can no longer converge and must be re-bootstrapped
    /// (see [`Replica::is_healthy`]).
    broken: AtomicBool,
    /// Searches currently executing here (the least-loaded routing signal).
    inflight: AtomicUsize,
    /// Apply-batch latency in the global registry.
    apply_ns: quest_obs::Histogram,
    /// This replica's lag gauge (`quest_replica_lag_lsns{replica=name}`),
    /// refreshed by every [`Replica::lag`] computation — windowed, so the
    /// `_min`/`_max` siblings expose the extremes lag reached between
    /// topology reports.
    lag_lsns: quest_obs::WindowedGauge,
    /// Records this replica consumed from the log and applied (or
    /// re-rejected) — the replication-amplification numerator.
    records_applied: quest_obs::Counter,
}

impl Replica {
    /// Bootstrap a replica from a snapshot file and the log it is a prefix
    /// of. `config` must be the primary's engine configuration — use
    /// [`Replica::from_primary`] where the primary is in reach, which
    /// derives it and cannot drift.
    pub fn bootstrap(
        name: &str,
        snapshot_path: &Path,
        wal_path: &Path,
        config: QuestConfig,
        caches: CacheConfig,
    ) -> Result<Replica, ReplicaError> {
        if let Some(fault) = quest_fault::fire(quest_fault::sites::REPLICA_BOOTSTRAP) {
            match fault.kind {
                quest_fault::FaultKind::SlowIo => fault.stall(),
                _ => return Err(quest_wal::WalError::Io(fault.io_error()).into()),
            }
        }
        let snapshot = read_snapshot(snapshot_path)?;
        let reader = attach_reader(wal_path, &snapshot)?;
        let engine = Quest::new(FullAccessWrapper::new(snapshot.db), config)?;
        Ok(Replica::assemble(
            name,
            engine,
            reader,
            snapshot.last_seq,
            caches,
        ))
    }

    /// Bootstrap from a primary's published snapshot and log, deriving the
    /// engine configuration from the primary itself.
    pub fn from_primary(name: &str, primary: &Primary) -> Result<Replica, ReplicaError> {
        if let Some(fault) = quest_fault::fire(quest_fault::sites::REPLICA_BOOTSTRAP) {
            match fault.kind {
                quest_fault::FaultKind::SlowIo => fault.stall(),
                _ => return Err(quest_wal::WalError::Io(fault.io_error()).into()),
            }
        }
        let snapshot = read_snapshot(&primary.snapshot_path())?;
        let reader = attach_reader(&primary.wal_path(), &snapshot)?;
        let engine = primary
            .engine()
            .engine()
            .sibling(FullAccessWrapper::new(snapshot.db))?;
        Ok(Replica::assemble(
            name,
            engine,
            reader,
            snapshot.last_seq,
            CacheConfig::default(),
        ))
    }

    fn assemble(
        name: &str,
        engine: Quest<FullAccessWrapper>,
        reader: LogReader,
        lsn: u64,
        caches: CacheConfig,
    ) -> Replica {
        let engine = Arc::new(CachedEngine::with_caches(engine, caches));
        engine.set_watermark(lsn);
        let registry = quest_obs::global();
        registry.describe(
            crate::names::APPLY,
            "Wall time of one non-empty apply batch on a replica, nanoseconds.",
        );
        registry.describe(crate::names::LAG, "Records behind the primary.");
        registry.describe(
            crate::names::RECORDS_APPLIED,
            "Records replicas consumed from the log and applied.",
        );
        Replica {
            engine,
            reader: Mutex::new(reader),
            broken: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            apply_ns: registry.histogram(crate::names::APPLY),
            lag_lsns: registry.windowed_gauge_with(crate::names::LAG, &[("replica", name)]),
            records_applied: registry.counter(crate::names::RECORDS_APPLIED),
            name: name.to_string(),
        }
    }

    /// This replica's name (how the router reports it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Highest LSN whose effect this replica serves (the engine's
    /// watermark — the single copy of this fact, so stats and routing can
    /// never disagree).
    pub fn applied_lsn(&self) -> u64 {
        self.engine.watermark()
    }

    /// Whether this replica can still converge. `false` after an apply
    /// failed mid-stream (its records were already consumed from the log):
    /// the replica keeps serving at its last good LSN, but the router
    /// stops selecting it and the fix is a re-bootstrap.
    pub fn is_healthy(&self) -> bool {
        !self.broken.load(Ordering::Acquire)
    }

    /// How far behind `primary_lsn` this replica is. Each computation
    /// refreshes the replica's lag gauge in the global registry.
    pub fn lag(&self, primary_lsn: u64) -> u64 {
        let lag = primary_lsn.saturating_sub(self.applied_lsn());
        self.lag_lsns.set(i64::try_from(lag).unwrap_or(i64::MAX));
        lag
    }

    /// Searches currently executing here.
    pub fn load(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// One replication round: poll the log tail and apply what arrived.
    /// Concurrent calls serialize; each round's batch is applied in log
    /// order through the same per-record apply-or-reject path recovery
    /// uses.
    pub fn sync(&self) -> Result<SyncReport, ReplicaError> {
        let mut reader = self.reader.lock().unwrap_or_else(PoisonError::into_inner);
        if self.broken.load(Ordering::Acquire) {
            return Err(ReplicaError::State(format!(
                "replica {} lost records to a failed apply; re-bootstrap it",
                self.name
            )));
        }
        // One trace context per sync round: the tail and apply spans — and
        // the engine's own apply spans underneath — share it.
        let collector = quest_obs::spans();
        let ctx = if collector.is_enabled() {
            collector.ctx(quest_obs::TraceKind::Replica)
        } else {
            quest_obs::TraceCtx::detached(quest_obs::TraceKind::Replica)
        };
        let tail_started = collector.start();
        let poll = reader.poll()?;
        collector.record_with(
            ctx,
            "replica_tail",
            tail_started,
            [
                Some(("records", poll.records.len() as u64)),
                Some(("pending", poll.pending)),
            ],
        );
        let Some(&(last_lsn, _)) = poll.records.last() else {
            return Ok(SyncReport {
                applied: 0,
                rejected: 0,
                lsn: self.applied_lsn(),
                pending: poll.pending > 0,
            });
        };
        let changes: Vec<ChangeRecord> = poll.records.into_iter().map(|(_, r)| r).collect();
        if let Some(fault) = quest_fault::fire(quest_fault::sites::REPLICA_APPLY) {
            if fault.kind == quest_fault::FaultKind::SlowIo {
                fault.stall();
            } else {
                // The poll above consumed these records; failing now loses
                // them — exactly the consumed-but-not-applied shape a real
                // apply failure has, so the replica breaks the same way.
                self.broken.store(true, Ordering::Release);
                return Err(quest_wal::WalError::Io(fault.io_error()).into());
            }
        }
        // The poll above consumed these records: an apply failure here (a
        // path `CachedEngine::apply` documents as unreachable for
        // ChangeRecords) would lose them, so it marks the replica broken —
        // loudly unconvergeable — instead of silently serving behind.
        let replica_apply_started = collector.start();
        let apply_start = std::time::Instant::now();
        let report = self.engine.apply_in(&changes, ctx).inspect_err(|_| {
            self.broken.store(true, Ordering::Release);
        })?;
        self.apply_ns
            .record(quest_obs::duration_ns(apply_start.elapsed()));
        self.records_applied.add(changes.len() as u64);
        // Publish after the apply so a router that observes LSN L here can
        // immediately serve data at L. Rejected records advance the LSN
        // too: the LSN is a log position, not a success count.
        self.engine.set_watermark(last_lsn);
        collector.record_with(
            ctx,
            "replica_apply",
            replica_apply_started,
            [
                Some(("records", changes.len() as u64)),
                Some(("lsn", last_lsn)),
            ],
        );
        Ok(SyncReport {
            applied: report.applied,
            rejected: report.rejected.len(),
            lsn: last_lsn,
            pending: poll.pending > 0,
        })
    }

    /// Sync until this replica reaches `lsn`. Fails with
    /// [`ReplicaError::Lagging`] if the log simply does not hold `lsn`
    /// (tolerating a bounded window for an append still in flight).
    pub fn sync_to(&self, lsn: u64) -> Result<SyncReport, ReplicaError> {
        let mut report = SyncReport {
            applied: 0,
            rejected: 0,
            lsn: self.applied_lsn(),
            pending: false,
        };
        if report.lsn >= lsn {
            return Ok(report);
        }
        for _ in 0..SYNC_TO_RETRIES {
            report = self.sync()?;
            if report.lsn >= lsn {
                return Ok(report);
            }
            if !report.pending && report.applied == 0 && report.rejected == 0 {
                // End of log, nothing in flight: the records are not there.
                break;
            }
            std::thread::yield_now();
        }
        Err(ReplicaError::Lagging {
            required: lsn,
            reached: report.lsn,
        })
    }

    /// Serve a search at this replica's current LSN.
    pub fn search(&self, raw_query: &str) -> Result<SearchOutcome, QuestError> {
        self.inflight.fetch_add(1, Ordering::AcqRel);
        let result = self.engine.search(raw_query);
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        result
    }

    /// Serving counters; [`ServeStats::watermark`] carries the applied LSN.
    pub fn stats(&self) -> ServeStats {
        self.engine.stats()
    }

    /// The replica's engine, read-only uses only (stats, direct searches,
    /// wiring a [`QueryService`](quest_serve::QueryService)). The mutating
    /// surface stays private: the log is this engine's only writer.
    pub fn engine(&self) -> &Arc<CachedEngine<FullAccessWrapper>> {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primary::Primary;
    use crate::testutil::{movie_batch, sample_db, temp_dir};
    use quest_core::QuestConfig;

    #[test]
    fn replica_bootstraps_seeks_and_follows() {
        let dir = temp_dir("replica-follow");
        let primary = Primary::open(&dir, sample_db(), QuestConfig::default()).unwrap();
        primary.commit(&movie_batch(1)).unwrap();

        let replica = Replica::from_primary("r1", &primary).unwrap();
        assert_eq!(
            replica.applied_lsn(),
            0,
            "bootstrapped from the LSN-0 snapshot"
        );
        let report = replica.sync().unwrap();
        assert_eq!((report.applied, report.lsn), (2, 2));
        assert_eq!(replica.lag(primary.last_lsn()), 0);

        // New commits stream incrementally.
        primary.commit(&movie_batch(2)).unwrap();
        let report = replica.sync().unwrap();
        assert_eq!((report.applied, report.lsn), (2, 4));
        assert_eq!(replica.stats().watermark, 4);

        // A replica bootstrapped from a *newer* snapshot starts at its LSN
        // and replays nothing that the snapshot already contains.
        primary.publish_snapshot().unwrap();
        let fresh = Replica::from_primary("r2", &primary).unwrap();
        assert_eq!(fresh.applied_lsn(), 4);
        assert_eq!(fresh.sync().unwrap().applied, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_to_reaches_or_reports_lagging() {
        let dir = temp_dir("replica-syncto");
        let primary = Primary::open(&dir, sample_db(), QuestConfig::default()).unwrap();
        let replica = Replica::from_primary("r1", &primary).unwrap();
        let receipt = primary.commit(&movie_batch(1)).unwrap();
        let report = replica.sync_to(receipt.last_lsn).unwrap();
        assert_eq!(report.lsn, receipt.last_lsn);
        // An LSN the log does not hold fails loudly instead of spinning.
        let err = replica.sync_to(99).unwrap_err();
        assert!(matches!(
            err,
            ReplicaError::Lagging {
                required: 99,
                reached: 2
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
