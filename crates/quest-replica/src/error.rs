//! Errors raised by the replication layer.

use std::fmt;

use quest_core::QuestError;
use quest_serve::ServeError;
use quest_wal::WalError;

/// What can go wrong while shipping the log, applying it, or routing a
/// query against a consistency bound.
#[derive(Debug)]
pub enum ReplicaError {
    /// Log or snapshot I/O, corruption, or schema mismatch.
    Wal(WalError),
    /// The serving layer failed to apply a record batch or re-sync.
    Serve(ServeError),
    /// The engine rejected or failed a search.
    Engine(QuestError),
    /// A consistency bound could not be met: the target LSN is beyond what
    /// the log (or the primary itself) holds.
    Lagging {
        /// The LSN the caller demanded.
        required: u64,
        /// The LSN actually reached.
        reached: u64,
    },
    /// The topology was asked to do something its state forbids (e.g.
    /// opening a fresh primary over a directory that already has history).
    State(String),
}

impl ReplicaError {
    /// Whether a retry can be expected to succeed. Only interrupted-style
    /// WAL I/O qualifies ([`WalError::is_transient`]); engine rejections,
    /// consistency misses, and state errors are deterministic.
    pub fn is_transient(&self) -> bool {
        match self {
            ReplicaError::Wal(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Wal(e) => write!(f, "wal: {e}"),
            ReplicaError::Serve(e) => write!(f, "serve: {e}"),
            ReplicaError::Engine(e) => write!(f, "engine: {e}"),
            ReplicaError::Lagging { required, reached } => {
                write!(f, "lsn {required} required but only {reached} reached")
            }
            ReplicaError::State(msg) => write!(f, "invalid topology state: {msg}"),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicaError::Wal(e) => Some(e),
            ReplicaError::Serve(e) => Some(e),
            ReplicaError::Engine(e) => Some(e),
            ReplicaError::Lagging { .. } | ReplicaError::State(_) => None,
        }
    }
}

impl From<WalError> for ReplicaError {
    fn from(e: WalError) -> Self {
        ReplicaError::Wal(e)
    }
}

impl From<ServeError> for ReplicaError {
    fn from(e: ServeError) -> Self {
        ReplicaError::Serve(e)
    }
}

impl From<QuestError> for ReplicaError {
    fn from(e: QuestError) -> Self {
        ReplicaError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: ReplicaError = QuestError::EmptyQuery.into();
        assert!(e.to_string().contains("engine"));
        assert!(e.source().is_some());
        let e = ReplicaError::Lagging {
            required: 9,
            reached: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.source().is_none());
        let e = ReplicaError::State("already has history".into());
        assert!(e.to_string().contains("history"));
    }
}
