//! The append-only on-disk log.
//!
//! Text framing, one record per line:
//!
//! ```text
//! QUESTWAL<TAB>1<TAB><schema fingerprint, hex>          (header)
//! <seq><TAB><fnv64 of body, hex><TAB><body>             (records)
//! ```
//!
//! Sequence numbers start at 1 and increase strictly; the checksum covers
//! the record body, so a torn write (a crash mid-append) is detected. Any
//! invalid *final* line — unterminated or not — ends the log: filesystems
//! flush pages out of order, so an un-synced append interrupted by a crash
//! can surface either way, and refusing to load would hold every durable
//! record hostage to one unacknowledged tail. The dropped tail is always
//! reported ([`LogRecovery::torn_tail`]), so a tail that was in fact
//! synced-then-rotted is surfaced, not silently swallowed. A bad line
//! anywhere *else* cannot be a torn append and refuses to load.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

use quest_obs::{TraceCtx, TraceKind};
use relstore::{Catalog, Database};

use crate::codec::{fnv64, schema_fingerprint};
use crate::error::WalError;
use crate::record::ChangeRecord;

/// Magic first field of a log header.
const MAGIC: &str = "QUESTWAL";
/// Format version this code writes and reads.
const VERSION: &str = "1";

/// The WAL's metric names in the [`quest_obs::global`] registry.
pub mod names {
    /// Wall time of one (possibly batched) append (histogram, nanoseconds).
    pub const APPEND: &str = "quest_wal_append_ns";
    /// Wall time of one fsync barrier (histogram, nanoseconds).
    pub const FSYNC: &str = "quest_wal_fsync_ns";
    /// Wall time of one full recovery — snapshot load plus log replay
    /// (histogram, nanoseconds).
    pub const RECOVER: &str = "quest_wal_recover_ns";
    /// Torn (dropped) log tails observed by scans and opens (counter).
    pub const TORN_TAIL: &str = "quest_wal_torn_tail_total";
    /// Writers that poisoned themselves after an unrecoverable I/O failure
    /// (counter).
    pub const POISONED: &str = "quest_wal_poisoned_total";
    /// Records re-rejected during replay (counter).
    pub const REPLAY_REJECTED: &str = "quest_wal_replay_rejected_total";
    /// Logical payload bytes appended — encoded record bodies only, before
    /// framing (counter). `PHYSICAL_BYTES / LOGICAL_BYTES` is the log's
    /// write amplification.
    pub const LOGICAL_BYTES: &str = "quest_wal_logical_bytes_total";
    /// Physical bytes appended — full framed lines including sequence
    /// numbers and checksums (counter).
    pub const PHYSICAL_BYTES: &str = "quest_wal_physical_bytes_total";
}

/// Registry handles for the writer's hot paths, resolved once at open so an
/// append touches only its own relaxed atomics.
#[derive(Debug)]
struct WalObs {
    append: quest_obs::Histogram,
    fsync: quest_obs::Histogram,
    poisoned: quest_obs::Counter,
    logical_bytes: quest_obs::Counter,
    physical_bytes: quest_obs::Counter,
}

impl WalObs {
    fn new() -> WalObs {
        let registry = quest_obs::global();
        registry.describe(names::APPEND, "Wall time of one WAL append, ns.");
        registry.describe(names::FSYNC, "Wall time of one WAL fsync barrier, ns.");
        registry.describe(
            names::LOGICAL_BYTES,
            "Logical payload bytes appended (record bodies, pre-framing).",
        );
        registry.describe(
            names::PHYSICAL_BYTES,
            "Physical bytes appended (framed lines with seq and checksum).",
        );
        WalObs {
            append: registry.histogram(names::APPEND),
            fsync: registry.histogram(names::FSYNC),
            poisoned: registry.counter(names::POISONED),
            logical_bytes: registry.counter(names::LOGICAL_BYTES),
            physical_bytes: registry.counter(names::PHYSICAL_BYTES),
        }
    }
}

/// Count one observed torn tail in the global registry (cold path: scans
/// and opens only).
fn count_torn_tail() {
    quest_obs::global().counter(names::TORN_TAIL).inc();
}

/// When the log fsyncs on its own, independent of explicit
/// [`WalWriter::sync`] calls.
///
/// The default is [`SyncPolicy::Never`]: appends are flushed to the OS but
/// the durability point is wherever the caller puts its `sync()` — the
/// fastest mode, and the right one for tests and for callers that batch
/// their own barriers. `EveryN(n)` bounds data loss to `n` acknowledged
/// appends; `Always` is one fsync per append, the classic group-commit-free
/// worst case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// No automatic fsync; the caller owns the durability points.
    #[default]
    Never,
    /// fsync once every `n` appends (`EveryN(0)` behaves like `Never`).
    EveryN(u32),
    /// fsync after every append.
    Always,
}

/// Append handle to a write-ahead log bound to one schema.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    fingerprint: u64,
    next_seq: u64,
    /// Byte length of the last known-good (fully appended) state; a failed
    /// append truncates back to it so no torn line is left mid-file.
    len: u64,
    /// Set when a failed append could not be rolled back: the file may end
    /// in a torn line, so further appends would corrupt it mid-file.
    poisoned: bool,
    /// Automatic-fsync policy (see [`SyncPolicy`]).
    policy: SyncPolicy,
    /// Appends since the last fsync (explicit or automatic); drives
    /// [`SyncPolicy::EveryN`].
    unsynced: u32,
    /// Global-registry handles (append/fsync latency, poison events).
    obs: WalObs,
}

impl WalWriter {
    /// Open (or create) the log at `path` for appending, bound to
    /// `catalog`'s schema.
    ///
    /// An existing log must carry the same schema fingerprint; its records
    /// are scanned to continue the sequence, and a torn tail from an
    /// earlier crash is truncated away before new appends.
    pub fn open(path: &Path, catalog: &Catalog) -> Result<WalWriter, WalError> {
        WalWriter::open_with(path, catalog, SyncPolicy::default())
    }

    /// [`WalWriter::open`] with an explicit automatic-fsync policy.
    pub fn open_with(
        path: &Path,
        catalog: &Catalog,
        policy: SyncPolicy,
    ) -> Result<WalWriter, WalError> {
        // Cold constructor path: arm any QUEST_FAULT_PLAN schedule before
        // the first seam can fire.
        quest_fault::init_from_env();
        let fingerprint = schema_fingerprint(catalog);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        // A file without a single complete line never got past writing its
        // header (a crash during creation): nothing is lost by starting
        // over. This also covers the empty file. Without this branch, a
        // torn-but-parseable header would be truncated to zero bytes below
        // and records would then be appended to a headerless file.
        if !bytes.contains(&b'\n') {
            if !bytes.is_empty() {
                // A partial header is a creation-time torn tail.
                count_torn_tail();
            }
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let header = format!("{MAGIC}\t{VERSION}\t{fingerprint:016x}\n");
            file.write_all(header.as_bytes())?;
            return Ok(WalWriter {
                file,
                fingerprint,
                next_seq: 1,
                len: header.len() as u64,
                poisoned: false,
                policy,
                unsynced: 0,
                obs: WalObs::new(),
            });
        }
        let scan = scan_log(&bytes, fingerprint)?;
        if scan.torn_tail {
            count_torn_tail();
        }
        // Drop a torn tail so the next append starts on a clean line.
        if scan.valid_len < bytes.len() {
            file.set_len(scan.valid_len as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            fingerprint,
            next_seq: scan.last_seq + 1,
            len: scan.valid_len as u64,
            poisoned: false,
            policy,
            unsynced: 0,
            obs: WalObs::new(),
        })
    }

    /// The schema fingerprint this log is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The automatic-fsync policy in force.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Whether the writer refuses further appends after an unrecoverable
    /// I/O failure. When set by a *post-write* fsync failure, the batch
    /// that triggered it is still fully in the log ([`WalWriter::next_seq`]
    /// has advanced past it) — callers that mirror the log into live state
    /// can use that to stay consistent with what tailing readers see.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Change the automatic-fsync policy; takes effect from the next append.
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.policy = policy;
    }

    /// Append one change record, returning its sequence number. The line is
    /// flushed to the OS; call [`WalWriter::sync`] to force it to disk.
    ///
    /// A failed write (e.g. disk full) is rolled back by truncating to the
    /// last known-good length, so the file never carries a torn line
    /// *mid-file* (which would be unrecoverable corruption, unlike a torn
    /// tail). If even the rollback fails, the writer poisons itself and
    /// refuses further appends; the log on disk is still readable up to
    /// the torn tail.
    pub fn append(&mut self, record: &ChangeRecord) -> Result<u64, WalError> {
        self.append_batch(std::slice::from_ref(record))
            .map(|(first, _)| first)
    }

    /// Append a batch of records **all-or-nothing**, returning the
    /// sequence numbers of the first and last (`(next, next - 1)` — an
    /// empty range — for an empty batch).
    ///
    /// The batch is written as a single `write` to the OS, and a failed
    /// write is rolled back by truncating to the pre-batch length, so a
    /// live process never continues past a log holding only a prefix of a
    /// batch it thinks failed — the failure mode that would silently
    /// diverge a primary from the replicas tailing its log. (A *crash*
    /// mid-batch can still persist a prefix of complete lines; that is the
    /// normal torn-tail story, and recovery/replicas replay exactly what
    /// the log holds.)
    pub fn append_batch(&mut self, records: &[ChangeRecord]) -> Result<(u64, u64), WalError> {
        self.append_batch_in(records, TraceCtx::detached(TraceKind::Commit))
    }

    /// [`WalWriter::append_batch`] under an explicit trace context: the
    /// `wal_append` (and any policy-driven `wal_fsync`) spans carry the
    /// caller's commit id, so the whole `Primary::commit` chain reassembles
    /// into one tree in the Chrome trace export.
    pub fn append_batch_in(
        &mut self,
        records: &[ChangeRecord],
        ctx: TraceCtx,
    ) -> Result<(u64, u64), WalError> {
        if self.poisoned {
            return Err(WalError::Io(std::io::Error::other(
                "writer poisoned by an earlier failed append; reopen the log",
            )));
        }
        let first = self.next_seq;
        if records.is_empty() {
            return Ok((first, first - 1));
        }
        let span = quest_obs::spans().start();
        let start = Instant::now();
        let mut buf = String::new();
        let mut logical = 0u64;
        for (i, record) in records.iter().enumerate() {
            let seq = first + i as u64;
            let body = record.encode();
            logical += body.len() as u64;
            buf.push_str(&format!("{seq}\t{:016x}\t{body}\n", fnv64(body.as_bytes())));
        }
        if let Some(fault) = quest_fault::fire(quest_fault::sites::WAL_APPEND) {
            match fault.kind {
                quest_fault::FaultKind::SlowIo => fault.stall(),
                quest_fault::FaultKind::TornWrite => {
                    // Half the framed batch reaches the file, then the write
                    // errors. Take the real failed-append path: roll back to
                    // the last known-good length, poisoning if that fails.
                    let torn = &buf.as_bytes()[..buf.len() / 2];
                    let _ = self.file.write_all(torn);
                    if self.file.set_len(self.len).is_err()
                        || self.file.seek(SeekFrom::End(0)).is_err()
                    {
                        self.poison();
                    }
                    return Err(WalError::Io(fault.io_error()));
                }
                _ => return Err(WalError::Io(fault.io_error())),
            }
        }
        if let Err(e) = self.file.write_all(buf.as_bytes()) {
            if self.file.set_len(self.len).is_err() || self.file.seek(SeekFrom::End(0)).is_err() {
                self.poison();
            }
            return Err(WalError::Io(e));
        }
        self.len += buf.len() as u64;
        self.next_seq += records.len() as u64;
        match self.policy {
            SyncPolicy::Always => self.sync_or_poison(ctx)?,
            SyncPolicy::EveryN(n) => {
                self.unsynced += records.len() as u32;
                if n > 0 && self.unsynced >= n {
                    self.sync_or_poison(ctx)?;
                }
            }
            SyncPolicy::Never => {}
        }
        self.obs
            .append
            .record(quest_obs::duration_ns(start.elapsed()));
        self.obs.logical_bytes.add(logical);
        self.obs.physical_bytes.add(buf.len() as u64);
        quest_obs::spans().record_with(
            ctx,
            "wal_append",
            span,
            [
                Some(("records", records.len() as u64)),
                Some(("bytes", buf.len() as u64)),
            ],
        );
        Ok((first, self.next_seq - 1))
    }

    /// Refuse further appends and count the event.
    fn poison(&mut self) {
        self.poisoned = true;
        self.obs.poisoned.inc();
    }

    /// Policy-driven durability barrier inside an append. At this point the
    /// batch is already written: a failed fsync leaves the on-disk state
    /// unknown (the bytes may or may not survive a crash), so the writer
    /// poisons itself rather than hand back an error the caller would read
    /// as "batch not written" while tailing readers may already be applying
    /// it. Recovery: reopen the log; the scan re-establishes the truth.
    fn sync_or_poison(&mut self, ctx: TraceCtx) -> Result<(), WalError> {
        if let Err(e) = self.sync_in(ctx) {
            self.poison();
            return Err(e);
        }
        Ok(())
    }

    /// fsync the log file (durability point). Resets the
    /// [`SyncPolicy::EveryN`] append counter.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.sync_in(TraceCtx::detached(TraceKind::Commit))
    }

    /// [`WalWriter::sync`] under an explicit trace context (the
    /// `wal_fsync` span carries the caller's commit id).
    pub fn sync_in(&mut self, ctx: TraceCtx) -> Result<(), WalError> {
        let span = quest_obs::spans().start();
        let start = Instant::now();
        if let Some(fault) = quest_fault::fire(quest_fault::sites::WAL_FSYNC) {
            match fault.kind {
                quest_fault::FaultKind::SlowIo => fault.stall(),
                _ => return Err(WalError::Io(fault.io_error())),
            }
        }
        self.file.sync_data()?;
        self.obs
            .fsync
            .record(quest_obs::duration_ns(start.elapsed()));
        self.unsynced = 0;
        quest_obs::spans().record(ctx, "wal_fsync", span);
        Ok(())
    }

    /// Attempt to reconcile a poisoned writer in place instead of forcing a
    /// process restart.
    ///
    /// Poison means one of two things, and the same repair covers both:
    /// truncate to the last known-good length `len`, restore the append
    /// position, and prove the file healthy with an fsync.
    ///
    /// * **Rollback failure** — a failed append could not truncate its torn
    ///   line, so `len` excludes the batch; the `set_len` removes the torn
    ///   bytes now.
    /// * **Post-write fsync failure** — the batch is fully in the log and
    ///   `len` includes it, so the `set_len` is a no-op and the successful
    ///   fsync here *is* the durability barrier the append was missing.
    ///
    /// Only a fully successful sequence clears the poison; any failure
    /// leaves the writer poisoned and returns the error, so callers can
    /// retry transient faults under a backoff policy. A no-op on healthy
    /// writers.
    pub fn heal(&mut self) -> Result<(), WalError> {
        if !self.poisoned {
            return Ok(());
        }
        self.file.set_len(self.len)?;
        self.file.seek(SeekFrom::End(0))?;
        self.sync_in(TraceCtx::detached(TraceKind::Commit))?;
        self.poisoned = false;
        quest_fault::count_heal("wal");
        Ok(())
    }
}

/// Outcome of reading a log file.
#[derive(Debug)]
pub struct LogRecovery {
    /// Parsed records with their sequence numbers, in log order.
    pub records: Vec<(u64, ChangeRecord)>,
    /// Whether an invalid final line was dropped — a torn (half-written)
    /// append, or a final record whose checksum failed. If the tail was
    /// knowingly synced before the crash, this flag is the data-loss
    /// signal: the log itself cannot distinguish an unacknowledged torn
    /// append from acknowledged-then-rotted bytes.
    pub torn_tail: bool,
}

/// Internal scan result shared by reader and writer-open.
struct LogScan {
    records: Vec<(u64, ChangeRecord)>,
    last_seq: u64,
    /// Byte length of the valid prefix (everything before a torn tail).
    valid_len: usize,
    torn_tail: bool,
}

/// Read and verify a whole log against the catalog fingerprint `expected`.
/// A torn final line — including a header torn during log creation, i.e. a
/// file with no complete line at all — is tolerated (reported via
/// [`LogRecovery::torn_tail`]); corruption anywhere else is an error.
pub fn read_log(path: &Path, catalog: &Catalog) -> Result<LogRecovery, WalError> {
    let bytes = std::fs::read(path)?;
    let scan = scan_log(&bytes, schema_fingerprint(catalog))?;
    if scan.torn_tail {
        count_torn_tail();
    }
    Ok(LogRecovery {
        records: scan.records,
        torn_tail: scan.torn_tail,
    })
}

fn scan_log(bytes: &[u8], expected_fp: u64) -> Result<LogScan, WalError> {
    let corrupt = |line: usize, message: String| WalError::Corrupt { line, message };
    // A file without a single complete line is a crash during creation
    // (the header write itself was torn) — zero records were ever logged,
    // so recovery legitimately proceeds with an empty log, mirroring what
    // `WalWriter::open` does when it reinitializes such a file.
    let Some(cut) = bytes.iter().rposition(|&b| b == b'\n').map(|i| i + 1) else {
        return Ok(LogScan {
            records: Vec::new(),
            last_seq: 0,
            valid_len: 0,
            torn_tail: !bytes.is_empty(),
        });
    };
    // Everything after the last newline is a torn append; its bytes may not
    // even decode (a crash can split a multi-byte character mid-write), so
    // it is dropped and reported without ever being interpreted. The region
    // of complete lines must decode: it was written as UTF-8, so a decode
    // failure there is rot, not tearing.
    let text = std::str::from_utf8(&bytes[..cut]).map_err(|e| {
        corrupt(
            0,
            format!("log is not valid UTF-8 at byte {}", e.valid_up_to()),
        )
    })?;
    let mut torn_tail = cut < bytes.len();
    // Split keeping track of byte offsets so a torn tail can be truncated.
    let mut header_seen = false;
    let mut records = Vec::new();
    let mut last_seq = 0u64;
    let mut valid_len = 0usize;
    let mut offset = 0usize;
    let mut lines = text.split_inclusive('\n').enumerate().peekable();
    while let Some((i, raw)) = lines.next() {
        let lineno = i + 1;
        let is_last = lines.peek().is_none();
        let complete = raw.ends_with('\n');
        let line = raw.strip_suffix('\n').unwrap_or(raw);
        let parsed: Result<(), String> = if !header_seen {
            parse_header(line, expected_fp).map_err(|e| {
                // Header schema mismatch is never a torn write: fail loud.
                if let WalError::SchemaMismatch { .. } = e {
                    return e;
                }
                corrupt(lineno, e.to_string())
            })?;
            header_seen = true;
            Ok(())
        } else {
            // Sequence regression counts as an invalid record: the seq
            // field sits outside the body checksum, so tail rot can damage
            // it alone — on the final line that must degrade to a dropped
            // tail (below), not a fatal error.
            parse_record(line).and_then(|(seq, rec)| {
                if seq <= last_seq {
                    return Err(format!("sequence {seq} not after {last_seq}"));
                }
                records.push((seq, rec));
                Ok(())
            })
        };
        match parsed {
            Ok(()) if complete => {
                if let Some(&(seq, _)) = records.last() {
                    last_seq = seq;
                }
                offset += raw.len();
                valid_len = offset;
            }
            // Any invalid final line ends the log. A torn append usually
            // lacks the trailing newline, but out-of-order page flush can
            // persist the newline without the bytes before it, so the
            // newline proves nothing; only *position* does — a bad line
            // mid-file cannot be a torn append and is fatal below. An
            // unterminated line that happens to parse (checksum collision
            // on a prefix) is dropped too.
            Ok(()) | Err(_) if is_last && header_seen => {
                if matches!(parsed, Ok(())) {
                    records.pop();
                }
                torn_tail = true;
            }
            Err(e) => return Err(corrupt(lineno, e)),
            Ok(()) => unreachable!("incomplete non-last line"),
        }
    }
    if !header_seen {
        return Err(corrupt(1, "missing header".into()));
    }
    Ok(LogScan {
        records,
        last_seq,
        valid_len,
        torn_tail,
    })
}

/// Parse and verify the header line.
pub(crate) fn parse_header(line: &str, expected_fp: u64) -> Result<(), WalError> {
    let mut fields = line.split('\t');
    let magic = fields.next().unwrap_or_default();
    let version = fields.next().unwrap_or_default();
    let fp = fields.next().unwrap_or_default();
    if magic != MAGIC || version != VERSION {
        return Err(WalError::Corrupt {
            line: 1,
            message: format!("bad header `{line}`"),
        });
    }
    let found = u64::from_str_radix(fp, 16).map_err(|_| WalError::Corrupt {
        line: 1,
        message: format!("bad fingerprint `{fp}`"),
    })?;
    if found != expected_fp {
        return Err(WalError::SchemaMismatch {
            expected: expected_fp,
            found,
        });
    }
    Ok(())
}

/// Parse one record line: `seq \t checksum \t body`.
pub(crate) fn parse_record(line: &str) -> Result<(u64, ChangeRecord), String> {
    let mut parts = line.splitn(3, '\t');
    let seq = parts
        .next()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or("bad sequence field")?;
    let crc = parts
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("bad checksum field")?;
    let body = parts.next().ok_or("missing body")?;
    if fnv64(body.as_bytes()) != crc {
        return Err(format!("checksum mismatch on record {seq}"));
    }
    let record = ChangeRecord::decode(body)?;
    Ok((seq, record))
}

/// Outcome of [`replay`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records applied.
    pub applied: usize,
    /// Records the store rejected — deterministically, exactly as the live
    /// system rejected them when they were first logged (see below).
    pub rejected: usize,
}

/// Apply records (as returned by [`read_log`]) with sequence numbers
/// strictly greater than `after_seq`, in order.
///
/// A record the store rejects (constraint violation) is **skipped and
/// counted**, not treated as an error: under the write-ahead protocol
/// records are logged before they are applied, so the log legitimately
/// contains records the live system rejected. A rejection is a pure
/// function of the database state at that log position, and replay visits
/// the same states in the same order, so it re-rejects exactly the same
/// records and converges on the state the live system held.
///
/// Statistics refresh is deferred across the whole replay (one per-table
/// recompute at the end instead of one per record); the final state is
/// bit-identical either way.
pub fn replay(
    db: &mut Database,
    records: &[(u64, ChangeRecord)],
    after_seq: u64,
) -> Result<ReplayReport, WalError> {
    let report = db.with_stats_deferred(|db| {
        let mut report = ReplayReport::default();
        for (seq, record) in records {
            if *seq <= after_seq {
                continue;
            }
            match record.apply(db) {
                Ok(_) => report.applied += 1,
                Err(_) => report.rejected += 1,
            }
        }
        report
    });
    if report.rejected > 0 {
        quest_obs::global()
            .counter(names::REPLAY_REJECTED)
            .add(report.rejected as u64);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::DataType;
    use std::path::PathBuf;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quest-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.wal", std::process::id()))
    }

    fn ins(id: i64) -> ChangeRecord {
        ChangeRecord::Insert {
            table: "t".into(),
            row: vec![id.into(), format!("row {id}").into()],
        }
    }

    #[test]
    fn append_read_round_trip() {
        let path = temp_path("roundtrip");
        let c = catalog();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            assert_eq!(w.append(&ins(1)).unwrap(), 1);
            assert_eq!(w.append(&ins(2)).unwrap(), 2);
            w.sync().unwrap();
        }
        // Reopen continues the sequence.
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            assert_eq!(w.next_seq(), 3);
            assert_eq!(w.append(&ins(3)).unwrap(), 3);
        }
        let log = read_log(&path, &c).unwrap();
        assert!(!log.torn_tail);
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.records[2], (3, ins(3)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_policies_apply_and_reset() {
        // fsync effects are invisible to a test, but every policy path must
        // append successfully, keep counting, and survive reopen.
        let path = temp_path("syncpolicy");
        let c = catalog();
        {
            let mut w = WalWriter::open_with(&path, &c, SyncPolicy::Always).unwrap();
            assert_eq!(w.sync_policy(), SyncPolicy::Always);
            w.append(&ins(1)).unwrap();
            w.set_sync_policy(SyncPolicy::EveryN(2));
            w.append(&ins(2)).unwrap();
            w.append(&ins(3)).unwrap(); // second unsynced append: auto-syncs
            w.append(&ins(4)).unwrap();
            w.sync().unwrap(); // manual sync resets the EveryN counter
            w.set_sync_policy(SyncPolicy::EveryN(0)); // behaves like Never
            w.append(&ins(5)).unwrap();
            w.set_sync_policy(SyncPolicy::Never);
            w.append(&ins(6)).unwrap();
        }
        let log = read_log(&path, &c).unwrap();
        assert_eq!(log.records.len(), 6);
        assert!(!log.torn_tail);
        // The default stays the fast path.
        let w = WalWriter::open(&path, &c).unwrap();
        assert_eq!(w.sync_policy(), SyncPolicy::Never);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = temp_path("torn");
        let c = catalog();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            w.append(&ins(1)).unwrap();
            w.append(&ins(2)).unwrap();
        }
        // Simulate a crash mid-append: a half-written line with no newline.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"3\t00ff").unwrap();
        }
        let log = read_log(&path, &c).unwrap();
        assert!(log.torn_tail);
        assert_eq!(log.records.len(), 2);
        // Reopening for append truncates the torn tail and resumes at 3.
        let mut w = WalWriter::open(&path, &c).unwrap();
        assert_eq!(w.next_seq(), 3);
        w.append(&ins(3)).unwrap();
        drop(w);
        let log = read_log(&path, &c).unwrap();
        assert!(!log.torn_tail);
        assert_eq!(log.records.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_header_reinitializes_the_log() {
        // A crash during log *creation* can leave a partial header with no
        // newline; nothing was ever appended, so open() starts over with a
        // fresh header instead of leaving a headerless (or bricked) file.
        let path = temp_path("torn-header");
        let c = catalog();
        for partial in ["QUESTW", "QUESTWAL\t1\t0123456789abcdef"] {
            std::fs::write(&path, partial).unwrap();
            // The read path tolerates it too (recover() must not brick on
            // a log whose creation crashed): empty log, torn tail noted.
            let log = read_log(&path, &c).unwrap();
            assert!(log.records.is_empty());
            assert!(log.torn_tail);
            let mut w = WalWriter::open(&path, &c).unwrap();
            assert_eq!(w.next_seq(), 1);
            w.append(&ins(1)).unwrap();
            drop(w);
            let log = read_log(&path, &c).unwrap();
            assert!(!log.torn_tail);
            assert_eq!(log.records, vec![(1, ins(1))]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let path = temp_path("corrupt");
        let c = catalog();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            w.append(&ins(1)).unwrap();
            w.append(&ins(2)).unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip a byte inside the first record's body.
        text = text.replace("row 1", "row X");
        std::fs::write(&path, text).unwrap();
        let err = read_log(&path, &c).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { line: 2, .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn complete_but_corrupt_final_record_is_dropped_and_reported() {
        // Out-of-order page flush means a crash during an un-synced append
        // can leave a newline-terminated line with garbage before it, so a
        // corrupt *final* record ends the log (availability) — but is
        // always reported via torn_tail, never silently swallowed.
        let path = temp_path("rotted-tail");
        let c = catalog();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            w.append(&ins(1)).unwrap();
            w.append(&ins(2)).unwrap();
            w.sync().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        std::fs::write(&path, text.replace("row 2", "row Z")).unwrap();
        let log = read_log(&path, &c).unwrap();
        assert!(log.torn_tail, "the dropped tail must be reported");
        assert_eq!(log.records, vec![(1, ins(1))]);
        // Reopening truncates the bad tail and resumes the sequence.
        let mut w = WalWriter::open(&path, &c).unwrap();
        assert_eq!(w.next_seq(), 2);
        w.append(&ins(2)).unwrap();
        drop(w);
        let log = read_log(&path, &c).unwrap();
        assert!(!log.torn_tail);
        assert_eq!(log.records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sequence_regression_is_torn_on_the_final_line_but_fatal_mid_file() {
        // The seq field sits outside the body checksum, so tail rot can
        // damage it alone: on the final line that ends the log (dropped,
        // reported); mid-file it is unambiguous corruption.
        let path = temp_path("seq-rot");
        let c = catalog();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            w.append(&ins(1)).unwrap();
            w.append(&ins(2)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let rotted = text.replacen("\n2\t", "\n1\t", 1);
        std::fs::write(&path, &rotted).unwrap();
        let log = read_log(&path, &c).unwrap();
        assert!(log.torn_tail);
        assert_eq!(log.records, vec![(1, ins(1))]);

        // Same damage mid-file (a third record follows) is fatal.
        std::fs::write(&path, text).unwrap();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            w.append(&ins(3)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("\n2\t", "\n1\t", 1)).unwrap();
        assert!(matches!(
            read_log(&path, &c).unwrap_err(),
            WalError::Corrupt { line: 3, .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn schema_mismatch_refuses_load() {
        let path = temp_path("mismatch");
        let c = catalog();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            w.append(&ins(1)).unwrap();
        }
        let mut other = Catalog::new();
        other
            .define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("renamed", DataType::Text)
            .unwrap()
            .finish();
        assert!(matches!(
            read_log(&path, &other).unwrap_err(),
            WalError::SchemaMismatch { .. }
        ));
        assert!(matches!(
            WalWriter::open(&path, &other).unwrap_err(),
            WalError::SchemaMismatch { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_metrics_reach_the_global_registry() {
        // Deltas, not absolutes: the global registry is shared by every
        // test in this binary.
        let path = temp_path("obs");
        let c = catalog();
        let registry = quest_obs::global();
        let appends =
            |s: &quest_obs::MetricsSnapshot| s.histogram(names::APPEND).map_or(0, |h| h.count);
        let fsyncs =
            |s: &quest_obs::MetricsSnapshot| s.histogram(names::FSYNC).map_or(0, |h| h.count);
        let torn = |s: &quest_obs::MetricsSnapshot| s.counter(names::TORN_TAIL).unwrap_or(0);
        let before = registry.snapshot();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            w.append(&ins(1)).unwrap();
            w.sync().unwrap();
        }
        // `>=`: sibling tests in this binary append concurrently.
        let after = registry.snapshot();
        assert!(appends(&after) > appends(&before));
        assert!(fsyncs(&after) > fsyncs(&before));

        // A torn tail is counted by the scan that observes it.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"2\tdead").unwrap();
        }
        assert!(read_log(&path, &c).unwrap().torn_tail);
        assert!(torn(&registry.snapshot()) > torn(&after));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_applies_suffix_only_and_rerejects_deterministically() {
        let c = catalog();
        let mut db = Database::new(c.clone()).unwrap();
        db.finalize();
        let records = vec![(1, ins(1)), (2, ins(2)), (3, ins(3))];
        // Pretend a snapshot already contains record 1's effect.
        db.insert("t", relstore::Row::new(vec![1.into(), "row 1".into()]))
            .unwrap();
        let report = replay(&mut db, &records, 1).unwrap();
        assert_eq!(
            report,
            ReplayReport {
                applied: 2,
                rejected: 0
            }
        );
        assert_eq!(db.total_rows(), 3);
        assert!(db.validate().is_ok());
        // A logged record the live system rejected (duplicate key) is
        // re-rejected and skipped, and the records after it still apply —
        // a single poison record must not make the log unrecoverable.
        let tail = vec![(4, ins(2)), (5, ins(4))];
        let report = replay(&mut db, &tail, 0).unwrap();
        assert_eq!(
            report,
            ReplayReport {
                applied: 1,
                rejected: 1
            }
        );
        assert_eq!(db.total_rows(), 4);
        assert!(db.validate().is_ok());
    }
}
