//! [`LogReader`]: positioned, incremental log reading — the streaming
//! counterpart to [`read_log`](crate::read_log).
//!
//! `read_log` materializes and checksums the whole file; that is the right
//! tool for one-shot integrity audits, but a replica tailing a live log (or
//! a recovery that starts from a snapshot) only cares about the suffix. A
//! `LogReader` remembers the byte offset of the last complete record it
//! consumed, so:
//!
//! * [`LogReader::seek`] skips every record at or below a sequence number
//!   by scanning line frames and their leading seq field only — no
//!   checksumming, no body decode — which is what makes bootstrapping from
//!   a snapshot O(suffix) in decode work instead of O(log);
//! * [`LogReader::poll`] parses the records appended since the last call
//!   and stops cleanly at an in-flight or torn tail, which simply stays
//!   *pending* until a later poll (live follow) or is reported as torn by
//!   batch callers that treat the current end of file as final.
//!
//! The reader holds no file handle between calls: each poll re-opens the
//! path, so it keeps working across writer crashes, torn-tail truncations
//! on reopen (the writer only ever truncates bytes no reader has consumed —
//! both sides advance strictly over complete, valid records), and
//! snapshot/rotation schemes that swap files atomically.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use relstore::Catalog;

use crate::codec::schema_fingerprint;
use crate::error::WalError;
use crate::log::{parse_header, parse_record};
use crate::record::ChangeRecord;

/// One batch of records surfaced by [`LogReader::poll`].
#[derive(Debug)]
pub struct TailPoll {
    /// Complete, verified records in log order, each with its sequence
    /// number (strictly increasing across polls).
    pub records: Vec<(u64, ChangeRecord)>,
    /// Bytes past the last consumed record that do not (yet) form a valid
    /// record: an append still in flight, or a torn tail after a crash.
    /// They stay unconsumed — a later poll re-reads them — so live
    /// followers just poll again, while batch callers treating the current
    /// end of file as final report `pending > 0` as a torn tail.
    pub pending: u64,
}

/// A positioned reader over a write-ahead log.
///
/// See the [module docs](self) for the contract. Create with
/// [`LogReader::open`], position with [`LogReader::seek`], then call
/// [`LogReader::poll`] as often as needed.
#[derive(Debug)]
pub struct LogReader {
    path: PathBuf,
    fingerprint: u64,
    /// Byte offset just past the last consumed line (header or record).
    offset: u64,
    /// Sequence number of the last consumed record (or the seek watermark).
    last_seq: u64,
    /// Whether the header line has been read and verified yet. A log whose
    /// creation itself crashed has no complete header; the reader tolerates
    /// that and re-checks on every poll, mirroring `read_log`.
    header_seen: bool,
}

impl LogReader {
    /// Open a reader over the log at `path`, bound to `catalog`'s schema.
    ///
    /// The header is verified immediately when present; a log without a
    /// complete header line (creation crashed mid-write) is tolerated and
    /// re-checked on each poll, so a follower can attach before the writer
    /// finishes initializing.
    pub fn open(path: &Path, catalog: &Catalog) -> Result<LogReader, WalError> {
        let mut reader = LogReader {
            path: path.to_path_buf(),
            fingerprint: schema_fingerprint(catalog),
            offset: 0,
            last_seq: 0,
            header_seen: false,
        };
        reader.ensure_header()?;
        Ok(reader)
    }

    /// Sequence number of the last record consumed (or the watermark set by
    /// [`LogReader::seek`]); the next record returned will be newer.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Byte offset just past the last consumed line.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Position past every record with sequence number `<= after_seq`,
    /// without checksumming or decoding the skipped records (their effects
    /// are already in whatever state the caller starts from, typically a
    /// snapshot). Scans only line frames and the leading seq field.
    ///
    /// Returns the highest sequence number actually observed at or below
    /// `after_seq` (0 if none). A return below `after_seq` means the log
    /// does not hold everything the watermark claims — callers that resume
    /// *writing* from such a pair must refuse, or they would re-issue
    /// sequence numbers the snapshot already covers.
    ///
    /// Records at or below an earlier watermark are already consumed, so
    /// seeking backwards is a no-op.
    pub fn seek(&mut self, after_seq: u64) -> Result<u64, WalError> {
        if after_seq <= self.last_seq {
            return Ok(self.last_seq);
        }
        if !self.ensure_header()? {
            // No complete header yet ⇒ no records exist to skip; keep the
            // watermark so the records, once written, still stream from
            // `after_seq + 1` on.
            self.last_seq = after_seq;
            return Ok(0);
        }
        let bytes = self.read_from_offset()?;
        // End of the last complete line: the frontier of what may safely
        // be consumed on seq evidence alone (see below).
        let last_line_end = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        let mut pos = 0usize;
        while let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') {
            let line = &bytes[pos..pos + nl];
            let end = pos + nl + 1;
            // Only the seq field matters for skipping; anything unparseable
            // is left for `poll` to classify (torn tail vs. corruption). A
            // seq regression is the writer's torn-tail signal (the field
            // sits outside the body checksum), so stop there too.
            let Some(seq) = leading_seq(line) else { break };
            if seq > after_seq || seq <= self.last_seq {
                break;
            }
            // The *final* complete line may be a torn append whose newline
            // flushed out of order; its rotted seq field could parse below
            // the watermark. Consuming it would advance past bytes the
            // writer truncates on reopen, so it is consumed only fully
            // verified — exactly poll's standard for a last line.
            if end == last_line_end
                && !std::str::from_utf8(line).is_ok_and(|l| parse_record(l).is_ok())
            {
                break;
            }
            pos = end;
            self.last_seq = seq;
        }
        let reached = self.last_seq;
        self.offset += pos as u64;
        self.last_seq = self.last_seq.max(after_seq);
        Ok(reached)
    }

    /// Read the records appended since the last poll (or seek position).
    ///
    /// Stops at the first incomplete or invalid trailing line, which stays
    /// pending (see [`TailPoll::pending`]). An invalid line with *further
    /// complete lines after it* cannot be an append in flight and fails
    /// with [`WalError::Corrupt`]. Sequence numbers must increase strictly
    /// across the reader's lifetime.
    pub fn poll(&mut self) -> Result<TailPoll, WalError> {
        if let Some(fault) = quest_fault::fire(quest_fault::sites::WAL_READ) {
            match fault.kind {
                quest_fault::FaultKind::SlowIo => fault.stall(),
                _ => return Err(WalError::Io(fault.io_error())),
            }
        }
        if !self.ensure_header()? {
            let len = std::fs::metadata(&self.path)?.len();
            return Ok(TailPoll {
                records: Vec::new(),
                pending: len,
            });
        }
        let bytes = self.read_from_offset()?;
        // Bytes after the last newline are an append in flight (or a torn
        // tail); they may split a multi-byte character, so they are never
        // decoded. Complete lines were written as UTF-8.
        let cut = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        let text = std::str::from_utf8(&bytes[..cut]).map_err(|e| WalError::Corrupt {
            line: 0,
            message: format!("log tail is not valid UTF-8 at byte {}", e.valid_up_to()),
        })?;
        let mut records = Vec::new();
        let mut consumed = 0usize;
        let mut lines = text.split_inclusive('\n').peekable();
        while let Some(raw) = lines.next() {
            let line = raw.strip_suffix('\n').unwrap_or(raw);
            let parsed = parse_record(line).and_then(|(seq, rec)| {
                if seq <= self.last_seq {
                    return Err(format!("sequence {seq} not after {}", self.last_seq));
                }
                Ok((seq, rec))
            });
            match parsed {
                Ok((seq, rec)) => {
                    records.push((seq, rec));
                    consumed += raw.len();
                    self.last_seq = seq;
                }
                // A bad final line is a tail that has not (or will never)
                // become whole: out-of-order page flush can persist its
                // newline before its body. It stays pending — the writer
                // truncates it on reopen, after which this very reader
                // picks up the clean rewrite from the same offset.
                Err(_) if lines.peek().is_none() => break,
                Err(message) => {
                    return Err(WalError::Corrupt { line: 0, message });
                }
            }
        }
        self.offset += consumed as u64;
        Ok(TailPoll {
            records,
            pending: (bytes.len() - consumed) as u64,
        })
    }

    /// Verify the header if it has not been verified yet. Returns whether a
    /// complete header exists (false only while the log's creation is still
    /// in flight or was torn by a crash).
    fn ensure_header(&mut self) -> Result<bool, WalError> {
        if self.header_seen {
            return Ok(true);
        }
        // The header is one short line; 256 bytes is comfortably past it.
        let mut file = std::fs::File::open(&self.path)?;
        let mut buf = [0u8; 256];
        let mut filled = 0usize;
        loop {
            let n = file.read(&mut buf[filled..])?;
            filled += n;
            if n == 0 || filled == buf.len() {
                break;
            }
        }
        let Some(nl) = buf[..filled].iter().position(|&b| b == b'\n') else {
            return Ok(false);
        };
        let line = std::str::from_utf8(&buf[..nl]).map_err(|_| WalError::Corrupt {
            line: 1,
            message: "header is not valid UTF-8".into(),
        })?;
        parse_header(line, self.fingerprint)?;
        self.offset = (nl + 1) as u64;
        self.header_seen = true;
        Ok(true)
    }

    /// Read everything from the consumed offset to the current end of file.
    fn read_from_offset(&self) -> Result<Vec<u8>, WalError> {
        let mut file = std::fs::File::open(&self.path)?;
        let len = file.metadata()?.len();
        if len < self.offset {
            // The writer only ever truncates torn bytes no reader has
            // consumed; a file shorter than the consumed prefix means the
            // log was replaced or externally damaged.
            return Err(WalError::Corrupt {
                line: 0,
                message: format!(
                    "log shrank below the consumed offset ({len} < {})",
                    self.offset
                ),
            });
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut bytes = Vec::with_capacity((len - self.offset) as usize);
        file.read_to_end(&mut bytes)?;
        Ok(bytes)
    }
}

/// Parse the decimal seq field a record line starts with (up to the first
/// tab). `None` for anything that is not `digits<TAB>`.
fn leading_seq(line: &[u8]) -> Option<u64> {
    let tab = line.iter().position(|&b| b == b'\t')?;
    std::str::from_utf8(&line[..tab]).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::WalWriter;
    use relstore::DataType;
    use std::path::PathBuf;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quest-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.wal", std::process::id()))
    }

    fn ins(id: i64) -> ChangeRecord {
        ChangeRecord::Insert {
            table: "t".into(),
            row: vec![id.into(), format!("rëcord {id}").into()],
        }
    }

    #[test]
    fn poll_streams_appends_incrementally() {
        let path = temp_path("tail");
        let c = catalog();
        let mut w = WalWriter::open(&path, &c).unwrap();
        let mut r = LogReader::open(&path, &c).unwrap();
        assert!(r.poll().unwrap().records.is_empty());

        w.append(&ins(1)).unwrap();
        w.append(&ins(2)).unwrap();
        let poll = r.poll().unwrap();
        assert_eq!(poll.pending, 0);
        assert_eq!(poll.records, vec![(1, ins(1)), (2, ins(2))]);

        // Nothing new: empty poll, not a re-read.
        assert!(r.poll().unwrap().records.is_empty());
        w.append(&ins(3)).unwrap();
        assert_eq!(r.poll().unwrap().records, vec![(3, ins(3))]);
        assert_eq!(r.last_seq(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn seek_skips_without_decoding_and_streams_the_suffix() {
        let path = temp_path("seek");
        let c = catalog();
        let mut w = WalWriter::open(&path, &c).unwrap();
        for i in 1..=5 {
            w.append(&ins(i)).unwrap();
        }
        let mut r = LogReader::open(&path, &c).unwrap();
        r.seek(3).unwrap();
        assert_eq!(r.last_seq(), 3);
        let poll = r.poll().unwrap();
        assert_eq!(poll.records, vec![(4, ins(4)), (5, ins(5))]);
        // Seeking backwards is a no-op: those records are consumed.
        r.seek(1).unwrap();
        assert!(r.poll().unwrap().records.is_empty());
        // Seeking to the exact end leaves the reader waiting for new records.
        let mut r = LogReader::open(&path, &c).unwrap();
        r.seek(5).unwrap();
        assert!(r.poll().unwrap().records.is_empty());
        w.append(&ins(6)).unwrap();
        assert_eq!(r.poll().unwrap().records, vec![(6, ins(6))]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn seek_never_consumes_an_unverified_final_line() {
        // The final line's seq field sits outside the body checksum, so a
        // torn/rotted tail can carry a plausible low seq. seek must not
        // consume it on seq evidence alone: the writer truncates that line
        // on reopen, and a reader positioned past it would be mis-framed.
        let path = temp_path("seek-rotted-tail");
        let c = catalog();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            for i in 1..=5 {
                w.append(&ins(i)).unwrap();
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("rëcord 5", "rëcorX 5")).unwrap();
        let mut r = LogReader::open(&path, &c).unwrap();
        r.seek(5).unwrap();
        // Records 1–4 were skipped; the rotted final line stays pending.
        let poll = r.poll().unwrap();
        assert!(poll.records.is_empty());
        assert!(poll.pending > 0, "rotted final line must stay unconsumed");
        // An intact final line at the same position is consumed normally.
        std::fs::write(&path, &text).unwrap();
        let mut r = LogReader::open(&path, &c).unwrap();
        r.seek(5).unwrap();
        let poll = r.poll().unwrap();
        assert!(poll.records.is_empty());
        assert_eq!(poll.pending, 0, "valid final line was consumed by seek");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_stays_pending_and_heals_after_writer_reopen() {
        let path = temp_path("tail-heal");
        let c = catalog();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            w.append(&ins(1)).unwrap();
        }
        let mut r = LogReader::open(&path, &c).unwrap();
        assert_eq!(r.poll().unwrap().records.len(), 1);
        // Crash mid-append: a half-written line (even mid-multibyte).
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"2\t00ff\tI\tt\ti2\tt\xc3").unwrap();
        }
        let poll = r.poll().unwrap();
        assert!(poll.records.is_empty());
        assert!(poll.pending > 0, "torn bytes are pending, not consumed");
        // The writer reopens (truncating the torn tail) and appends cleanly;
        // the same reader picks up the rewrite from its unchanged offset.
        let mut w = WalWriter::open(&path, &c).unwrap();
        assert_eq!(w.next_seq(), 2);
        w.append(&ins(2)).unwrap();
        let poll = r.poll().unwrap();
        assert_eq!(poll.records, vec![(2, ins(2))]);
        assert_eq!(poll.pending, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_stream_corruption_is_fatal_for_poll() {
        let path = temp_path("reader-corrupt");
        let c = catalog();
        {
            let mut w = WalWriter::open(&path, &c).unwrap();
            w.append(&ins(1)).unwrap();
            w.append(&ins(2)).unwrap();
            w.append(&ins(3)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("rëcord 2", "rëcorX 2")).unwrap();
        let mut r = LogReader::open(&path, &c).unwrap();
        assert!(matches!(r.poll().unwrap_err(), WalError::Corrupt { .. }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn headerless_log_is_tolerated_until_the_header_lands() {
        let path = temp_path("late-header");
        let c = catalog();
        std::fs::write(&path, "QUESTW").unwrap(); // creation torn mid-header
        let mut r = LogReader::open(&path, &c).unwrap();
        let poll = r.poll().unwrap();
        assert!(poll.records.is_empty());
        assert!(poll.pending > 0);
        // The writer reinitializes the log; the reader attaches seamlessly.
        let mut w = WalWriter::open(&path, &c).unwrap();
        w.append(&ins(1)).unwrap();
        assert_eq!(r.poll().unwrap().records, vec![(1, ins(1))]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn schema_mismatch_refuses_open() {
        let path = temp_path("reader-mismatch");
        let c = catalog();
        drop(WalWriter::open(&path, &c).unwrap());
        let mut other = Catalog::new();
        other
            .define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("renamed", DataType::Text)
            .unwrap()
            .finish();
        assert!(matches!(
            LogReader::open(&path, &other).unwrap_err(),
            WalError::SchemaMismatch { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
