//! Whole-database snapshots.
//!
//! A snapshot is a self-contained text file: header (schema fingerprint +
//! the WAL sequence number it covers), the full catalog, then every table's
//! slot layout — tombstones included, so the restored [`Database`] is
//! *structurally identical* to the one snapshotted (same `RowId`s, same
//! posting lists after `finalize`), not merely equivalent. The file ends
//! with an explicit `E` marker so a truncated snapshot is detected.
//!
//! ```text
//! QUESTSNAP<TAB>1<TAB><fingerprint><TAB><last_seq>
//! T<TAB><table name>
//! A<TAB><attr name><TAB><type><TAB><pk><TAB><nullable><TAB><full_text>
//! F<TAB><from table><TAB><from attr><TAB><to table>
//! B<TAB><table name><TAB><slot count>
//! R<TAB><value>...          (live slot)
//! X                         (tombstoned slot)
//! E
//! ```

use std::io::Write;
use std::path::Path;

use relstore::{Catalog, DataType, Database, Row, Value};

use crate::codec::{decode_value, encode_value, escape_field, schema_fingerprint, unescape_field};
use crate::error::WalError;

/// Magic first field of a snapshot header.
const MAGIC: &str = "QUESTSNAP";
/// Format version this code writes and reads.
const VERSION: &str = "1";

/// A snapshot read back from disk.
#[derive(Debug)]
pub struct Snapshot {
    /// The restored, finalized database.
    pub db: Database,
    /// Highest WAL sequence number whose effect the snapshot contains;
    /// recovery replays strictly newer records on top.
    pub last_seq: u64,
}

fn type_tag(ty: DataType) -> &'static str {
    match ty {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Text => "text",
        DataType::Date => "date",
    }
}

fn parse_type(tag: &str) -> Result<DataType, String> {
    match tag {
        "bool" => Ok(DataType::Bool),
        "int" => Ok(DataType::Int),
        "float" => Ok(DataType::Float),
        "text" => Ok(DataType::Text),
        "date" => Ok(DataType::Date),
        other => Err(format!("unknown type `{other}`")),
    }
}

/// Write a snapshot of `db` to `path`, recording that every WAL record with
/// sequence number `<= last_seq` is already reflected in it.
pub fn write_snapshot(db: &Database, path: &Path, last_seq: u64) -> Result<(), WalError> {
    // Failpoint before any byte is staged: an injected publish fault leaves
    // the previous snapshot at `path` untouched, so bootstrap falls back to
    // it (the same guarantee the temp-then-rename protocol gives crashes).
    if let Some(fault) = quest_fault::fire(quest_fault::sites::WAL_SNAPSHOT) {
        match fault.kind {
            quest_fault::FaultKind::SlowIo => fault.stall(),
            _ => return Err(WalError::Io(fault.io_error())),
        }
    }
    let catalog = db.catalog();
    let mut out = String::new();
    out.push_str(&format!(
        "{MAGIC}\t{VERSION}\t{:016x}\t{last_seq}\n",
        schema_fingerprint(catalog)
    ));
    for table in catalog.tables() {
        out.push_str(&format!("T\t{}\n", escape_field(&table.name)));
        for attr_id in &table.attributes {
            let a = catalog.attribute(*attr_id);
            out.push_str(&format!(
                "A\t{}\t{}\t{}\t{}\t{}\n",
                escape_field(&a.name),
                type_tag(a.data_type),
                a.in_primary_key as u8,
                a.nullable as u8,
                a.full_text as u8
            ));
        }
    }
    for fk in catalog.foreign_keys() {
        let from = catalog.attribute(fk.from);
        let to = catalog.attribute(fk.to);
        out.push_str(&format!(
            "F\t{}\t{}\t{}\n",
            escape_field(&catalog.table(from.table).name),
            escape_field(&from.name),
            escape_field(&catalog.table(to.table).name)
        ));
    }
    for table in catalog.tables() {
        let data = db.table_data(table.id);
        out.push_str(&format!(
            "B\t{}\t{}\n",
            escape_field(&table.name),
            data.slot_count()
        ));
        for slot in data.slots() {
            match slot {
                Some(row) => {
                    let cells: Vec<String> = row.values().iter().map(encode_value).collect();
                    out.push_str(&format!("R\t{}\n", cells.join("\t")));
                }
                None => out.push_str("X\n"),
            }
        }
    }
    out.push_str("E\n");
    // Write-to-temp then rename: the previous snapshot at `path` stays
    // valid until the new one is complete and synced, so a crash mid-write
    // never destroys the only recovery point. The temp file itself is
    // guarded by the `E` marker (a torn temp write is rejected on read),
    // and the rename is atomic on POSIX filesystems.
    let tmp = path.with_extension("snap-tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(out.as_bytes())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    // The rename is atomic but not durable until the *directory* entry is
    // flushed: without this fsync a power cut can resurrect the old name
    // (or neither) even though the data blocks above were synced.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Read a snapshot back into a finalized [`Database`].
pub fn read_snapshot(path: &Path) -> Result<Snapshot, WalError> {
    let text = std::fs::read_to_string(path)?;
    let corrupt = |line: usize, message: String| WalError::Corrupt { line, message };
    let mut lines = text.lines().enumerate();

    // Header.
    let (_, header) = lines
        .next()
        .ok_or_else(|| corrupt(1, "empty file".into()))?;
    let mut fields = header.split('\t');
    if fields.next() != Some(MAGIC) || fields.next() != Some(VERSION) {
        return Err(corrupt(1, format!("bad header `{header}`")));
    }
    let fingerprint = fields
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| corrupt(1, "bad fingerprint".into()))?;
    let last_seq = fields
        .next()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| corrupt(1, "bad last_seq".into()))?;

    // Catalog section: T/A lines describe tables, F lines foreign keys.
    // Collected first because attribute lines belong to the preceding T.
    let mut catalog = Catalog::new();
    let mut current: Option<relstore::TableId> = None;
    let mut body_start: Option<(usize, String)> = None;
    let mut fks: Vec<(String, String, String)> = Vec::new();
    for (i, line) in lines.by_ref() {
        let lineno = i + 1;
        let mut fields = line.split('\t');
        let tag = fields.next().unwrap_or_default();
        let mut field = |name: &str| -> Result<String, WalError> {
            fields
                .next()
                .ok_or_else(|| corrupt(lineno, format!("missing {name}")))
                .and_then(|f| unescape_field(f).map_err(|e| corrupt(lineno, e)))
        };
        match tag {
            "T" => {
                let name = field("table name")?;
                let builder = catalog
                    .define_table(&name)
                    .map_err(|e| corrupt(lineno, e.to_string()))?;
                current = Some(builder.finish());
            }
            "A" => {
                let Some(tid) = current else {
                    return Err(corrupt(lineno, "attribute before any table".into()));
                };
                let name = field("attr name")?;
                let ty = parse_type(&field("type")?).map_err(|e| corrupt(lineno, e))?;
                let pk = field("pk flag")? == "1";
                let nullable = field("nullable flag")? == "1";
                let full_text = field("full-text flag")? == "1";
                let table_name = catalog.table(tid).name.clone();
                let builder = catalog
                    .resume_table(tid)
                    .map_err(|e| corrupt(lineno, e.to_string()))?;
                let result = if pk {
                    builder.pk(&name, ty)
                } else {
                    builder.col_opts(&name, ty, nullable, full_text)
                };
                result
                    .map_err(|e| corrupt(lineno, format!("attribute {table_name}.{name}: {e}")))?;
            }
            "F" => {
                fks.push((
                    field("from table")?,
                    field("from attr")?,
                    field("to table")?,
                ));
            }
            "B" => {
                // First data line: catalog is complete. Register FKs now.
                body_start = Some((lineno, line.to_string()));
                break;
            }
            other => return Err(corrupt(lineno, format!("unexpected tag `{other}`"))),
        }
    }
    for (from_table, from_attr, to_table) in fks {
        catalog
            .add_foreign_key(&from_table, &from_attr, &to_table)
            .map_err(|e| WalError::Corrupt {
                line: 1,
                message: format!("foreign key {from_table}.{from_attr}: {e}"),
            })?;
    }
    if schema_fingerprint(&catalog) != fingerprint {
        return Err(WalError::SchemaMismatch {
            expected: schema_fingerprint(&catalog),
            found: fingerprint,
        });
    }

    // Data section: for each B line, `slot_count` R/X lines follow.
    let mut db = Database::new(catalog)?;
    let mut pending = body_start;
    let mut saw_end = false;
    loop {
        let (lineno, line) = match pending.take() {
            Some(l) => l,
            None => match lines.next() {
                Some((i, l)) => (i + 1, l.to_string()),
                None => break,
            },
        };
        let mut fields = line.split('\t');
        match fields.next().unwrap_or_default() {
            "B" => {
                let name = fields
                    .next()
                    .map(unescape_field)
                    .transpose()
                    .map_err(|e| corrupt(lineno, e))?
                    .ok_or_else(|| corrupt(lineno, "missing table name".into()))?;
                let slots: usize = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt(lineno, "bad slot count".into()))?;
                let tid = db
                    .catalog()
                    .table_id(&name)
                    .map_err(|e| corrupt(lineno, e.to_string()))?;
                let mut layout: Vec<Option<Row>> = Vec::with_capacity(slots);
                for _ in 0..slots {
                    let (i, row_line) = lines
                        .next()
                        .ok_or_else(|| corrupt(lineno, "truncated table body".into()))?;
                    let rowno = i + 1;
                    let mut cells = row_line.split('\t');
                    match cells.next().unwrap_or_default() {
                        "R" => {
                            let values: Vec<Value> = cells
                                .map(decode_value)
                                .collect::<Result<_, _>>()
                                .map_err(|e| corrupt(rowno, e))?;
                            layout.push(Some(Row::new(values)));
                        }
                        "X" => layout.push(None),
                        other => {
                            return Err(corrupt(rowno, format!("expected row, got `{other}`")))
                        }
                    }
                }
                db.restore_table(tid, layout)?;
            }
            "E" => {
                saw_end = true;
                break;
            }
            other => return Err(corrupt(lineno, format!("unexpected tag `{other}`"))),
        }
    }
    if !saw_end {
        return Err(WalError::Corrupt {
            line: 0,
            message: "snapshot missing end marker (truncated write?)".into(),
        });
    }
    db.finalize();
    Ok(Snapshot { db, last_seq })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quest-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.snap", std::process::id()))
    }

    fn sample_db() -> Database {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .col_opts("rating", DataType::Float, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut db = Database::new(c).unwrap();
        db.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        db.insert(
            "person",
            Row::new(vec![2.into(), "Michael, \"Mike\"".into()]),
        )
        .unwrap();
        db.insert(
            "movie",
            Row::new(vec![
                10.into(),
                "Gone with the Wind".into(),
                1.into(),
                (0.1f64 + 0.2).into(),
            ]),
        )
        .unwrap();
        db.insert(
            "movie",
            Row::new(vec![11.into(), "Casablanca".into(), 2.into(), Value::Null]),
        )
        .unwrap();
        db.finalize();
        // Leave a tombstone so the slot layout is non-trivial.
        db.delete("movie", &[Value::Int(10)]).unwrap();
        db
    }

    #[test]
    fn snapshot_round_trips_structurally() {
        let db = sample_db();
        let path = temp_path("roundtrip");
        write_snapshot(&db, &path, 42).unwrap();
        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.last_seq, 42);
        let restored = snap.db;
        assert!(restored.is_finalized());
        assert!(restored.validate().is_ok());
        let movie = restored.catalog().table_id("movie").unwrap();
        // Slot layout preserved: tombstone at slot 0, Casablanca at slot 1.
        assert_eq!(restored.table_data(movie).slot_count(), 2);
        assert_eq!(restored.table_data(movie).get(relstore::RowId(0)), None);
        for attr in db.catalog().attributes() {
            assert_eq!(
                db.index(attr.id),
                restored.index(attr.id),
                "index of {} diverged",
                db.catalog().qualified_name(attr.id)
            );
            assert_eq!(db.attr_stats(attr.id), restored.attr_stats(attr.id));
        }
        for fk in db.catalog().foreign_keys() {
            assert_eq!(db.fk_stats(*fk), restored.fk_stats(*fk));
        }
        // Float survives bitwise.
        let rating = restored.catalog().attr_id("movie", "rating").unwrap();
        let person = restored.catalog().attr_id("person", "name").unwrap();
        assert!(restored.search_score(person, "fleming") > 0.0);
        let _ = rating;
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let db = sample_db();
        let path = temp_path("truncated");
        write_snapshot(&db, &path, 0).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Drop the end marker and the last row.
        let cut: String = text
            .lines()
            .take(text.lines().count() - 2)
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&path, cut).unwrap();
        assert!(matches!(
            read_snapshot(&path).unwrap_err(),
            WalError::Corrupt { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tampered_fingerprint_rejected() {
        let db = sample_db();
        let path = temp_path("fingerprint");
        write_snapshot(&db, &path, 0).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Rename a column in the catalog section without updating the
        // header fingerprint: the reader must notice.
        let tampered = text.replacen("A\ttitle", "A\tname2", 1);
        std::fs::write(&path, tampered).unwrap();
        assert!(matches!(
            read_snapshot(&path).unwrap_err(),
            WalError::SchemaMismatch { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
