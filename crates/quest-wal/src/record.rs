//! Serializable change records: the unit the log stores and replays.

use relstore::{Database, Row, RowId, StoreError, Value};

use crate::codec::{decode_value, encode_value, escape_field, unescape_field};

/// One logical mutation of a [`Database`], addressed by table name and
/// primary-key values so records stay valid across process restarts (slot
/// numbers are an in-memory artifact; keys are the durable identity).
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeRecord {
    /// Insert a full row.
    Insert {
        /// Target table name.
        table: String,
        /// Column values in declaration order.
        row: Vec<Value>,
    },
    /// Delete the row with the given primary key.
    Delete {
        /// Target table name.
        table: String,
        /// Primary-key values in key order.
        key: Vec<Value>,
    },
    /// Replace the row with the given primary key by a full new row.
    Update {
        /// Target table name.
        table: String,
        /// Primary-key values of the victim, in key order.
        key: Vec<Value>,
        /// Replacement column values in declaration order.
        row: Vec<Value>,
    },
}

impl ChangeRecord {
    /// The table this record mutates.
    pub fn table(&self) -> &str {
        match self {
            ChangeRecord::Insert { table, .. }
            | ChangeRecord::Delete { table, .. }
            | ChangeRecord::Update { table, .. } => table,
        }
    }

    /// Encode as one tab-separated line body (no newline, no framing).
    pub fn encode(&self) -> String {
        let mut fields: Vec<String> = Vec::new();
        match self {
            ChangeRecord::Insert { table, row } => {
                fields.push("I".into());
                fields.push(escape_field(table));
                fields.extend(row.iter().map(encode_value));
            }
            ChangeRecord::Delete { table, key } => {
                fields.push("D".into());
                fields.push(escape_field(table));
                fields.extend(key.iter().map(encode_value));
            }
            ChangeRecord::Update { table, key, row } => {
                fields.push("U".into());
                fields.push(escape_field(table));
                fields.push(key.len().to_string());
                fields.extend(key.iter().map(encode_value));
                fields.extend(row.iter().map(encode_value));
            }
        }
        fields.join("\t")
    }

    /// Invert [`ChangeRecord::encode`].
    pub fn decode(body: &str) -> Result<ChangeRecord, String> {
        let mut fields = body.split('\t');
        let op = fields.next().ok_or("empty record")?;
        let table = unescape_field(fields.next().ok_or("missing table")?)?;
        let values: Vec<Value> = fields
            .clone()
            .skip(usize::from(op == "U"))
            .map(decode_value)
            .collect::<Result<_, _>>()?;
        match op {
            "I" => {
                if values.is_empty() {
                    return Err("insert with no values".into());
                }
                Ok(ChangeRecord::Insert { table, row: values })
            }
            "D" => {
                if values.is_empty() {
                    return Err("delete with no key".into());
                }
                Ok(ChangeRecord::Delete { table, key: values })
            }
            "U" => {
                let n: usize = fields
                    .next()
                    .ok_or("update missing key arity")?
                    .parse()
                    .map_err(|_| "bad update key arity".to_string())?;
                if n == 0 || values.len() <= n {
                    return Err("update with empty key or row".into());
                }
                let (key, row) = values.split_at(n);
                Ok(ChangeRecord::Update {
                    table,
                    key: key.to_vec(),
                    row: row.to_vec(),
                })
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Apply this record to a database through its checked mutation API
    /// (referential integrity enforced, indexes maintained incrementally).
    pub fn apply(&self, db: &mut Database) -> Result<RowId, StoreError> {
        match self {
            ChangeRecord::Insert { table, row } => db.insert(table, Row::new(row.clone())),
            ChangeRecord::Delete { table, key } => db.delete(table, key),
            ChangeRecord::Update { table, key, row } => {
                db.update(table, key, Row::new(row.clone()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{Catalog, DataType};

    fn sample_records() -> Vec<ChangeRecord> {
        vec![
            ChangeRecord::Insert {
                table: "movie".into(),
                row: vec![1.into(), "Gone, with\tthe Wind".into(), Value::Null],
            },
            ChangeRecord::Delete {
                table: "movie".into(),
                key: vec![1.into()],
            },
            ChangeRecord::Update {
                table: "person".into(),
                key: vec![7.into()],
                row: vec![7.into(), "O'Hara".into(), Value::Float(1.5)],
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let body = rec.encode();
            assert!(!body.contains('\n'));
            assert_eq!(ChangeRecord::decode(&body).unwrap(), rec);
        }
    }

    #[test]
    fn malformed_bodies_rejected() {
        for body in [
            "",
            "Z\tmovie\ti1",
            "I\tmovie",
            "D\tmovie",
            "U\tmovie\t2\ti1\ti2",
            "U\tmovie\tx\ti1\ti2",
            "I\tmovie\tq1",
        ] {
            assert!(ChangeRecord::decode(body).is_err(), "`{body}`");
        }
    }

    #[test]
    fn apply_goes_through_checked_mutations() {
        let mut c = Catalog::new();
        c.define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        let mut db = Database::new(c).unwrap();
        db.finalize();
        ChangeRecord::Insert {
            table: "t".into(),
            row: vec![1.into(), "alpha".into()],
        }
        .apply(&mut db)
        .unwrap();
        ChangeRecord::Update {
            table: "t".into(),
            key: vec![1.into()],
            row: vec![1.into(), "beta".into()],
        }
        .apply(&mut db)
        .unwrap();
        let name = db.catalog().attr_id("t", "name").unwrap();
        assert!(db.search_score(name, "beta") > 0.0);
        ChangeRecord::Delete {
            table: "t".into(),
            key: vec![1.into()],
        }
        .apply(&mut db)
        .unwrap();
        assert_eq!(db.total_rows(), 0);
        // A record against a missing table errors cleanly.
        assert!(ChangeRecord::Delete {
            table: "ghost".into(),
            key: vec![1.into()],
        }
        .apply(&mut db)
        .is_err());
    }
}
