//! Text codec shared by the log and snapshot formats.
//!
//! Both files are line-oriented with tab-separated fields. Three building
//! blocks live here:
//!
//! * **field escaping** — a field never contains a literal tab, newline, CR
//!   or lone backslash, so framing survives any stored text;
//! * **typed value encoding** — every [`Value`] round-trips *bitwise*
//!   (floats are written as their IEEE bit pattern, text is escaped, NULL is
//!   distinct from the empty string — the lossy cases a naive CSV re-parse
//!   would get wrong);
//! * **FNV-1a hashing** — record checksums and the schema fingerprint that
//!   pins a log or snapshot to the catalog it was written against.

use relstore::{Catalog, Date, Value};

/// Escape a field so it contains no tab, newline, CR, or bare backslash.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Invert [`escape_field`]. Fails on a dangling or unknown escape.
pub fn unescape_field(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("unknown escape `\\{other}`")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

/// Encode a value as one tagged field. The tag is the first character:
/// `_` NULL, `b` bool, `i` int, `f` float (hex bit pattern), `t` text
/// (escaped), `d` date (`year,month,day`).
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "_".to_string(),
        Value::Bool(b) => if *b { "b1" } else { "b0" }.to_string(),
        Value::Int(i) => format!("i{i}"),
        Value::Float(f) => format!("f{:016x}", f.to_bits()),
        Value::Text(s) => format!("t{}", escape_field(s)),
        Value::Date(d) => format!("d{},{},{}", d.year, d.month, d.day),
    }
}

/// Invert [`encode_value`].
pub fn decode_value(s: &str) -> Result<Value, String> {
    let Some(tag) = s.chars().next() else {
        return Err("empty value field".into());
    };
    let body = &s[tag.len_utf8()..];
    match tag {
        '_' if body.is_empty() => Ok(Value::Null),
        'b' => match body {
            "1" => Ok(Value::Bool(true)),
            "0" => Ok(Value::Bool(false)),
            _ => Err(format!("bad bool `{body}`")),
        },
        'i' => body
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad int `{body}`: {e}")),
        'f' => u64::from_str_radix(body, 16)
            // `Value::float` keeps the no-NaN invariant even for a log
            // hand-edited to contain NaN bits.
            .map(|bits| Value::float(f64::from_bits(bits)))
            .map_err(|e| format!("bad float bits `{body}`: {e}")),
        't' => unescape_field(body).map(Value::Text),
        'd' => {
            let mut parts = body.splitn(3, ',');
            let err = || format!("bad date `{body}`");
            let year = parts.next().and_then(|p| p.parse::<i32>().ok());
            let month = parts.next().and_then(|p| p.parse::<u8>().ok());
            let day = parts.next().and_then(|p| p.parse::<u8>().ok());
            match (year, month, day) {
                (Some(y), Some(m), Some(d)) => Date::new(y, m, d).map(Value::Date).ok_or_else(err),
                _ => Err(err()),
            }
        }
        other => Err(format!("unknown value tag `{other}`")),
    }
}

/// FNV-1a over bytes: the 64-bit checksum both file formats use.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a catalog: FNV-1a over a canonical rendering of every
/// table, attribute (name, type, key/null/full-text flags, position), and
/// foreign key. Logs and snapshots carry it in their headers so replay
/// against a different schema fails fast instead of corrupting data.
pub fn schema_fingerprint(catalog: &Catalog) -> u64 {
    let mut text = String::new();
    for table in catalog.tables() {
        text.push_str("T\t");
        text.push_str(&escape_field(&table.name));
        text.push('\n');
        for attr_id in &table.attributes {
            let a = catalog.attribute(*attr_id);
            text.push_str(&format!(
                "A\t{}\t{}\t{}\t{}\t{}\n",
                escape_field(&a.name),
                a.data_type.sql_name(),
                a.in_primary_key as u8,
                a.nullable as u8,
                a.full_text as u8
            ));
        }
    }
    for fk in catalog.foreign_keys() {
        text.push_str(&format!(
            "F\t{}\t{}\n",
            escape_field(&catalog.qualified_name(fk.from)),
            escape_field(&catalog.qualified_name(fk.to))
        ));
    }
    fnv64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::DataType;

    #[test]
    fn field_escaping_round_trips() {
        for s in ["plain", "tab\there", "line\nbreak", "back\\slash", "\r", ""] {
            let e = escape_field(s);
            assert!(!e.contains('\t') && !e.contains('\n') && !e.contains('\r'));
            assert_eq!(unescape_field(&e).unwrap(), s);
        }
        assert!(unescape_field("dangling\\").is_err());
        assert!(unescape_field("\\q").is_err());
    }

    #[test]
    fn values_round_trip_bitwise() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(0),
            Value::Float(0.1 + 0.2), // not representable exactly in decimal
            Value::Float(-0.0),
            Value::Float(f64::MAX),
            Value::text(""),
            Value::text("null"), // the CSV re-parse trap
            Value::text("  padded  \twith\nweird\\chars"),
            Value::Date(Date::new(-44, 3, 15).unwrap()),
        ];
        for v in &values {
            let encoded = encode_value(v);
            assert!(
                !encoded.contains('\t') && !encoded.contains('\n'),
                "{encoded}"
            );
            let back = decode_value(&encoded).unwrap();
            match (v, &back) {
                // Float equality in relstore is numeric; compare the bits.
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, &back),
            }
        }
    }

    #[test]
    fn bad_values_rejected() {
        for s in ["", "x1", "b2", "iabc", "fzz", "d2000,1", "d2000,13,1", "_x"] {
            assert!(decode_value(s).is_err(), "`{s}` should not decode");
        }
    }

    #[test]
    fn fingerprint_sees_schema_changes() {
        let mut c1 = Catalog::new();
        c1.define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        let f1 = schema_fingerprint(&c1);
        assert_eq!(f1, schema_fingerprint(&c1), "deterministic");

        let mut c2 = Catalog::new();
        c2.define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text) // renamed column
            .unwrap()
            .finish();
        assert_ne!(f1, schema_fingerprint(&c2));

        let mut c3 = Catalog::new();
        c3.define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("name", DataType::Text, true, false) // full-text off
            .unwrap()
            .finish();
        assert_ne!(f1, schema_fingerprint(&c3));
    }
}
