//! Error type for the durability layer.

use std::fmt;

use relstore::StoreError;

/// Errors raised while writing, reading, or replaying logs and snapshots.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A log or snapshot line failed to parse or checksum (1-based line).
    Corrupt {
        /// Line number within the file, 1-based.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The file was written against a different schema than the target
    /// database (fingerprints disagree).
    SchemaMismatch {
        /// Fingerprint the caller's catalog hashes to.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
    /// Applying a change record violated a storage-level constraint.
    Store(StoreError),
}

impl WalError {
    /// Whether a retry can be expected to succeed.
    ///
    /// Transient errors are interrupted/timed-out style I/O failures (the
    /// kinds `quest-fault` injects for retryable faults); corruption, schema
    /// mismatches, and store rejections are deterministic and permanent.
    pub fn is_transient(&self) -> bool {
        match self {
            WalError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt { line, message } => {
                write!(f, "corrupt record at line {line}: {message}")
            }
            WalError::SchemaMismatch { expected, found } => write!(
                f,
                "schema fingerprint mismatch: catalog is {expected:016x}, file says {found:016x}"
            ),
            WalError::Store(e) => write!(f, "replay rejected by store: {e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<StoreError> for WalError {
    fn from(e: StoreError) -> Self {
        WalError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WalError::SchemaMismatch {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("fingerprint"));
        let e = WalError::Corrupt {
            line: 7,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn transience_follows_io_kind() {
        let transient = WalError::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected",
        ));
        assert!(transient.is_transient());
        let permanent = WalError::Io(std::io::Error::other("disk on fire"));
        assert!(!permanent.is_transient());
        assert!(!WalError::Corrupt {
            line: 1,
            message: "bad".into()
        }
        .is_transient());
    }
}
