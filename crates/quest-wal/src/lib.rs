//! # quest-wal — durability for live QUEST databases
//!
//! The storage engine under QUEST (`relstore`) mutates in memory; this crate
//! makes those mutations durable and recoverable, the way a
//! change-data-capture pipeline treats its source of truth:
//!
//! * [`ChangeRecord`] — a serializable `Insert` / `Delete` / `Update`
//!   addressed by table name and primary key, the unit of both logging and
//!   replication;
//! * [`WalWriter`] / [`read_log`] — an append-only on-disk log with a text
//!   framing format: a schema-fingerprinted header, per-record FNV-64
//!   checksums, a [`SyncPolicy`] durability knob, and torn-tail recovery
//!   (a crash mid-append costs at most the unfinished record);
//! * [`LogReader`] — positioned, incremental reading of the same log:
//!   `seek` past a snapshot's watermark without decoding the skipped
//!   prefix, then `poll` the tail as it grows (the replication transport —
//!   see the `quest-replica` crate);
//! * [`write_snapshot`] / [`read_snapshot`] — whole-[`Database`] snapshots
//!   that preserve the exact slot layout (tombstones included), so a
//!   restored instance is structurally identical, not merely equivalent;
//! * [`recover`] — snapshot + log suffix ⇒ the database the uninterrupted
//!   process would have held, bit-identical down to index postings and
//!   statistics (asserted by `tests/wal.rs`).
//!
//! Logs and snapshots both carry a [`schema_fingerprint`]; replay against a
//! database with a different schema fails fast with
//! [`WalError::SchemaMismatch`] instead of corrupting data.
//!
//! ```
//! use quest_wal::{recover, ChangeRecord, WalWriter};
//! use relstore::{Catalog, DataType, Database, Row, Value};
//!
//! let mut catalog = Catalog::new();
//! catalog
//!     .define_table("movie")?
//!     .pk("id", DataType::Int)?
//!     .col("title", DataType::Text)?
//!     .finish();
//! let mut db = Database::new(catalog)?;
//! db.finalize();
//!
//! let dir = std::env::temp_dir().join("quest-wal-doctest");
//! std::fs::create_dir_all(&dir)?;
//! let wal = dir.join(format!("{}.wal", std::process::id()));
//! let snap = dir.join(format!("{}.snap", std::process::id()));
//!
//! // Log every mutation before applying it (write-ahead), snapshot once.
//! let mut writer = WalWriter::open(&wal, db.catalog())?;
//! quest_wal::write_snapshot(&db, &snap, 0)?;
//! for (id, title) in [(1, "Casablanca"), (2, "Gone with the Wind")] {
//!     let change = ChangeRecord::Insert {
//!         table: "movie".into(),
//!         row: vec![id.into(), title.into()],
//!     };
//!     writer.append(&change)?;
//!     change.apply(&mut db)?;
//! }
//! writer.sync()?;
//!
//! // Crash here. Recovery = snapshot + log suffix.
//! let recovery = recover(&snap, &wal)?;
//! assert_eq!(recovery.db.total_rows(), db.total_rows());
//! assert_eq!(recovery.applied, 2);
//! let title = db.catalog().attr_id("movie", "title")?;
//! assert_eq!(
//!     recovery.db.search_score(title, "casablanca").to_bits(),
//!     db.search_score(title, "casablanca").to_bits(),
//! );
//! # std::fs::remove_file(&wal).ok();
//! # std::fs::remove_file(&snap).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod log;
pub mod reader;
pub mod record;
pub mod snapshot;

use std::path::Path;

use relstore::Database;

pub use codec::schema_fingerprint;
pub use error::WalError;
pub use log::{names, read_log, replay, LogRecovery, ReplayReport, SyncPolicy, WalWriter};
pub use reader::{LogReader, TailPoll};
pub use record::ChangeRecord;
pub use snapshot::{read_snapshot, write_snapshot, Snapshot};

/// Outcome of [`recover`].
#[derive(Debug)]
pub struct Recovery {
    /// The recovered, finalized database.
    pub db: Database,
    /// The snapshot's watermark: every record at or below this sequence
    /// number is already reflected in it. A caller that resumes *writing*
    /// must refuse when the log's own last sequence is below this (the
    /// pair is inconsistent; appending would re-issue covered sequence
    /// numbers) — `quest-replica`'s `Primary::reopen` does.
    pub snapshot_lsn: u64,
    /// Log records applied on top of the snapshot.
    pub applied: usize,
    /// Log records re-rejected during replay — exactly the records the
    /// live system rejected after logging them (see [`replay`]).
    pub rejected: usize,
    /// Whether the log ended in a torn (dropped) record.
    pub torn_tail: bool,
}

/// Crash recovery: load the snapshot at `snapshot_path`, then replay every
/// log record at `wal_path` with a sequence number newer than the
/// snapshot's watermark. The result is bit-identical to the database the
/// uninterrupted process held after its last complete append.
///
/// The log suffix is read through a positioned [`LogReader`]: records at or
/// below the snapshot's watermark are skipped by frame (no checksumming or
/// body decode — their effects are already in the snapshot), so recovery
/// cost scales with the suffix, not the whole log. Run [`read_log`]
/// separately for a full-file integrity audit.
///
/// The recovered instance passes through [`Database::validate`] before it
/// is returned: WAL records carry per-line checksums but snapshot data
/// lines do not, so this is the gate that catches a snapshot whose bytes
/// rotted into something type-correct but referentially inconsistent.
pub fn recover(snapshot_path: &Path, wal_path: &Path) -> Result<Recovery, WalError> {
    let start = std::time::Instant::now();
    let snapshot = read_snapshot(snapshot_path)?;
    let mut db = snapshot.db;
    let mut reader = LogReader::open(wal_path, db.catalog())?;
    reader.seek(snapshot.last_seq)?;
    let tail = reader.poll()?;
    let report = replay(&mut db, &tail.records, snapshot.last_seq)?;
    db.validate()?;
    quest_obs::global()
        .histogram(names::RECOVER)
        .record(quest_obs::duration_ns(start.elapsed()));
    Ok(Recovery {
        db,
        snapshot_lsn: snapshot.last_seq,
        applied: report.applied,
        rejected: report.rejected,
        torn_tail: tail.pending > 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{Catalog, DataType, Row};

    #[test]
    fn recover_rejects_a_referentially_broken_snapshot() {
        // Snapshot data lines carry no per-line checksum; the recover()
        // validate() gate must catch bytes that rotted into a
        // type-correct but dangling foreign key.
        let dir = std::env::temp_dir().join("quest-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let snap = dir.join(format!("broken-fk-{pid}.snap"));
        let wal = dir.join(format!("broken-fk-{pid}.wal"));

        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut db = Database::new(c).unwrap();
        db.insert("person", Row::new(vec![7.into(), "Fleming".into()]))
            .unwrap();
        db.insert("movie", Row::new(vec![10.into(), "Wind".into(), 7.into()]))
            .unwrap();
        db.finalize();
        let _ = WalWriter::open(&wal, db.catalog()).unwrap();
        write_snapshot(&db, &snap, 0).unwrap();

        // Sanity: the clean pair recovers.
        assert!(recover(&snap, &wal).is_ok());
        // Rot the movie's FK field (trailing value of its R line) to a
        // person id that does not exist.
        let text = std::fs::read_to_string(&snap).unwrap();
        std::fs::write(&snap, text.replace("\ti7\n", "\ti9\n")).unwrap();
        let err = recover(&snap, &wal).unwrap_err();
        assert!(matches!(err, WalError::Store(_)), "{err}");

        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
    }
}
