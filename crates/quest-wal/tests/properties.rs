//! Property suite for torn-tail recovery: truncating the log at **every
//! byte offset inside the final record** must always recover the valid
//! prefix — never an error, never a phantom record. This is the crash model
//! the WAL promises to survive: an un-synced append interrupted at an
//! arbitrary byte, including mid-way through a multi-byte character.

use std::path::PathBuf;

use proptest::prelude::*;
use quest_wal::{read_log, recover, write_snapshot, ChangeRecord, WalWriter};
use relstore::{Catalog, DataType, Database, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.define_table("t")
        .unwrap()
        .pk("id", DataType::Int)
        .unwrap()
        .col("name", DataType::Text)
        .unwrap()
        .finish();
    c
}

fn temp_path(name: &str, ext: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("quest-wal-proptests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}.{ext}", std::process::id()))
}

/// Record payloads: printable ASCII from the strategy, plus multi-byte
/// characters salted in deterministically so every case exercises UTF-8
/// tails (truncation can split `ö` or `𝄞` mid-sequence).
fn records_from(names: Vec<String>) -> Vec<ChangeRecord> {
    names
        .into_iter()
        .enumerate()
        .map(|(i, mut name)| {
            if i % 2 == 0 {
                name.push_str("ö𝄞€");
            }
            ChangeRecord::Insert {
                table: "t".into(),
                row: vec![Value::Int(i as i64 + 1), name.into()],
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn truncation_inside_the_final_record_recovers_the_prefix(
        names in proptest::collection::vec("[a-z0-9 ,;]{0,12}", 2..6),
    ) {
        let c = catalog();
        let records = records_from(names);
        let base = temp_path("torn-base", "wal");
        {
            let mut w = WalWriter::open(&base, &c).expect("open");
            for r in &records {
                w.append(r).expect("append");
            }
        }
        let bytes = std::fs::read(&base).expect("read log");
        prop_assert!(bytes.ends_with(b"\n"));
        // Start of the final record's line: just past the previous newline.
        let final_start = bytes[..bytes.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .expect("header line precedes every record") + 1;
        let prefix: Vec<(u64, ChangeRecord)> = records[..records.len() - 1]
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, r)| (i as u64 + 1, r))
            .collect();

        let snap = temp_path("torn-snap", "snap");
        let mut empty = Database::new(c.clone()).expect("db");
        empty.finalize();
        write_snapshot(&empty, &snap, 0).expect("snapshot");

        let torn = temp_path("torn-cut", "wal");
        for cut in final_start..bytes.len() {
            std::fs::write(&torn, &bytes[..cut]).expect("write truncated copy");

            // Reading never errors and never invents a record.
            let log = read_log(&torn, &c)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: read_log failed: {e}"));
            prop_assert_eq!(
                &log.records, &prefix,
                "cut at byte {} must yield exactly the prefix", cut
            );
            // A cut at the line boundary is a clean log; anything inside
            // the final record is a reported torn tail.
            prop_assert_eq!(log.torn_tail, cut > final_start, "cut at byte {}", cut);

            // Full recovery (snapshot + replay) holds the same prefix.
            let recovery = recover(&snap, &torn)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: recover failed: {e}"));
            prop_assert_eq!(recovery.applied, prefix.len());
            prop_assert_eq!(recovery.rejected, 0);
            prop_assert_eq!(recovery.db.total_rows(), prefix.len());

            // Reopening for append truncates the tail and resumes the
            // sequence where the prefix left off.
            let mut w = WalWriter::open(&torn, &c).expect("reopen");
            prop_assert_eq!(w.next_seq(), prefix.len() as u64 + 1);
            w.append(records.last().expect("non-empty script"))
                .expect("append after truncation");
            drop(w);
            let healed = read_log(&torn, &c).expect("healed log reads");
            prop_assert!(!healed.torn_tail);
            prop_assert_eq!(healed.records.len(), records.len());
        }

        std::fs::remove_file(&base).ok();
        std::fs::remove_file(&torn).ok();
        std::fs::remove_file(&snap).ok();
    }
}
