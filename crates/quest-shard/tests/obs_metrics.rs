//! The shard layer's observability wiring: scatter timings land in the
//! global registry as per-shard labeled histograms, and fence/refusal
//! events count. The identity suites (`tests/shard.rs` at the repo root)
//! prove the same instrumentation never perturbs a score bit; this file
//! only proves the metrics actually arrive.
//!
//! All assertions on the global registry use `>=` deltas and unique label
//! values where possible: every test in this binary shares the one
//! process-wide registry and runs concurrently.

use std::path::PathBuf;

use quest_core::QuestConfig;
use quest_data::imdb::{generate, ImdbScale};
use quest_obs::MetricValue;
use quest_shard::{names, ScatterGather, ShardConfig, ShardedPrimary};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("quest-shard-obs")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn shard_config(n: usize) -> ShardConfig {
    ShardConfig {
        shard_count: n,
        parallel: true,
    }
}

fn counter(name: &str) -> u64 {
    quest_obs::global()
        .snapshot()
        .counter(name)
        .unwrap_or_default()
}

#[test]
fn scatter_records_per_shard_histograms_and_imbalance() {
    let db = generate(&ImdbScale {
        movies: 60,
        seed: 7,
    })
    .expect("imdb generates");
    let gateway =
        ScatterGather::new(&db, &shard_config(3), QuestConfig::default()).expect("gateway builds");
    gateway
        .search("casablanca director")
        .expect("search succeeds");

    let snap = quest_obs::global().snapshot();
    let scatter = snap.get_all(names::SCATTER);
    // One labeled series per shard that did work; at least one shard holds
    // a hit for these keywords.
    assert!(
        !scatter.is_empty(),
        "a scatter should record at least one per-shard histogram"
    );
    for metric in &scatter {
        let MetricValue::Histogram(h) = &metric.value else {
            panic!("{} should be a histogram", metric.full_name());
        };
        assert!(h.count >= 1, "{} should have samples", metric.full_name());
        assert!(
            metric.labels.iter().any(|(k, _)| k == "shard"),
            "{} should carry a shard label",
            metric.full_name()
        );
    }
    // The imbalance gauge is only published when the mean shard time is
    // non-zero, so existence (not a specific value) is all that is stable.
    if let Some(MetricValue::Gauge(pct)) = snap.get(names::FANOUT_IMBALANCE) {
        assert!(
            *pct >= 0,
            "imbalance is a percentage overrun, never negative"
        );
    }
}

#[test]
fn fencing_and_refusals_count_in_the_global_registry() {
    let db = generate(&ImdbScale {
        movies: 40,
        seed: 11,
    })
    .expect("imdb generates");
    let dir = temp_dir("fence-counters");
    let mut primary = ShardedPrimary::open(&dir, db, &shard_config(2), QuestConfig::default())
        .expect("sharded primary opens");

    let fences_before = counter(names::FENCE);
    let downs_before = counter(names::DOWN);

    primary.fence(1, "operator drill");
    assert!(!primary.is_healthy());
    primary
        .search("casablanca")
        .expect_err("a fenced set refuses searches");

    // `>=`: sibling tests in this binary may fence concurrently.
    assert!(
        counter(names::FENCE) > fences_before,
        "the operator fence should count"
    );
    assert!(
        counter(names::DOWN) > downs_before,
        "the refused search should count"
    );

    std::fs::remove_dir_all(&dir).ok();
}
