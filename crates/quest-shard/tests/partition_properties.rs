//! Partitioner property suite: placement stability, unsharded mutation
//! equivalence, and rebalance round-trip identity.
//!
//! Placement is a pure function of a row's primary-key values, so no
//! interleaving of inserts, deletes, re-insertions (tombstone churn), or
//! repartitioning may ever move a key to a different shard — and every
//! mutation outcome (accept or reject, down to the error string) must
//! match the unsharded database's.

use proptest::collection::vec;
use proptest::prelude::*;
use quest_shard::{ShardConfig, ShardedStore};
use relstore::index::KeywordProbe;
use relstore::{Catalog, DataType, Database, Row, StoreError, Value};

/// person(id PK, name full-text) ← movie(id PK, title full-text,
/// director_id nullable FK).
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.define_table("person")
        .unwrap()
        .pk("id", DataType::Int)
        .unwrap()
        .col("name", DataType::Text)
        .unwrap()
        .finish();
    c.define_table("movie")
        .unwrap()
        .pk("id", DataType::Int)
        .unwrap()
        .col("title", DataType::Text)
        .unwrap()
        .col_opts("director_id", DataType::Int, true, false)
        .unwrap()
        .finish();
    c.add_foreign_key("movie", "director_id", "person").unwrap();
    c
}

/// A config that keeps property runs cheap and deterministic to debug.
fn shard_config(n: usize) -> ShardConfig {
    ShardConfig {
        shard_count: n,
        parallel: false,
    }
}

/// Mutations over a small key space, so duplicate keys, dangling FKs,
/// re-insertions after deletes, and restrictive-delete violations all
/// actually occur.
#[derive(Debug, Clone)]
enum Op {
    InsertPerson(i64, String),
    InsertMovie(i64, String, Option<i64>),
    DeletePerson(i64),
    DeleteMovie(i64),
    /// Update movie `0` to key `1` (a PK change when they differ — which
    /// may also move the row across shards).
    UpdateMovie(i64, i64, String, Option<i64>),
}

fn arb_word() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("gone".to_string()),
        Just("wind".to_string()),
        Just("storm".to_string()),
        Just("fleming".to_string()),
        Just("gone wind".to_string()),
    ]
}

fn arb_director() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![Just(None), (0i64..12).prop_map(Some)]
}

fn arb_op() -> impl Strategy<Value = Op> {
    let key = 0i64..12;
    prop_oneof![
        (key.clone(), arb_word()).prop_map(|(k, w)| Op::InsertPerson(k, w)),
        (key.clone(), arb_word(), arb_director()).prop_map(|(k, w, d)| Op::InsertMovie(k, w, d)),
        key.clone().prop_map(Op::DeletePerson),
        key.clone().prop_map(Op::DeleteMovie),
        (key.clone(), key, arb_word(), arb_director())
            .prop_map(|(k, nk, w, d)| Op::UpdateMovie(k, nk, w, d)),
    ]
}

fn apply_db(db: &mut Database, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::InsertPerson(k, w) => db
            .insert("person", Row::new(vec![(*k).into(), w.as_str().into()]))
            .map(|_| ()),
        Op::InsertMovie(k, w, d) => db
            .insert(
                "movie",
                Row::new(vec![(*k).into(), w.as_str().into(), opt(d)]),
            )
            .map(|_| ()),
        Op::DeletePerson(k) => db.delete("person", &[(*k).into()]).map(|_| ()),
        Op::DeleteMovie(k) => db.delete("movie", &[(*k).into()]).map(|_| ()),
        Op::UpdateMovie(k, nk, w, d) => db
            .update(
                "movie",
                &[(*k).into()],
                Row::new(vec![(*nk).into(), w.as_str().into(), opt(d)]),
            )
            .map(|_| ()),
    }
}

fn apply_sharded(store: &mut ShardedStore, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::InsertPerson(k, w) => store
            .insert("person", Row::new(vec![(*k).into(), w.as_str().into()]))
            .map(|_| ()),
        Op::InsertMovie(k, w, d) => store
            .insert(
                "movie",
                Row::new(vec![(*k).into(), w.as_str().into(), opt(d)]),
            )
            .map(|_| ()),
        Op::DeletePerson(k) => store.delete("person", &[(*k).into()]).map(|_| ()),
        Op::DeleteMovie(k) => store.delete("movie", &[(*k).into()]).map(|_| ()),
        Op::UpdateMovie(k, nk, w, d) => store
            .update(
                "movie",
                &[(*k).into()],
                Row::new(vec![(*nk).into(), w.as_str().into(), opt(d)]),
            )
            .map(|_| ()),
    }
}

fn opt(d: &Option<i64>) -> Value {
    match d {
        Some(v) => (*v).into(),
        None => Value::Null,
    }
}

/// Sorted multiset of a table's live rows, shard-order independent.
fn row_multiset(shards: &[&Database], table: &str) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for db in shards {
        let tid = db.catalog().table_id(table).unwrap();
        for (_, row) in db.table_data(tid).iter() {
            rows.push(row.values().to_vec());
        }
    }
    rows.sort();
    rows
}

/// Compare merged scores and statistics against an unsharded reference,
/// bit for bit.
fn assert_identical_to_unsharded(store: &ShardedStore, reference: &Database) {
    let catalog = reference.catalog();
    for attr in catalog.attributes() {
        let merged = store.attr_stats(attr.id).unwrap();
        let whole = reference.attr_stats(attr.id).unwrap();
        assert_eq!(merged, whole, "attr stats diverged for {}", attr.id.0);
        for kw in ["gone", "wind", "storm", "fleming", "gone wind", "zzz"] {
            let s = store.search_score(attr.id, kw);
            let u = reference.search_score(attr.id, kw);
            assert_eq!(
                s.to_bits(),
                u.to_bits(),
                "score bits diverged: attr {} keyword {kw:?} ({s} vs {u})",
                attr.id.0
            );
        }
    }
    for fk in catalog.foreign_keys() {
        let merged = store.fk_stats(*fk).unwrap();
        let whole = reference.fk_stats(*fk).unwrap();
        assert_eq!(merged.pairs, whole.pairs);
        assert_eq!(merged.referenced_distinct, whole.referenced_distinct);
        assert_eq!(merged.referencing_rows, whole.referencing_rows);
        assert_eq!(merged.referenced_rows, whole.referenced_rows);
        assert_eq!(
            merged.nmi.to_bits(),
            whole.nmi.to_bits(),
            "NMI bits diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The centerpiece: any mutation interleaving produces (a) the same
    /// accept/reject outcome — same error string — as the unsharded
    /// database, (b) a placement-valid shard set, and (c) merged
    /// statistics and scores bit-identical to the unsharded state.
    #[test]
    fn mutations_match_unsharded_bitwise(ops in vec(arb_op(), 0..40), shards in 1usize..6) {
        let mut reference = Database::new(catalog()).unwrap();
        reference.finalize();
        let mut store = ShardedStore::new(catalog(), &shard_config(shards)).unwrap();
        for op in &ops {
            let expected = apply_db(&mut reference, op);
            let got = apply_sharded(&mut store, op);
            match (&expected, &got) {
                (Ok(()), Ok(())) => {}
                (Err(e), Err(g)) => prop_assert_eq!(
                    e.to_string(),
                    g.to_string(),
                    "divergent rejection for {:?}",
                    op
                ),
                _ => prop_assert!(false, "divergent outcome for {:?}: {:?} vs {:?}", op, expected, got),
            }
        }
        store.validate().unwrap();
        assert_identical_to_unsharded(&store, &reference);
        let shard_refs: Vec<&Database> = (0..store.shard_count()).map(|i| store.shard(i)).collect();
        prop_assert_eq!(row_multiset(&shard_refs, "person"), row_multiset(&[&reference], "person"));
        prop_assert_eq!(row_multiset(&shard_refs, "movie"), row_multiset(&[&reference], "movie"));
    }

    /// Placement never depends on history: delete a key, re-insert it (and
    /// churn through a same-count rebalance, the compaction equivalent —
    /// tombstones are dropped, indexes rebuilt), and the key still lives on
    /// the shard its hash names.
    #[test]
    fn placement_stable_under_reinsertion_and_compaction(
        keys in vec(0i64..30, 1..15),
        shards in 2usize..6,
    ) {
        let mut store = ShardedStore::new(catalog(), &shard_config(shards)).unwrap();
        let mut homes = std::collections::HashMap::new();
        for k in &keys {
            if store.insert("person", Row::new(vec![(*k).into(), "gone".into()])).is_ok() {
                let home = store.partitioner().shard_of_key(&[(*k).into()]);
                homes.insert(*k, home);
            }
        }
        store.validate().unwrap();
        // Tombstone churn: delete everything, re-insert everything.
        for k in homes.keys() {
            store.delete("person", &[(*k).into()]).unwrap();
        }
        for k in homes.keys() {
            store.insert("person", Row::new(vec![(*k).into(), "wind".into()])).unwrap();
        }
        // Compaction: rebuild at the same shard count.
        let compacted = store.rebalance(&shard_config(shards)).unwrap();
        compacted.validate().unwrap();
        for (k, home) in &homes {
            let tid = compacted.catalog().table_id("person").unwrap();
            let found = compacted.shard(*home).table_data(tid).lookup_pk(&[(*k).into()]);
            prop_assert!(found.is_some(), "key {} left its home shard {}", k, home);
        }
    }

    /// `rebalance(n → m → n)` loses no rows, keeps merged state bit-equal,
    /// and leaves every shard's inverted index bit-identical to a fresh
    /// `finalize` over that shard's row subset.
    #[test]
    fn rebalance_round_trip_is_lossless(
        ops in vec(arb_op(), 0..30),
        n in 1usize..5,
        m in 1usize..8,
    ) {
        let mut reference = Database::new(catalog()).unwrap();
        reference.finalize();
        let mut store = ShardedStore::new(catalog(), &shard_config(n)).unwrap();
        for op in &ops {
            let _ = apply_db(&mut reference, op);
            let _ = apply_sharded(&mut store, op);
        }
        let wide = store.rebalance(&shard_config(m)).unwrap();
        wide.validate().unwrap();
        let back = wide.rebalance(&shard_config(n)).unwrap();
        back.validate().unwrap();
        for s in [&wide, &back] {
            let shard_refs: Vec<&Database> = (0..s.shard_count()).map(|i| s.shard(i)).collect();
            prop_assert_eq!(
                row_multiset(&shard_refs, "person"),
                row_multiset(&[&reference], "person")
            );
            prop_assert_eq!(
                row_multiset(&shard_refs, "movie"),
                row_multiset(&[&reference], "movie")
            );
            assert_identical_to_unsharded(s, &reference);
        }
        // Each shard's index is bit-identical to a fresh bulk build over
        // exactly its row subset (incremental/bulk equivalence per shard).
        let shard_catalog = catalog().without_foreign_keys();
        for s in [&wide, &back] {
            for i in 0..s.shard_count() {
                let shard = s.shard(i);
                let mut fresh = Database::new(shard_catalog.clone()).unwrap();
                for schema in shard_catalog.tables() {
                    let tid = schema.id;
                    for (_, row) in shard.table_data(tid).iter() {
                        fresh.insert_unchecked(&schema.name, row.clone()).unwrap();
                    }
                }
                fresh.finalize();
                for attr in shard_catalog.attributes() {
                    prop_assert_eq!(
                        shard.index(attr.id),
                        fresh.index(attr.id),
                        "shard {} index diverged from fresh rebuild on attr {}",
                        i,
                        attr.id.0
                    );
                }
            }
        }
    }

    /// Scatter scoring agrees with the single-probe path for every
    /// attribute (the whole-table scatter is what keyword preparation
    /// uses; the per-attribute probe is the reference).
    #[test]
    fn scatter_table_matches_per_attribute_probes(ops in vec(arb_op(), 0..25)) {
        let mut store = ShardedStore::new(catalog(), &shard_config(3)).unwrap();
        for op in &ops {
            let _ = apply_sharded(&mut store, op);
        }
        for kw in ["gone", "wind", "gone wind", "zzz"] {
            let Some(probe) = KeywordProbe::new(kw) else { continue };
            let table = store.scatter_value_scores(&probe);
            prop_assert_eq!(table.len(), store.catalog().attribute_count());
            for attr in store.catalog().attributes() {
                let direct = store.search_score_probe(attr.id, &probe);
                prop_assert_eq!(
                    table[attr.id.0 as usize].to_bits(),
                    direct.to_bits(),
                    "scatter slot diverged for attr {} keyword {:?}",
                    attr.id.0,
                    kw
                );
            }
        }
    }
}
